"""Protocol deep-dive: drive the Reconfiguration Manager by hand.

Shows the machinery of Section 5 directly, without the Autonomic
Manager: a failure-free two-phase reconfiguration, a reconfiguration
with a crashed proxy (epoch change fences the old configuration), and a
falsely suspected slow proxy catching up through storage NACKs — all
while clients keep reading and writing.

Run with::

    python examples/manual_reconfiguration.py
"""

from repro import (
    ClusterConfig,
    QuorumConfig,
    SwiftCluster,
    attach_reconfiguration_manager,
    ycsb,
)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def state(cluster: SwiftCluster, rm) -> None:
    live = [proxy for proxy in cluster.proxies if proxy.alive]
    print(f"  rm: cfg_no={rm.cfg_no} epoch={rm.epoch_no} "
          f"epoch_changes={rm.epoch_changes}")
    for proxy in live:
        print(f"  {proxy.node_id}: epoch={proxy.epoch_no} "
              f"cfg={proxy.cfg_no} plan={proxy.active_plan().default} "
              f"transition={proxy.in_transition}")
    print(f"  storage epochs: "
          f"{sorted({node.epoch_no for node in cluster.storage_nodes})}")
    print(f"  throughput (last 2s): "
          f"{cluster.log.throughput(cluster.sim.now - 2, cluster.sim.now):.0f}"
          " ops/s")


def main() -> None:
    config = ClusterConfig(
        num_storage_nodes=10,
        num_proxies=3,
        clients_per_proxy=4,
        initial_quorum=QuorumConfig(read=3, write=3),
    )
    cluster = SwiftCluster(config, seed=9)
    rm = attach_reconfiguration_manager(cluster)
    cluster.add_clients(
        ycsb.build(ycsb.workload_a(object_size=16 * 1024, num_objects=64),
                   seed=2)
    )
    cluster.run(3.0)

    banner("failure-free two-phase reconfiguration (R=3,W=3 -> R=1,W=5)")
    process = rm.change_global(QuorumConfig(read=1, write=5))
    cluster.run(2.0)
    print(f"  completed: {process.result.done} (no epoch change needed)")
    state(cluster, rm)

    banner("crash a proxy, then reconfigure (epoch change fences it)")
    cluster.crash_proxy(2)
    process = rm.change_global(QuorumConfig(read=3, write=3))
    cluster.run(4.0)
    print(f"  completed: {process.result.done}")
    state(cluster, rm)

    banner("false suspicion of a slow proxy (indulgence: NACK catch-up)")
    slow = cluster.proxies[0].node_id
    cluster.network.set_delay_factor(rm.node_id, slow, 5000.0)
    cluster.detector.falsely_suspect(
        slow, start=cluster.sim.now, end=cluster.sim.now + 3.0
    )
    process = rm.change_global(QuorumConfig(read=5, write=1))
    cluster.run(6.0)
    print(f"  completed: {process.result.done}")
    nacks = sum(node.nacks_sent for node in cluster.storage_nodes)
    retries = sum(proxy.operation_retries for proxy in cluster.proxies
                  if proxy.alive)
    print(f"  NACKs sent by storage: {nacks}; operations re-executed: "
          f"{retries}")
    state(cluster, rm)

    banner("summary")
    print(f"  total operations served: {cluster.log.total_operations}")
    print(f"  reconfigurations: {rm.reconfigurations_completed}, "
          f"epoch changes: {rm.epoch_changes}")
    print("  safety held throughout: every read quorum intersected the "
          "write quorum of the last completed write (see tests/ for the "
          "mechanised check).")


if __name__ == "__main__":
    main()
