"""A control plane with no single point of failure.

The paper's managers are presented as logically centralized, with the
remark that standard replication makes them fault-tolerant.  This
example deploys Q-OPT with a 3-replica primary-backup Reconfiguration
Manager and uses the nemesis fault driver to crash the primary *inside
the two-phase window of a reconfiguration* — the crash is armed on the
RM's ``on_reconfiguration_started`` hook, so it lands between NEWQ and
CONFIRM rather than at an arbitrary time.  The backup takes over and
finishes the job while clients keep running.

Run with::

    python examples/fault_tolerant_control_plane.py
"""

from repro import (
    AutonomicConfig,
    ClusterConfig,
    QuorumConfig,
    SwiftCluster,
    attach_qopt,
    ycsb,
)
from repro.sds.consistency import HistoryChecker
from repro.sim.nemesis import Nemesis


def main() -> None:
    cluster = SwiftCluster(
        ClusterConfig(
            num_proxies=2,
            clients_per_proxy=5,
            initial_quorum=QuorumConfig(read=1, write=5),
        ),
        seed=13,
    )
    system = attach_qopt(
        cluster,
        autonomic_config=AutonomicConfig(
            round_duration=2.0, quarantine=0.5, top_k=8
        ),
        rm_replicas=3,
    )
    group = system.rm_group
    checker = HistoryChecker()
    cluster.add_clients(
        ycsb.build(
            ycsb.workload_c_paper(object_size=64 * 1024, num_objects=64),
            seed=1,
        ),
        recorder=checker.record,
    )

    print("RM group:", [str(m.node_id) for m in group.members])
    print("running with a 99%-write workload on a W=5 configuration...")
    cluster.run(5.0)
    print(f"  t={cluster.sim.now:4.1f}s  throughput "
          f"{cluster.log.throughput(3, 5):5.0f} ops/s  "
          f"primary={group.primary.node_id}")

    victim = group.primary
    print(f"\narming nemesis: crash {victim.node_id} mid-reconfiguration...")
    nemesis = Nemesis.for_cluster(cluster, seed=13)
    # Fires 50 ms after the primary's next NEWQ broadcast, i.e. between
    # the two phases of Algorithm 2.  The timed crash is a fallback in
    # case the workload goes quiet (firing is idempotent).
    nemesis.crash_on_reconfiguration(victim, victim.node_id, delay=0.05)
    nemesis.schedule_crash(cluster.sim.now + 5.0, victim.node_id)
    cluster.run(10.0)
    crash = next(f for f in nemesis.faults if f.kind == "crash")
    print(f"  t={crash.time:4.1f}s  nemesis crashed {crash.target}")
    primary = group.primary
    print(f"  t={cluster.sim.now:4.1f}s  new primary: {primary.node_id} "
          f"(takeovers: {primary.takeovers})")

    cluster.run(15.0)
    manager = system.autonomic_manager
    now = cluster.sim.now
    print(f"\nafter failover, tuning continued:")
    print(f"  throughput now: {cluster.log.throughput(now - 5, now):.0f} ops/s "
          f"(vs {cluster.log.throughput(3, 5):.0f} before)")
    print(f"  fine reconfigurations: {manager.fine_reconfigurations}")
    print(f"  per-object overrides: {len(manager.installed_overrides)}")
    print(f"  RM epochs: {[m.epoch_no for m in group.members if m.alive]}")

    # Every client-observed read/write was recorded; run the full
    # Wing-Gong search to prove the history atomic despite the crash.
    checker.assert_linearizable()
    print(f"\n{len(checker.records)} operations: history is linearizable.")


if __name__ == "__main__":
    main()
