"""Multi-tenant SDS: per-object quorums beat any global configuration.

Two tenants share the store with opposite profiles — a photo service
(2% writes) and a backup service (98% writes) — plus a cold tail.  No
single global (R, W) suits both; Q-OPT's top-k analysis finds each
tenant's hot objects and assigns them individual quorums (Section 5.4).

Run with::

    python examples/multi_tenant.py
"""

from repro import ClusterConfig, QuorumConfig, SwiftCluster, attach_qopt
from repro.common.config import AutonomicConfig
from repro.workloads import MixedWorkload, WorkloadSpec
from repro.workloads.generator import MixtureComponent

DURATION = 36.0
MEASURE_WINDOW = 8.0


def build_workload() -> MixedWorkload:
    return MixedWorkload(
        [
            MixtureComponent(
                WorkloadSpec(
                    write_ratio=0.02,
                    object_size=64 * 1024,
                    num_objects=16,
                    skew=0.5,
                    name="tenant-photos",
                ),
                weight=0.45,
            ),
            MixtureComponent(
                WorkloadSpec(
                    write_ratio=0.98,
                    object_size=64 * 1024,
                    num_objects=16,
                    skew=0.5,
                    name="tenant-backup",
                ),
                weight=0.45,
            ),
            MixtureComponent(
                WorkloadSpec(
                    write_ratio=0.50,
                    object_size=64 * 1024,
                    num_objects=256,
                    name="tenant-tail",
                ),
                weight=0.10,
            ),
        ],
        seed=11,
    )


def run_static(write_quorum: int) -> float:
    config = ClusterConfig(
        num_proxies=2,
        clients_per_proxy=5,
        initial_quorum=QuorumConfig.from_write(write_quorum, 5),
    )
    cluster = SwiftCluster(config, seed=5)
    cluster.add_clients(build_workload())
    cluster.run(12.0)
    return cluster.log.throughput(12.0 - MEASURE_WINDOW, 12.0)


def run_qopt() -> tuple[float, dict]:
    cluster = SwiftCluster(
        ClusterConfig(num_proxies=2, clients_per_proxy=5), seed=5
    )
    system = attach_qopt(
        cluster,
        autonomic_config=AutonomicConfig(
            round_duration=2.0, quarantine=0.5, top_k=16
        ),
    )
    cluster.add_clients(build_workload())
    cluster.run(DURATION)
    throughput = cluster.log.throughput(DURATION - MEASURE_WINDOW, DURATION)
    return throughput, system.autonomic_manager.installed_overrides


def main() -> None:
    print("measuring every global static configuration...")
    static = {w: run_static(w) for w in range(1, 6)}
    for write, throughput in static.items():
        print(f"  static R={6 - write},W={write}: {throughput:7.0f} ops/s")
    best_static = max(static.values())

    print("\nrunning Q-OPT with per-object tuning...")
    qopt_throughput, overrides = run_qopt()
    print(f"  q-opt:          {qopt_throughput:7.0f} ops/s "
          f"({qopt_throughput / best_static:.2f}x the best global)")
    print(f"  per-object overrides installed: {len(overrides)}")

    by_tenant: dict[str, dict[str, int]] = {}
    for object_id, quorum in overrides.items():
        tenant = object_id.rsplit("-", 1)[0]
        by_tenant.setdefault(tenant, {})
        key = str(quorum)
        by_tenant[tenant][key] = by_tenant[tenant].get(key, 0) + 1
    print("\noverrides per tenant (the opposite profiles get opposite quorums):")
    for tenant, counts in sorted(by_tenant.items()):
        print(f"  {tenant}: {counts}")


if __name__ == "__main__":
    main()
