"""Live cluster end to end: real processes, real TCP, live retuning.

Everything the simulator runs in virtual time, this example runs on the
wire: it boots a 5-replica cluster as separate OS processes (one
``python -m repro serve`` worker per node), drives a closed-loop client
fleet against it, performs a *live* global quorum reconfiguration
(W=4 -> W=2) mid-run with zero downtime, and then verifies the entire
client-observed history with the linearizability checker — the same
protocol code as the simulation, on a different transport.

Run with::

    python examples/live_cluster.py
"""

import asyncio

from repro.net.cluster import LocalCluster
from repro.net.httpd import http_get
from repro.net.loadgen import LoadGenerator
from repro.net.spec import build_spec


async def run() -> None:
    # -- bring-up: one OS process per protocol node --------------------------
    spec = build_spec(replicas=5, proxies=1, write_quorum=4, seed=42)
    cluster = LocalCluster(spec)
    print("booting a live 5-replica cluster (one process per node)...")
    try:
        cluster.start()
        await cluster.wait_healthy()
        print(cluster.describe())

        # -- client session: closed-loop fleet over TCP ----------------------
        generator = LoadGenerator(
            cluster.spec, clients=6, workload="a", objects=32, seed=7
        )
        await generator.start()
        try:
            first = await generator.run_phase(
                "W=4", duration=2.0, write_quorum=4
            )
            print(
                f"\nphase W=4: {first.operations} ops "
                f"({first.ops_per_sec:.0f} ops/s), "
                f"write p99 {first.latencies['write'].get('p99', 0):.4f}s"
            )

            # -- live reconfiguration: two-phase, no stop-the-world ----------
            # Reconfigure while a load phase is in flight: the protocol
            # drains and fences epochs instead of stopping the world, so
            # clients keep completing operations throughout.
            overlapped = asyncio.create_task(
                generator.run_phase(
                    "during-reconfig", duration=1.5, write_quorum=2
                )
            )
            await asyncio.sleep(0.4)
            took = await generator.reconfigure(2)
            print(f"live reconfiguration to W=2 took {took:.3f}s")
            during = await overlapped
            print(
                f"tuning continued under load: {during.operations} ops "
                f"completed during the switch ({during.failed} failed)"
            )

            second = await generator.run_phase(
                "W=2", duration=2.0, write_quorum=2
            )
            print(
                f"phase W=2: {second.operations} ops "
                f"({second.ops_per_sec:.0f} ops/s), "
                f"write p99 {second.latencies['write'].get('p99', 0):.4f}s"
            )

            violations, linearizable = generator.check_history()
            print(
                f"\nhistory of {len(generator.records)} operations: "
                f"{violations} violations, linearizable={linearizable}"
            )

            manager = cluster.spec.manager
            _status, metrics = await http_get(
                manager.host, manager.http_port, "/metrics"
            )
            exported = sum(
                1 for line in metrics.splitlines()
                if line and not line.startswith("#")
            )
            print(f"manager /metrics exports {exported} series")
        finally:
            await generator.stop()
    finally:
        codes = await cluster.shutdown()
        cluster.kill()
    clean = all(code == 0 for code in codes.values())
    print(f"cluster shut down cleanly: {clean}")


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()
