"""Personal cloud storage: the Dropbox commute scenario.

The paper motivates dynamic quorum tuning with the Dropbox study [14]:
users alternate between read-intensive periods (at the office) and
write/upload-intensive periods (at home).  This example runs that trace
— a 5%-write phase switching to a 95%-write phase — once with Q-OPT and
once with a frozen configuration, and prints the throughput timeline of
both.

Run with::

    python examples/personal_cloud.py
"""

from repro import ClusterConfig, SwiftCluster, Timeline, attach_qopt
from repro.harness.runtime import FAST_AUTONOMIC
from repro.workloads import Phase, PhasedWorkload, WorkloadSpec

SWITCH_TIME = 18.0
DURATION = 40.0


def build_trace(cluster: SwiftCluster) -> PhasedWorkload:
    office = WorkloadSpec(
        write_ratio=0.05,
        object_size=64 * 1024,
        num_objects=128,
        skew=0.9,
        name="dropbox",
    )
    home = office.with_write_ratio(0.95)
    return PhasedWorkload(
        phases=[
            Phase(start_time=0.0, spec=office),
            Phase(start_time=SWITCH_TIME, spec=home),
        ],
        clock=lambda: cluster.sim.now,
        seed=7,
    )


def run(with_qopt: bool) -> Timeline:
    cluster = SwiftCluster(
        ClusterConfig(num_proxies=2, clients_per_proxy=5), seed=3
    )
    if with_qopt:
        attach_qopt(cluster, autonomic_config=FAST_AUTONOMIC)
    cluster.add_clients(build_trace(cluster))
    cluster.run(DURATION)
    return Timeline(cluster.log, 2.0, DURATION, bin_width=2.0)


def main() -> None:
    print("simulating the commute trace (office: 5% writes ->"
          f" home: 95% writes at t={SWITCH_TIME:.0f}s)...\n")
    qopt = run(with_qopt=True)
    static = run(with_qopt=False)

    print(f"{'t (s)':>6} | {'Q-OPT ops/s':>12} | {'static ops/s':>12}")
    print("-" * 38)
    for point_q, point_s in zip(qopt.points, static.points):
        marker = "  <- switch" if (
            point_q.start <= SWITCH_TIME < point_q.end
        ) else ""
        print(
            f"{point_q.midpoint:6.0f} | {point_q.throughput:12.0f} | "
            f"{point_s.throughput:12.0f}{marker}"
        )

    qopt_after = qopt.mean_throughput(DURATION - 8, DURATION)
    static_after = static.mean_throughput(DURATION - 8, DURATION)
    print(f"\nsteady state after the switch: Q-OPT {qopt_after:.0f} ops/s "
          f"vs static {static_after:.0f} ops/s "
          f"({qopt_after / static_after:.2f}x)")


if __name__ == "__main__":
    main()
