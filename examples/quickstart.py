"""Quickstart: run Q-OPT on a YCSB-A workload and watch it tune itself.

Builds the paper's test-bed (10 storage nodes, replication degree 5),
starts the cluster from a deliberately bad quorum configuration for the
workload, attaches the full Q-OPT control plane and reports what it did.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AutonomicConfig,
    ClusterConfig,
    QuorumConfig,
    SwiftCluster,
    attach_qopt,
    ycsb,
)


def main() -> None:
    # A 99%-write backup workload started on a write-hostile (R=1, W=5)
    # configuration — the worst case of the paper's Figure 2.
    config = ClusterConfig(
        num_storage_nodes=10,
        num_proxies=2,
        clients_per_proxy=5,
        initial_quorum=QuorumConfig(read=1, write=5),
    )
    cluster = SwiftCluster(config, seed=42)
    system = attach_qopt(
        cluster,
        autonomic_config=AutonomicConfig(
            round_duration=2.0, quarantine=0.5, top_k=8
        ),
    )
    workload = ycsb.build(
        ycsb.workload_c_paper(object_size=64 * 1024, num_objects=128), seed=1
    )
    cluster.add_clients(workload)

    print("running 40 simulated seconds...")
    cluster.run(40.0)

    before = cluster.log.throughput(1.0, 6.0)
    after = cluster.log.throughput(34.0, 40.0)
    manager = system.autonomic_manager
    print(f"throughput before tuning : {before:8.0f} ops/s")
    print(f"throughput after tuning  : {after:8.0f} ops/s  "
          f"({after / before:.2f}x)")
    print(f"fine-grain reconfigurations  : {manager.fine_reconfigurations}")
    print(f"coarse reconfigurations      : {manager.coarse_reconfigurations}")
    print(f"installed tail configuration : {manager.installed_default}")
    overrides = manager.installed_overrides
    print(f"per-object overrides         : {len(overrides)}")
    for object_id, quorum in sorted(overrides.items())[:5]:
        print(f"  {object_id} -> {quorum}")
    print(f"operation latency p95        : "
          f"{cluster.log.latency_summary().p95 * 1000:.1f} ms")


if __name__ == "__main__":
    main()
