"""The Autonomic Manager: Algorithm 1 of the paper.

The manager orchestrates the self-tuning loop (Figure 4):

1. **Fine-grain rounds** — each round it broadcasts NEWROUND, gathers
   per-proxy ROUNDSTATS (hotspot candidates from the Space-Saving
   summaries, profiles of the currently monitored objects, tail
   aggregates, throughput), merges them, asks the Oracle for per-object
   quorum predictions, and — when a prediction differs from the installed
   configuration — asks the Reconfiguration Manager to install the
   overrides (FINEREC).  The new global top-k is then broadcast
   (NEWTOPK) for monitoring during the next round.
2. **Stop rule** — fine-grain optimization continues while the average
   relative throughput improvement over the last ``gamma`` rounds stays
   above ``theta`` (and at most ``max_rounds`` rounds).
3. **Tail step** — the remaining objects are treated in bulk: their
   aggregate profile goes to the Oracle and a single default quorum is
   installed for all of them (COARSEREC).

Unlike the one-shot pseudo-code, the implementation then keeps cycling:
monitoring continues, and whenever the Oracle's prediction for the tail
or for an already-optimized object drifts away from what is installed, a
new reconfiguration is triggered — this is what lets Q-OPT track the
workload changes of experiment E7.  A fixed quarantine period after each
reconfiguration keeps the loop stable (Section 4).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.autonomic.policy import MedianFilter
from repro.common.config import AutonomicConfig
from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, NodeKind, ObjectId, QuorumConfig
from repro.obs.context import Observability
from repro.sds.messages import (
    AckRec,
    AggregateStats,
    CoarseRec,
    FineRec,
    NewQuorums,
    NewRound,
    NewStats,
    NewTopK,
    ObjectStats,
    RoundStats,
    TailQuorum,
    TailStats,
)
from repro.sim.failure import FailureDetector
from repro.sim.kernel import Future, Simulator
from repro.sim.network import Envelope, Network
from repro.sim.node import Node

#: Size of control-plane messages on the wire, bytes.
_CONTROL_BYTES = 512


def merge_round_stats(
    reports: list[RoundStats], top_k: int
) -> tuple[dict[ObjectId, int], list[ObjectStats], AggregateStats, float]:
    """Merge per-proxy ROUNDSTATS (Algorithm 1 lines 8-9, 15, 19).

    Returns ``(global_top_k, merged_object_stats, merged_tail,
    total_throughput)``.
    """
    candidate_counts: dict[ObjectId, int] = {}
    object_reads: dict[ObjectId, int] = {}
    object_writes: dict[ObjectId, int] = {}
    object_size_sum: dict[ObjectId, float] = {}
    tail_reads = 0
    tail_writes = 0
    tail_size_sum = 0.0
    throughput = 0.0
    for report in reports:
        throughput += report.throughput
        for object_id, count in report.top_k.items():
            candidate_counts[object_id] = (
                candidate_counts.get(object_id, 0) + count
            )
        for stats in report.stats_top_k:
            object_id = stats.object_id
            object_reads[object_id] = (
                object_reads.get(object_id, 0) + stats.reads
            )
            object_writes[object_id] = (
                object_writes.get(object_id, 0) + stats.writes
            )
            object_size_sum[object_id] = (
                object_size_sum.get(object_id, 0.0)
                + stats.mean_size * stats.accesses
            )
        tail_reads += report.stats_tail.reads
        tail_writes += report.stats_tail.writes
        tail_size_sum += (
            report.stats_tail.mean_size * report.stats_tail.accesses
        )
    merged_candidates = dict(
        sorted(
            candidate_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_k]
    )
    merged_objects: list[ObjectStats] = []
    for object_id in object_reads:
        accesses = object_reads[object_id] + object_writes[object_id]
        merged_objects.append(
            ObjectStats(
                object_id=object_id,
                reads=object_reads[object_id],
                writes=object_writes[object_id],
                mean_size=(
                    object_size_sum[object_id] / accesses if accesses else 0.0
                ),
            )
        )
    tail_accesses = tail_reads + tail_writes
    merged_tail = AggregateStats(
        reads=tail_reads,
        writes=tail_writes,
        mean_size=tail_size_sum / tail_accesses if tail_accesses else 0.0,
    )
    return merged_candidates, merged_objects, merged_tail, throughput


class AutonomicManager(Node):
    """The control loop driving Q-OPT's self-tuning."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        proxies: list[NodeId],
        reconfig_manager: NodeId | list[NodeId],
        oracle: NodeId,
        detector: FailureDetector,
        config: AutonomicConfig,
        replication_degree: int,
        initial_default: QuorumConfig,
        suspect_poll_interval: float = 0.05,
        retransmit_interval: float = 0.5,
        obs: Optional[Observability] = None,
        node_id: Optional[NodeId] = None,
    ) -> None:
        # A sharded deployment runs one AM per shard, so the singleton
        # id is only the default, not an invariant.
        super().__init__(
            sim,
            network,
            node_id or NodeId.singleton(NodeKind.AUTONOMIC_MANAGER),
        )
        self._obs = obs
        if not proxies:
            raise ConfigurationError("AM needs at least one proxy")
        self._proxies = list(proxies)
        # One or more RM targets: with a replicated RM (see
        # repro.reconfig.replicated) requests fail over to the next
        # non-suspected member.
        if isinstance(reconfig_manager, NodeId):
            self._rm_targets = [reconfig_manager]
        else:
            self._rm_targets = list(reconfig_manager)
        if not self._rm_targets:
            raise ConfigurationError("AM needs at least one RM target")
        self._oracle = oracle
        self._detector = detector
        self.config = config.validate(replication_degree)
        self._replication_degree = replication_degree
        self._poll = suspect_poll_interval
        # Requests whose reply never arrives (lost message, lost reply)
        # are re-sent at this cadence; every peer handles duplicates.
        self._retransmit = max(retransmit_interval, suspect_poll_interval)
        self.retransmissions = 0

        # Local view of what is installed.
        self._installed_default = initial_default
        self._installed_overrides: dict[ObjectId, QuorumConfig] = {}
        #: Objects under per-object management (monitored forever after).
        self._managed: set[ObjectId] = set()

        # Round plumbing.
        self._round_no = 0
        self._round_reports: dict[NodeId, RoundStats] = {}
        self._oracle_replies: dict[int, NewQuorums] = {}
        self._tail_reply: Optional[TailQuorum] = None
        self._ack_rec: Optional[AckRec] = None
        self._wakeup: Optional[Future] = None

        # Observability / experiment hooks.
        self.rounds_executed = 0
        self.fine_reconfigurations = 0
        self.coarse_reconfigurations = 0
        self.cycles_completed = 0
        self.round_throughputs: list[tuple[float, float]] = []
        self._kpi_filter = MedianFilter(window=config.kpi_filter_window)
        self._loop_started = False

        self.register_handler(RoundStats, self._on_round_stats)
        self.register_handler(NewQuorums, self._on_new_quorums)
        self.register_handler(TailQuorum, self._on_tail_quorum)
        self.register_handler(AckRec, self._on_ack_rec)

    # -- read-only views ------------------------------------------------------

    @property
    def installed_default(self) -> QuorumConfig:
        return self._installed_default

    @property
    def installed_overrides(self) -> dict[ObjectId, QuorumConfig]:
        return dict(self._installed_overrides)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        super().start()
        if not self._loop_started:
            self._loop_started = True
            self.spawn(self._control_loop(), name=f"{self.node_id}.loop")

    # -- the control loop (Algorithm 1) --------------------------------------------

    def _control_loop(self) -> Iterator:
        while self.alive:
            yield from self._optimization_cycle()
            self.cycles_completed += 1

    def _optimization_cycle(self) -> Iterator:
        """One full Algorithm 1 cycle: fine-grain rounds, then the tail."""
        config = self.config
        kpi_history: list[float] = []
        fine_rounds = 0
        while config.enable_fine_grain:
            # Let a monitoring window elapse before collecting stats.
            yield self.sim.sleep(config.round_duration)
            reports = yield from self._run_round()
            candidates, object_stats, tail_stats, throughput = (
                merge_round_stats(reports, config.top_k)
            )
            self.round_throughputs.append((self.sim.now, throughput))
            kpi_history.append(
                self._kpi_filter.update(self._kpi_value(reports, throughput))
            )
            fine_rounds += 1

            # Feed the Oracle with the merged per-object profiles and
            # install any overrides that differ from the current plan.
            if object_stats:
                quorums = yield from self._ask_oracle(object_stats)
                changed = {
                    object_id: quorum
                    for object_id, quorum in quorums.items()
                    if self._installed_overrides.get(object_id) != quorum
                }
                if changed:
                    yield from self._fine_reconfigure(changed)

            # Next round monitors the new candidates plus everything
            # already under per-object management.
            self._managed.update(candidates)
            self._broadcast_proxies(
                NewTopK(
                    round_no=self._round_no,
                    object_ids=frozenset(self._managed),
                )
            )

            if fine_rounds >= config.max_rounds:
                break
            if not self._still_improving(kpi_history):
                break

        # Tail optimization (Algorithm 1 lines 18-23).
        yield self.sim.sleep(config.round_duration)
        reports = yield from self._run_round()
        _candidates, _object_stats, tail_stats, throughput = (
            merge_round_stats(reports, config.top_k)
        )
        self.round_throughputs.append((self.sim.now, throughput))
        if tail_stats.accesses > 0:
            tail_quorum = yield from self._ask_oracle_tail(tail_stats)
            if tail_quorum != self._installed_default:
                yield from self._coarse_reconfigure(tail_quorum)

    def _kpi_value(self, reports: list[RoundStats], throughput: float) -> float:
        """The target KPI for one round, oriented so higher is better.

        ``throughput`` mode uses total completed operations per second;
        ``latency`` mode uses the inverse of the throughput-weighted mean
        operation latency across proxies.
        """
        if self.config.kpi == "throughput":
            return throughput
        weight_total = sum(r.throughput for r in reports)
        if weight_total <= 0:
            return 0.0
        weighted_latency = (
            sum(r.mean_latency * r.throughput for r in reports) / weight_total
        )
        if weighted_latency <= 0:
            return 0.0
        return 1.0 / weighted_latency

    def _still_improving(self, history: list[float]) -> bool:
        """The while-condition of Algorithm 1: mean relative KPI gain
        over the last ``gamma`` rounds is at least ``theta``."""
        gamma = self.config.gamma
        if len(history) < gamma + 1:
            return True
        gains = []
        for index in range(len(history) - gamma, len(history)):
            previous = history[index - 1]
            if previous <= 0:
                gains.append(0.0)
            else:
                gains.append((history[index] - previous) / previous)
        return sum(gains) / gamma >= self.config.theta

    # -- round execution ----------------------------------------------------------

    def _run_round(self) -> Iterator:
        """Broadcast NEWROUND and gather ROUNDSTATS from live proxies."""
        self._round_no += 1
        self.rounds_executed += 1
        self._round_reports = {}
        message = NewRound(round_no=self._round_no)
        self._broadcast_proxies(message)
        since_send = 0.0
        while True:
            missing = [
                proxy
                for proxy in self._proxies
                if proxy not in self._round_reports
            ]
            if not missing:
                break
            if all(self._detector.suspect(proxy) for proxy in missing):
                break
            yield self.sim.sleep(self._poll)
            since_send += self._poll
            if since_send >= self._retransmit:
                # A lost NEWROUND (or lost ROUNDSTATS) must not wedge the
                # control loop; proxies answer duplicates from a cached
                # report, so retransmitting is safe.
                since_send = 0.0
                for proxy in missing:
                    if self._detector.suspect(proxy):
                        continue
                    self.retransmissions += 1
                    self.send(proxy, message, size=_CONTROL_BYTES)
        return list(self._round_reports.values())

    def _ask_oracle(self, object_stats: list[ObjectStats]) -> Iterator:
        round_no = self._round_no
        message = NewStats(round_no=round_no, stats=tuple(object_stats))
        size = _CONTROL_BYTES + 64 * len(object_stats)
        self.send(self._oracle, message, size=size)
        since_send = 0.0
        while round_no not in self._oracle_replies:
            yield self.sim.sleep(self._poll)
            since_send += self._poll
            if since_send >= self._retransmit:
                since_send = 0.0
                self.retransmissions += 1
                self.send(self._oracle, message, size=size)
        reply = self._oracle_replies.pop(round_no)
        return dict(reply.quorums)

    def _ask_oracle_tail(self, tail_stats: AggregateStats) -> Iterator:
        self._tail_reply = None
        message = TailStats(stats=tail_stats)
        self.send(self._oracle, message, size=_CONTROL_BYTES)
        since_send = 0.0
        while self._tail_reply is None:
            yield self.sim.sleep(self._poll)
            since_send += self._poll
            if since_send >= self._retransmit:
                since_send = 0.0
                self.retransmissions += 1
                self.send(self._oracle, message, size=_CONTROL_BYTES)
        return self._tail_reply.quorum

    def _current_rm(self) -> NodeId:
        """First RM target the failure detector does not suspect."""
        for target in self._rm_targets:
            if not self._detector.suspect(target):
                return target
        return self._rm_targets[-1]

    def _request_reconfiguration(
        self, payload: object, size: int, expected_round: int
    ) -> Iterator:
        """Send a reconfiguration request, failing over between RM
        replicas — and retransmitting to an unsuspected one — until the
        matching ACKREC arrives.  ``expected_round`` filters out stale
        acks from duplicate earlier requests (fine rounds use their round
        number, coarse requests use -1)."""
        self._ack_rec = None
        target = self._current_rm()
        self.send(target, payload, size=size)
        since_send = 0.0
        while (
            self._ack_rec is None
            or self._ack_rec.round_no != expected_round
        ):
            yield self.sim.sleep(self._poll)
            since_send += self._poll
            fresh = self._current_rm()
            if fresh != target:
                target = fresh
                since_send = 0.0
                self.send(target, payload, size=size)
            elif since_send >= self._retransmit:
                since_send = 0.0
                self.retransmissions += 1
                self.send(target, payload, size=size)

    def _fine_reconfigure(
        self, quorums: dict[ObjectId, QuorumConfig]
    ) -> Iterator:
        yield from self._request_reconfiguration(
            FineRec(round_no=self._round_no, quorums=dict(quorums)),
            size=_CONTROL_BYTES + 32 * len(quorums),
            expected_round=self._round_no,
        )
        self._installed_overrides.update(quorums)
        self.fine_reconfigurations += 1
        yield from self._quarantine("fine")

    def _quarantine(self, kind: str) -> Iterator:
        """Post-reconfiguration settling period (Section 4's quarantine)."""
        obs = self._obs
        started_at = self.sim.now
        span = (
            obs.tracer.start_span(
                "am.quarantine",
                category="autonomic",
                node=str(self.node_id),
                kind=kind,
            )
            if obs is not None
            else None
        )
        yield self.sim.sleep(self.config.quarantine)
        if obs is not None:
            assert span is not None
            span.finish(status="ok")
            obs.reconfig_quarantine.observe(self.sim.now - started_at)

    def _coarse_reconfigure(self, quorum: QuorumConfig) -> Iterator:
        yield from self._request_reconfiguration(
            CoarseRec(quorum=quorum), size=_CONTROL_BYTES,
            expected_round=-1,
        )
        self._installed_default = quorum
        self.coarse_reconfigurations += 1
        yield from self._quarantine("coarse")

    # -- message handlers ------------------------------------------------------------

    def _on_round_stats(self, envelope: Envelope) -> None:
        report: RoundStats = envelope.payload
        if report.round_no == self._round_no:
            self._round_reports[report.proxy] = report

    def _on_new_quorums(self, envelope: Envelope) -> None:
        reply: NewQuorums = envelope.payload
        self._oracle_replies[reply.round_no] = reply

    def _on_tail_quorum(self, envelope: Envelope) -> None:
        self._tail_reply = envelope.payload

    def _on_ack_rec(self, envelope: Envelope) -> None:
        self._ack_rec = envelope.payload

    def _broadcast_proxies(self, payload: object) -> None:
        for proxy in self._proxies:
            self.send(proxy, payload, size=_CONTROL_BYTES)
