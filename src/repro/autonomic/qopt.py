"""Top-level Q-OPT assembly: cluster + RM + Oracle + Autonomic Manager.

:func:`attach_qopt` is the one-call way to put the complete self-tuning
stack of Figure 4 on top of a :class:`~repro.sds.cluster.SwiftCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.autonomic.manager import AutonomicManager
from repro.common.config import AutonomicConfig
from repro.common.errors import ConfigurationError
from repro.oracle.service import OracleNode, QuorumOracle
from repro.reconfig.manager import (
    ReconfigurationManager,
    attach_reconfiguration_manager,
)
from repro.reconfig.replicated import (
    ReplicatedReconfigurationManager,
    attach_replicated_manager,
)
from repro.sds.cluster import SwiftCluster


@dataclass
class QOptSystem:
    """Handles to the three Q-OPT components attached to a cluster."""

    cluster: SwiftCluster
    reconfiguration_manager: ReconfigurationManager
    oracle_node: OracleNode
    autonomic_manager: AutonomicManager
    #: Present when the RM runs replicated (``rm_replicas > 1``).
    rm_group: Optional[ReplicatedReconfigurationManager] = None

    @property
    def oracle(self) -> QuorumOracle:
        return self.oracle_node.oracle

    def run(self, duration: float) -> None:
        """Advance the whole system by ``duration`` simulated seconds."""
        self.cluster.run(duration)


def attach_qopt(
    cluster: SwiftCluster,
    autonomic_config: Optional[AutonomicConfig] = None,
    oracle: Optional[QuorumOracle] = None,
    start: bool = True,
    rm_replicas: int = 1,
) -> QOptSystem:
    """Attach the full Q-OPT control plane to a cluster.

    ``oracle`` defaults to a decision-tree oracle trained on the default
    ~170-workload sweep against this cluster's configuration (the
    offline-training step of the paper).  Pass ``start=False`` to wire
    the components without starting the Autonomic Manager's control
    loop (e.g. for manually driven reconfiguration experiments).
    ``rm_replicas > 1`` deploys the fault-tolerant primary-backup
    Reconfiguration Manager instead of the single-node one; the
    Autonomic Manager then fails over between replicas automatically.
    """
    if rm_replicas < 1:
        raise ConfigurationError("rm_replicas must be >= 1")
    config = autonomic_config or AutonomicConfig()
    config.validate(cluster.config.replication_degree)
    if oracle is None:
        oracle = QuorumOracle.trained_default(
            cluster.config,
            min_write_quorum=config.min_write_quorum,
            max_write_quorum=config.max_write_quorum,
        )
    rm_group: Optional[ReplicatedReconfigurationManager] = None
    if rm_replicas == 1:
        rm = attach_reconfiguration_manager(cluster)
        rm_targets = rm.node_id
    else:
        rm_group = attach_replicated_manager(cluster, replicas=rm_replicas)
        rm = rm_group.members[0]
        rm_targets = rm_group.member_ids
    oracle_node = OracleNode(cluster.sim, cluster.network, oracle)
    oracle_node.start()
    cluster._nodes_by_id[oracle_node.node_id] = oracle_node
    am = AutonomicManager(
        cluster.sim,
        cluster.network,
        proxies=[proxy.node_id for proxy in cluster.proxies],
        reconfig_manager=rm_targets,
        oracle=oracle_node.node_id,
        detector=cluster.detector,
        config=config,
        replication_degree=cluster.config.replication_degree,
        initial_default=cluster.config.initial_quorum,
        obs=getattr(cluster, "obs", None),
    )
    cluster._nodes_by_id[am.node_id] = am
    if start:
        am.start()
    return QOptSystem(
        cluster=cluster,
        reconfiguration_manager=rm,
        oracle_node=oracle_node,
        autonomic_manager=am,
        rm_group=rm_group,
    )
