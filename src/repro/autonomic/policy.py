"""Control-loop robustness utilities (Section 4's closing remarks).

The paper's prototype uses a simple moving average plus a fixed
quarantine, and notes that "the system may be made more robust by
introducing techniques to filter out outliers [20], detect statistically
relevant shifts of system's metrics [32], or predict future workload
trends [22]".  This module implements one representative of each
family so the Autonomic Manager (and downstream users) can opt in:

* :class:`MedianFilter` — sliding-window median, robust to KPI spikes;
* :class:`PageHinkleyDetector` — classic sequential change-point test
  for statistically relevant shifts of a monitored metric;
* :class:`EwmaPredictor` — exponentially weighted moving average with a
  trend term (Holt's linear smoothing), predicting the metric one step
  ahead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError


class MedianFilter:
    """Sliding-window median filter for noisy KPI samples."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self._window = window
        self._values: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> float:
        """Add a sample and return the current filtered value."""
        self._values.append(value)
        ordered = sorted(self._values)
        middle = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    @property
    def value(self) -> float:
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        middle = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    def __len__(self) -> int:
        return len(self._values)


@dataclass
class _PHSide:
    cumulative: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0


class PageHinkleyDetector:
    """Page-Hinkley sequential test for mean shifts.

    Detects both upward and downward shifts of the monitored metric's
    mean that exceed ``delta`` (the magnitude treated as noise) by an
    accumulated evidence of at least ``threshold``.  Reset after each
    detection to watch for the next shift.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.5) -> None:
        if delta < 0:
            raise ConfigurationError("delta must be >= 0")
        if threshold <= 0:
            raise ConfigurationError("threshold must be > 0")
        self.delta = delta
        self.threshold = threshold
        self._count = 0
        self._mean = 0.0
        self._state = _PHSide()
        #: Total shifts detected so far.
        self.detections = 0

    def update(self, value: float) -> bool:
        """Add a sample; return True when a shift is detected."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        deviation = value - self._mean
        self._state.cumulative += deviation
        # Track both directions: a rise is evidenced by cum - min, a drop
        # by max - cum.
        self._state.minimum = min(
            self._state.minimum, self._state.cumulative - self.delta
        )
        self._state.maximum = max(
            self._state.maximum, self._state.cumulative + self.delta
        )
        rise = self._state.cumulative - self._state.minimum
        drop = self._state.maximum - self._state.cumulative
        if max(rise, drop) > self.threshold:
            self.detections += 1
            self.reset()
            return True
        return False

    def reset(self) -> None:
        """Forget history; start watching for the next shift."""
        self._count = 0
        self._mean = 0.0
        self._state = _PHSide()


class EwmaPredictor:
    """Holt's linear exponential smoothing: level + trend.

    ``predict()`` extrapolates the metric one observation ahead, which a
    proactive tuner can feed to the Oracle instead of the last raw
    sample.
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        if not 0 <= beta <= 1:
            raise ConfigurationError("beta must be in [0, 1]")
        self.alpha = alpha
        self.beta = beta
        self._level: Optional[float] = None
        self._trend = 0.0

    def update(self, value: float) -> None:
        if self._level is None:
            self._level = value
            self._trend = 0.0
            return
        previous_level = self._level
        self._level = self.alpha * value + (1 - self.alpha) * (
            self._level + self._trend
        )
        self._trend = self.beta * (self._level - previous_level) + (
            1 - self.beta
        ) * self._trend

    def predict(self, steps: int = 1) -> float:
        """Forecast ``steps`` observations ahead (0 = current level)."""
        if self._level is None:
            return 0.0
        return self._level + steps * self._trend

    @property
    def primed(self) -> bool:
        return self._level is not None
