"""The Autonomic Manager (Section 4) and Q-OPT system assembly."""

from repro.autonomic.manager import AutonomicManager, merge_round_stats
from repro.autonomic.policy import (
    EwmaPredictor,
    MedianFilter,
    PageHinkleyDetector,
)
from repro.autonomic.qopt import QOptSystem, attach_qopt

__all__ = [
    "AutonomicManager",
    "EwmaPredictor",
    "MedianFilter",
    "PageHinkleyDetector",
    "QOptSystem",
    "attach_qopt",
    "merge_round_stats",
]
