"""Zipf-distributed key selection, as used by YCSB's request skew.

The sampler precomputes the CDF over ranks once and draws in
O(log n) via binary search, so it is cheap enough for the hot path of a
closed-loop client.
"""

from __future__ import annotations

import bisect
import random

import numpy as np

from repro.common.errors import WorkloadError


class ZipfSampler:
    """Samples ranks in ``[0, n)`` with P(rank r) proportional to 1/(r+1)^s.

    ``exponent = 0`` degenerates to the uniform distribution, which is how
    uniform workloads are expressed throughout the workload generators.
    """

    def __init__(self, n: int, exponent: float) -> None:
        if n < 1:
            raise WorkloadError("ZipfSampler needs n >= 1")
        if exponent < 0:
            raise WorkloadError("Zipf exponent must be >= 0")
        self.n = n
        self.exponent = exponent
        weights = np.arange(1, n + 1, dtype=np.float64) ** (-exponent)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf: list[float] = cdf.tolist()

    def sample(self, rng: random.Random) -> int:
        """Draw one rank (0 = most popular)."""
        return bisect.bisect_left(self._cdf, rng.random())

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank {rank} out of [0, {self.n})")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous
