"""Workload generators: YCSB mixes, parametric sweeps, dynamic traces."""

from repro.workloads.base import Operation, Workload
from repro.workloads.generator import (
    MixedWorkload,
    MixtureComponent,
    SWEEP_OBJECT_SIZES,
    SWEEP_WRITE_RATIOS,
    SyntheticWorkload,
    WorkloadSpec,
    sweep_specs,
)
from repro.workloads.traces import (
    Phase,
    PhasedWorkload,
    ProfileFlipWorkload,
    commute_trace,
    diurnal_trace,
)
from repro.workloads.zipf import ZipfSampler
from repro.workloads import ycsb

__all__ = [
    "MixedWorkload",
    "MixtureComponent",
    "Operation",
    "Phase",
    "PhasedWorkload",
    "ProfileFlipWorkload",
    "SWEEP_OBJECT_SIZES",
    "SWEEP_WRITE_RATIOS",
    "SyntheticWorkload",
    "Workload",
    "WorkloadSpec",
    "ZipfSampler",
    "commute_trace",
    "diurnal_trace",
    "sweep_specs",
    "ycsb",
]
