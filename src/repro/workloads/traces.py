"""Time-varying workloads: phase switches and diurnal patterns.

The paper motivates dynamic adaptation with the Dropbox study [14]:
"some users switch between periods characterized by write-intensive
workloads and periods characterized by read-intensive, or even
read-only, workloads (for instance, when users commute from office to
home)".  :class:`PhasedWorkload` models exactly that — a schedule of
:class:`WorkloadSpec` phases the generator moves through as simulated
time advances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import WorkloadError
from repro.common.types import ObjectId, OpType
from repro.workloads.base import Workload
from repro.workloads.generator import SyntheticWorkload, WorkloadSpec


@dataclass(frozen=True)
class Phase:
    """One phase of a time-varying workload."""

    start_time: float
    spec: WorkloadSpec


class PhasedWorkload(Workload):
    """Workload whose profile changes at scheduled simulated times.

    All phases share the same object population (taken from the first
    phase's spec) — what changes over time is the operation mix and
    request skew, mirroring how a real tenant's access pattern shifts
    over the same data.

    The generator learns the current time through ``clock``, a callable
    returning the simulated now (pass ``lambda: cluster.sim.now``).
    """

    def __init__(
        self,
        phases: list[Phase],
        clock: Callable[[], float],
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not phases:
            raise WorkloadError("PhasedWorkload needs at least one phase")
        starts = [phase.start_time for phase in phases]
        if starts != sorted(starts):
            raise WorkloadError("phases must be sorted by start_time")
        if starts[0] != 0.0:
            raise WorkloadError("first phase must start at time 0")
        population = phases[0].spec
        self.phases = phases
        self._clock = clock
        # One SyntheticWorkload per phase, all sharing the object ids and
        # sizes of the first phase so the population is stable.
        self._workloads = []
        base = SyntheticWorkload(population, seed=seed)
        for phase in phases:
            workload = SyntheticWorkload(
                WorkloadSpec(
                    write_ratio=phase.spec.write_ratio,
                    object_size=population.object_size,
                    num_objects=population.num_objects,
                    skew=phase.spec.skew,
                    size_sigma=population.size_sigma,
                    name=population.name,
                ),
                seed=seed,
            )
            workload._object_ids = base.object_ids()
            workload._sizes = list(base._sizes)
            self._workloads.append(workload)

    def object_ids(self) -> list[ObjectId]:
        return self._workloads[0].object_ids()

    def phase_index_at(self, time: float) -> int:
        """Index of the phase active at simulated ``time``."""
        index = 0
        for position, phase in enumerate(self.phases):
            if phase.start_time <= time:
                index = position
        return index

    def active_spec(self) -> WorkloadSpec:
        return self.phases[self.phase_index_at(self._clock())].spec

    def sample(self, rng: random.Random) -> tuple[ObjectId, OpType, int]:
        workload = self._workloads[self.phase_index_at(self._clock())]
        return workload.sample(rng)


def commute_trace(
    office_spec: WorkloadSpec,
    home_spec: WorkloadSpec,
    switch_time: float,
    clock: Callable[[], float],
    seed: int = 0,
) -> PhasedWorkload:
    """The Dropbox commute pattern: one switch between two profiles."""
    return PhasedWorkload(
        phases=[
            Phase(start_time=0.0, spec=office_spec),
            Phase(start_time=switch_time, spec=home_spec),
        ],
        clock=clock,
        seed=seed,
    )


def diurnal_trace(
    day_spec: WorkloadSpec,
    night_spec: WorkloadSpec,
    period: float,
    cycles: int,
    clock: Callable[[], float],
    seed: int = 0,
) -> PhasedWorkload:
    """Alternating day/night profiles: ``cycles`` repetitions of
    ``period`` seconds of each phase."""
    phases: list[Phase] = []
    for cycle in range(cycles):
        phases.append(Phase(start_time=2 * cycle * period, spec=day_spec))
        phases.append(
            Phase(start_time=(2 * cycle + 1) * period, spec=night_spec)
        )
    return PhasedWorkload(phases=phases, clock=clock, seed=seed)


class ProfileFlipWorkload(Workload):
    """Two object populations that swap read/write profiles at a set time.

    Before ``flip_time`` population A is read-heavy and population B is
    write-heavy; afterwards the roles reverse.  This is the hard case for
    per-object tuning: the overrides Q-OPT installed for each population
    become exactly wrong at the flip and must be re-learned (made
    possible by the Autonomic Manager keeping optimized objects under
    monitoring).
    """

    def __init__(
        self,
        spec_a: WorkloadSpec,
        spec_b: WorkloadSpec,
        flip_time: float,
        clock: Callable[[], float],
        seed: int = 0,
    ) -> None:
        super().__init__()
        if flip_time <= 0:
            raise WorkloadError("flip_time must be > 0")
        self.flip_time = flip_time
        self._clock = clock
        self._workload_a = SyntheticWorkload(spec_a, seed=seed)
        self._workload_b = SyntheticWorkload(spec_b, seed=seed + 1)
        self._spec_a = spec_a
        self._spec_b = spec_b

    def object_ids(self) -> list[ObjectId]:
        return self._workload_a.object_ids() + self._workload_b.object_ids()

    @property
    def flipped(self) -> bool:
        return self._clock() >= self.flip_time

    def sample(self, rng: random.Random) -> tuple[ObjectId, OpType, int]:
        # Pick the population uniformly, then apply the profile that
        # currently governs it.
        use_a = rng.random() < 0.5
        workload = self._workload_a if use_a else self._workload_b
        spec = self._spec_a if use_a else self._spec_b
        write_ratio = spec.write_ratio
        if self.flipped:
            other = self._spec_b if use_a else self._spec_a
            write_ratio = other.write_ratio
        object_id, _op, size = workload.sample(rng)
        op_type = OpType.WRITE if rng.random() < write_ratio else OpType.READ
        return object_id, op_type, size
