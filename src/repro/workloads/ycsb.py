"""YCSB-style benchmark workloads (Cooper et al. [8] in the paper).

Section 2.2 evaluates three representative workloads:

* **Workload A** — "update heavy": 50% reads / 50% writes, modelling a
  session store for a web application;
* **Workload B** — "read mostly": 95% reads / 5% writes, modelling photo
  tagging;
* **Workload C (paper)** — 99% writes, modelling a backup / personal
  file-storage service with upload-only users (this is the paper's third
  workload; note that stock YCSB's "workload C" is 100% *reads* — the
  paper reuses the letter for its backup scenario, and we follow the
  paper).

The remaining stock YCSB mixes (C-standard, D, F) are provided for
completeness; YCSB E (scans) does not apply to a pure key-value API.
"""

from __future__ import annotations

from repro.workloads.generator import SyntheticWorkload, WorkloadSpec

#: Default object population and size used by the Section 2.2 experiments.
DEFAULT_NUM_OBJECTS = 256
DEFAULT_OBJECT_SIZE = 64 * 1024
#: YCSB's default request skew.
DEFAULT_SKEW = 0.99


def workload_a(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
    skew: float = DEFAULT_SKEW,
) -> WorkloadSpec:
    """YCSB A: 50/50 read-write (user session store)."""
    return WorkloadSpec(
        write_ratio=0.50,
        object_size=object_size,
        num_objects=num_objects,
        skew=skew,
        name="ycsb-a",
    )


def workload_b(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
    skew: float = DEFAULT_SKEW,
) -> WorkloadSpec:
    """YCSB B: 95% reads (photo tagging)."""
    return WorkloadSpec(
        write_ratio=0.05,
        object_size=object_size,
        num_objects=num_objects,
        skew=skew,
        name="ycsb-b",
    )


def workload_c_paper(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
    skew: float = DEFAULT_SKEW,
) -> WorkloadSpec:
    """The paper's Workload C: 99% writes (backup service)."""
    return WorkloadSpec(
        write_ratio=0.99,
        object_size=object_size,
        num_objects=num_objects,
        skew=skew,
        name="ycsb-c-paper",
    )


def workload_c_standard(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
    skew: float = DEFAULT_SKEW,
) -> WorkloadSpec:
    """Stock YCSB C: 100% reads (user profile cache)."""
    return WorkloadSpec(
        write_ratio=0.0,
        object_size=object_size,
        num_objects=num_objects,
        skew=skew,
        name="ycsb-c-standard",
    )


def workload_d(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
) -> WorkloadSpec:
    """Stock YCSB D: 95% reads of recently inserted items."""
    return WorkloadSpec(
        write_ratio=0.05,
        object_size=object_size,
        num_objects=num_objects,
        skew=1.2,
        name="ycsb-d",
    )


def workload_f(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
    skew: float = DEFAULT_SKEW,
) -> WorkloadSpec:
    """Stock YCSB F: read-modify-write (50% reads, 50% writes)."""
    return WorkloadSpec(
        write_ratio=0.50,
        object_size=object_size,
        num_objects=num_objects,
        skew=skew,
        name="ycsb-f",
    )


#: The three workloads of Figure 2, in paper order.
def figure2_workloads(
    object_size: int = DEFAULT_OBJECT_SIZE,
    num_objects: int = DEFAULT_NUM_OBJECTS,
    skew: float = DEFAULT_SKEW,
) -> list[WorkloadSpec]:
    return [
        workload_a(object_size, num_objects, skew),
        workload_b(object_size, num_objects, skew),
        workload_c_paper(object_size, num_objects, skew),
    ]


def build(spec: WorkloadSpec, seed: int = 0) -> SyntheticWorkload:
    """Instantiate an operation stream for a YCSB spec."""
    return SyntheticWorkload(spec, seed=seed)
