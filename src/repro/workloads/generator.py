"""Parametric workload generator and the paper's ~170-workload sweep.

Section 2.2: "we tested approx. 170 workloads, obtained by varying the
percentage of read/write operations, the average object size, and using
10 clients per proxy".  :func:`sweep_specs` reproduces that grid;
:class:`SyntheticWorkload` turns one grid point into an operation
stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.common.errors import WorkloadError
from repro.common.types import ObjectId, OpType
from repro.workloads.base import Workload
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a synthetic workload."""

    #: Fraction of operations that are writes, in [0, 1].
    write_ratio: float
    #: Mean object size in bytes.
    object_size: int
    #: Number of distinct objects.
    num_objects: int = 256
    #: Zipf exponent of the access skew (0 = uniform).
    skew: float = 0.0
    #: Spread of per-object sizes: each object's size is drawn once from a
    #: lognormal with this sigma around ``object_size`` (0 = constant).
    size_sigma: float = 0.0
    #: Label used in reports.
    name: str = ""

    def validate(self) -> "WorkloadSpec":
        if not 0.0 <= self.write_ratio <= 1.0:
            raise WorkloadError(
                f"write_ratio {self.write_ratio} outside [0, 1]"
            )
        if self.object_size < 0:
            raise WorkloadError("object_size must be >= 0")
        if self.num_objects < 1:
            raise WorkloadError("num_objects must be >= 1")
        if self.skew < 0:
            raise WorkloadError("skew must be >= 0")
        if self.size_sigma < 0:
            raise WorkloadError("size_sigma must be >= 0")
        return self

    @property
    def write_percentage(self) -> float:
        return self.write_ratio * 100.0

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        return (
            f"w{self.write_percentage:.0f}%"
            f"-{self.object_size}B-z{self.skew:g}"
        )

    def with_write_ratio(self, write_ratio: float) -> "WorkloadSpec":
        return replace(self, write_ratio=write_ratio)


class SyntheticWorkload(Workload):
    """Operation stream for one :class:`WorkloadSpec`.

    Object ids, per-object sizes and the skew sampler are derived
    deterministically from ``seed`` so that every client thread sharing
    the workload sees the same object population.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        super().__init__()
        self.spec = spec.validate()
        self._sampler = ZipfSampler(spec.num_objects, spec.skew)
        size_rng = random.Random(seed)
        self._object_ids: list[ObjectId] = [
            f"{spec.name or 'obj'}-{index:06d}"
            for index in range(spec.num_objects)
        ]
        self._sizes: list[int] = [
            self._draw_size(size_rng) for _ in range(spec.num_objects)
        ]

    def _draw_size(self, rng: random.Random) -> int:
        spec = self.spec
        if spec.size_sigma == 0 or spec.object_size == 0:
            return spec.object_size
        scale = rng.lognormvariate(0.0, spec.size_sigma)
        return max(1, round(scale * spec.object_size))

    def object_ids(self) -> list[ObjectId]:
        return list(self._object_ids)

    def size_of(self, object_id: ObjectId) -> int:
        return self._sizes[self._object_ids.index(object_id)]

    def sample(self, rng: random.Random) -> tuple[ObjectId, OpType, int]:
        rank = self._sampler.sample(rng)
        op_type = (
            OpType.WRITE
            if rng.random() < self.spec.write_ratio
            else OpType.READ
        )
        return self._object_ids[rank], op_type, self._sizes[rank]


#: Write percentages of the sweep: 5% steps from 1% to 99%.
SWEEP_WRITE_RATIOS: tuple[float, ...] = tuple(
    [0.01] + [round(x * 0.05, 2) for x in range(1, 20)] + [0.99]
)

#: Object sizes of the sweep (bytes): 1 KiB .. 1 MiB.
SWEEP_OBJECT_SIZES: tuple[int, ...] = (
    1 * 1024,
    4 * 1024,
    16 * 1024,
    64 * 1024,
    128 * 1024,
    256 * 1024,
    512 * 1024,
    1024 * 1024,
)


def sweep_specs(
    write_ratios: tuple[float, ...] = SWEEP_WRITE_RATIOS,
    object_sizes: tuple[int, ...] = SWEEP_OBJECT_SIZES,
    num_objects: int = 256,
    skew: float = 0.0,
) -> list[WorkloadSpec]:
    """The full cross-product grid (21 x 8 = 168 ~ "approx. 170")."""
    specs = []
    for object_size in object_sizes:
        for write_ratio in write_ratios:
            specs.append(
                WorkloadSpec(
                    write_ratio=write_ratio,
                    object_size=object_size,
                    num_objects=num_objects,
                    skew=skew,
                ).validate()
            )
    return specs


@dataclass(frozen=True)
class MixtureComponent:
    """One object-population slice of a mixed workload."""

    spec: WorkloadSpec
    weight: float = 1.0


class MixedWorkload(Workload):
    """A mixture of sub-workloads over disjoint object populations.

    Models multi-tenant / multi-profile scenarios (Section 1): each
    component has its own read/write profile and object population; each
    operation first picks a component by weight, then samples within it.
    """

    def __init__(
        self, components: list[MixtureComponent], seed: int = 0
    ) -> None:
        super().__init__()
        if not components:
            raise WorkloadError("MixedWorkload needs at least one component")
        total = sum(component.weight for component in components)
        if total <= 0:
            raise WorkloadError("component weights must sum to > 0")
        self.components = components
        self._cumulative: list[float] = []
        acc = 0.0
        for component in components:
            acc += component.weight / total
            self._cumulative.append(acc)
        self._workloads = [
            SyntheticWorkload(component.spec, seed=seed + index)
            for index, component in enumerate(components)
        ]

    def object_ids(self) -> list[ObjectId]:
        ids: list[ObjectId] = []
        for workload in self._workloads:
            ids.extend(workload.object_ids())
        return ids

    def component_workloads(self) -> list[SyntheticWorkload]:
        return list(self._workloads)

    def sample(self, rng: random.Random) -> tuple[ObjectId, OpType, int]:
        draw = rng.random()
        for index, edge in enumerate(self._cumulative):
            if draw <= edge:
                return self._workloads[index].sample(rng)
        return self._workloads[-1].sample(rng)
