"""Workload model: operations and the source interface clients consume."""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.common.types import ObjectId, OpType


@dataclass(frozen=True)
class Operation:
    """One generated client operation."""

    object_id: ObjectId
    op_type: OpType
    size: int
    value: bytes = b""


class Workload:
    """Base class for operation generators.

    Subclasses implement :meth:`sample` returning ``(object_id, op_type,
    size)``; the base class attaches globally unique write payloads so
    consistency checkers can identify every written version.
    """

    def __init__(self) -> None:
        self._write_seq = itertools.count(1)

    def sample(
        self, rng: random.Random
    ) -> tuple[ObjectId, OpType, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def next_operation(self, rng: random.Random) -> Operation:
        object_id, op_type, size = self.sample(rng)
        if op_type is OpType.WRITE:
            token = next(self._write_seq)
            value = f"{object_id}#{token}".encode("utf-8")
        else:
            value = b""
        return Operation(
            object_id=object_id, op_type=op_type, size=size, value=value
        )
