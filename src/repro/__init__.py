"""Q-OPT: self-tuning quorum systems for strongly consistent SDS.

A full reproduction of *"Q-OPT: Self-tuning Quorum System for Strongly
Consistent Software Defined Storage"* (Middleware 2015): a simulated
Swift-like object store, the non-blocking quorum reconfiguration
protocol, Space-Saving top-k workload analysis, a from-scratch
C4.5/C5.0-style decision-tree Oracle, and the Autonomic Manager tying
them together — plus the experiment harness regenerating the paper's
evaluation.

Quickstart::

    from repro import ClusterConfig, SwiftCluster, attach_qopt, ycsb

    cluster = SwiftCluster(ClusterConfig())
    system = attach_qopt(cluster)
    cluster.add_clients(ycsb.build(ycsb.workload_a()))
    cluster.run(60.0)
    print(cluster.log.throughput(30.0, 60.0), "ops/s")
"""

from repro.analysis import (
    MvaThroughputModel,
    WorkloadPoint,
    measure_throughput,
    sweep_configurations,
)
from repro.autonomic import AutonomicManager, QOptSystem, attach_qopt
from repro.common import (
    AutonomicConfig,
    ClusterConfig,
    NetworkConfig,
    NodeId,
    OpType,
    ProxyConfig,
    QuorumConfig,
    ReproError,
    StorageConfig,
    Version,
    VersionStamp,
)
from repro.metrics import LatencySummary, OperationLog, Timeline
from repro.oracle import (
    BoostedTreeClassifier,
    DecisionTreeClassifier,
    QuorumOracle,
    generate_training_set,
)
from repro.reconfig import (
    BlockingReconfigurationManager,
    ReconfigurationManager,
    attach_blocking_manager,
    attach_reconfiguration_manager,
)
from repro.sds import QuorumPlan, SwiftCluster, build_cluster
from repro.sim import Simulator
from repro.topk import SpaceSaving
from repro.workloads import (
    MixedWorkload,
    PhasedWorkload,
    SyntheticWorkload,
    WorkloadSpec,
    sweep_specs,
    ycsb,
)

__version__ = "1.0.0"

__all__ = [
    "AutonomicConfig",
    "AutonomicManager",
    "BlockingReconfigurationManager",
    "BoostedTreeClassifier",
    "ClusterConfig",
    "DecisionTreeClassifier",
    "LatencySummary",
    "MixedWorkload",
    "MvaThroughputModel",
    "NetworkConfig",
    "NodeId",
    "OperationLog",
    "OpType",
    "PhasedWorkload",
    "ProxyConfig",
    "QOptSystem",
    "QuorumConfig",
    "QuorumOracle",
    "QuorumPlan",
    "ReconfigurationManager",
    "ReproError",
    "Simulator",
    "SpaceSaving",
    "StorageConfig",
    "SwiftCluster",
    "SyntheticWorkload",
    "Timeline",
    "Version",
    "VersionStamp",
    "WorkloadPoint",
    "WorkloadSpec",
    "attach_blocking_manager",
    "attach_qopt",
    "attach_reconfiguration_manager",
    "build_cluster",
    "generate_training_set",
    "measure_throughput",
    "sweep_configurations",
    "sweep_specs",
    "ycsb",
    "__version__",
]
