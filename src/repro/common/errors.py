"""Exception hierarchy shared by every Q-OPT subsystem.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied.

    Raised, for example, when a quorum configuration violates the
    strictness requirement ``R + W > N`` or when a cluster is built with
    fewer storage nodes than the replication degree.
    """


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    This signals a logic error in a protocol implementation: some process
    is blocked on a future that can never be resolved.
    """


class NodeCrashedError(SimulationError):
    """An operation was attempted on a node that has crashed."""


class OperationError(ReproError):
    """A client-visible request-path failure.

    Unlike :class:`ProtocolError` (an invariant violation, i.e. a bug),
    an :class:`OperationError` is an *expected* outcome under faults: the
    operation could not be completed before its deadline and the caller
    is told so instead of waiting forever.  Every operation either
    succeeds or raises a subclass of this error within a bounded time.
    """


class OperationTimeoutError(OperationError):
    """An operation exceeded its end-to-end deadline."""

    def __init__(
        self,
        message: str,
        *,
        object_id: str = "",
        elapsed: float = 0.0,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.object_id = object_id
        self.elapsed = elapsed
        self.attempts = attempts


class GatherTimeoutError(OperationTimeoutError):
    """A proxy could not assemble a quorum before its gather deadline.

    Raised after the proxy has exhausted its fallback (contacting the
    remaining replicas, Section 2.1) and its ring-rotation retries.
    """


class RetriesExhaustedError(OperationTimeoutError):
    """A client gave up after its bounded retry/backoff budget."""


class ProtocolError(ReproError):
    """A replication or reconfiguration protocol invariant was violated."""


class QuorumUnavailableError(ProtocolError):
    """Not enough live replicas exist to assemble the requested quorum."""


class ReconfigurationInProgressError(ProtocolError):
    """A new reconfiguration was requested while one is still running.

    The Reconfiguration Manager serializes reconfigurations (Section 5.2 of
    the paper): a new one may only start after the previous one concluded.
    """


class OracleError(ReproError):
    """The machine-learning oracle could not produce a prediction."""


class NotFittedError(OracleError):
    """A model was asked to predict before being trained."""


class DatasetError(OracleError):
    """A training dataset is malformed (empty, ragged, or mislabelled)."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class ExperimentError(ReproError):
    """An experiment harness failure (bad parameters, empty results)."""
