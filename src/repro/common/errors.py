"""Exception hierarchy shared by every Q-OPT subsystem.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied.

    Raised, for example, when a quorum configuration violates the
    strictness requirement ``R + W > N`` or when a cluster is built with
    fewer storage nodes than the replication degree.
    """


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    This signals a logic error in a protocol implementation: some process
    is blocked on a future that can never be resolved.
    """


class NodeCrashedError(SimulationError):
    """An operation was attempted on a node that has crashed."""


class ProtocolError(ReproError):
    """A replication or reconfiguration protocol invariant was violated."""


class QuorumUnavailableError(ProtocolError):
    """Not enough live replicas exist to assemble the requested quorum."""


class ReconfigurationInProgressError(ProtocolError):
    """A new reconfiguration was requested while one is still running.

    The Reconfiguration Manager serializes reconfigurations (Section 5.2 of
    the paper): a new one may only start after the previous one concluded.
    """


class OracleError(ReproError):
    """The machine-learning oracle could not produce a prediction."""


class NotFittedError(OracleError):
    """A model was asked to predict before being trained."""


class DatasetError(OracleError):
    """A training dataset is malformed (empty, ragged, or mislabelled)."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class ExperimentError(ReproError):
    """An experiment harness failure (bad parameters, empty results)."""
