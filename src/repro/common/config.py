"""Configuration dataclasses for the simulated test-bed.

Default values mirror the experimental platform of Section 2.2 of the
paper: 10 storage nodes, 5 proxies, 5 client groups of 10 closed-loop
threads, replication degree 5, a Gigabit LAN, and storage nodes whose
writes are disk-bound while reads are mostly served from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.types import QuorumConfig


@dataclass(frozen=True)
class NetworkConfig:
    """Latency/bandwidth model of the cluster interconnect.

    Every node sits behind one full-duplex link of ``bandwidth``
    bytes/second: all bytes leaving a node serialize through its egress,
    all bytes arriving serialize through its ingress.  This is the
    dominant effect behind Figure 2 — a proxy relays the full object
    payload to/from each contacted replica, so the per-operation load on
    its Gigabit NIC is proportional to the quorum size.  On top of the
    transmission times, each hop pays ``base_latency`` propagation plus a
    small uniform jitter; channels stay FIFO per (sender, receiver).
    """

    #: One-way propagation + switching delay, seconds (Gigabit LAN scale).
    base_latency: float = 0.0002
    #: Per-node link bandwidth in bytes/second (1 Gbit/s ~ 125 MB/s).
    bandwidth: float = 125e6
    #: Uniform jitter added to each delivery, as a fraction of base latency.
    jitter_fraction: float = 0.25

    def validate(self) -> "NetworkConfig":
        if self.base_latency < 0:
            raise ConfigurationError("base_latency must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        if self.jitter_fraction < 0:
            raise ConfigurationError("jitter_fraction must be >= 0")
        return self


@dataclass(frozen=True)
class StorageConfig:
    """Service-time model of one storage node.

    Reads are served from the page cache most of the time; writes must
    reach disk (Swift fsyncs objects), which is why the paper observes that
    "read operations are faster than write operations" and why balanced
    workloads favour slightly smaller read quorums.
    """

    #: Fixed CPU + cache-hit cost of serving a read, seconds.
    read_service_time: float = 0.0015
    #: Fixed cost of a write (request parsing + fsync latency), seconds.
    write_service_time: float = 0.0040
    #: Cache throughput for reads, bytes/second.
    read_bandwidth: float = 400e6
    #: Sustained disk write throughput, bytes/second (15K RPM SATA scale).
    write_bandwidth: float = 80e6
    #: Probability a read misses the cache and pays the disk penalty.
    read_miss_ratio: float = 0.20
    #: Extra latency of a cache-missing read, seconds (disk seek).
    read_miss_penalty: float = 0.0060
    #: Number of requests a storage node serves concurrently (disk queue
    #: depth / worker threads).  Requests beyond this queue FIFO.
    concurrency: int = 4
    #: Period of the background object replicator (Swift's anti-entropy
    #: daemon), seconds.  Each cycle pushes locally updated objects to the
    #: peer replicas that may have missed the foreground write quorum.
    #: 0 disables background replication.
    replication_interval: float = 1.0
    #: Longest per-object read lease a primary replica will grant,
    #: seconds.  Requested durations are clamped to this, bounding how
    #: long a partitioned leaseholder can keep serving local reads
    #: (invariant I7).
    max_lease_duration: float = 5.0

    def validate(self) -> "StorageConfig":
        if self.replication_interval < 0:
            raise ConfigurationError("replication_interval must be >= 0")
        if self.max_lease_duration < 0:
            raise ConfigurationError("max_lease_duration must be >= 0")
        if min(self.read_service_time, self.write_service_time) < 0:
            raise ConfigurationError("service times must be >= 0")
        if min(self.read_bandwidth, self.write_bandwidth) <= 0:
            raise ConfigurationError("bandwidths must be > 0")
        if not 0 <= self.read_miss_ratio <= 1:
            raise ConfigurationError("read_miss_ratio must be in [0, 1]")
        if self.concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        return self

    def mean_read_time(self, size: int) -> float:
        """Expected read service time for an object of ``size`` bytes."""
        return (
            self.read_service_time
            + self.read_miss_ratio * self.read_miss_penalty
            + size / self.read_bandwidth
        )

    def mean_write_time(self, size: int) -> float:
        """Expected write service time for an object of ``size`` bytes."""
        return self.write_service_time + size / self.write_bandwidth


@dataclass(frozen=True)
class ProxyConfig:
    """Per-request CPU cost of a proxy and its fallback behaviour."""

    #: CPU time a proxy spends marshalling one replica request, seconds.
    per_replica_cpu: float = 0.00008
    #: Worker threads per proxy process.
    concurrency: int = 16
    #: Time a proxy waits for quorum replies before falling back to the
    #: remaining replicas (Section 2.1 "if ... some replies are missing,
    #: the request is sent to the remaining replicas"), seconds.
    fallback_timeout: float = 0.5
    #: Hard deadline for one quorum gather, seconds.  Once it expires the
    #: gather resolves with a typed timeout instead of blocking forever —
    #: a crashed or partitioned quorum can no longer wedge an operation.
    gather_deadline: float = 1.5
    #: Quorum-gather attempts per operation.  After a gather deadline the
    #: proxy retries against the next ring rotation (a different replica
    #: preference order), then surfaces ``GatherTimeoutError``.
    max_gather_attempts: int = 3
    #: Per-object read-lease duration requested from primaries, seconds.
    #: 0 (the default) disables the lease subsystem entirely.  This is
    #: the *static* feature flag and must be uniform across a fleet:
    #: enabling it also makes every write quorum include the object's
    #: primary replica, which is what makes single-replica lease reads
    #: safe (invariant I7).  A per-proxy runtime toggle
    #: (``ProxyNode.set_lease_reads``) additionally controls whether the
    #: proxy *uses* leases on its read path; that side is safe to flip
    #: per proxy because the write-side rule stays on.
    lease_duration: float = 0.0
    #: Assumed upper bound on clock skew between a proxy and a primary
    #: replica, seconds.  The proxy treats a held lease as expired this
    #: much *early*; the check is an advisory optimization (the primary
    #: validates grants authoritatively), so skew beyond the bound costs
    #: a fallback round trip, never consistency.
    lease_skew_bound: float = 0.01

    def validate(self) -> "ProxyConfig":
        if self.per_replica_cpu < 0:
            raise ConfigurationError("per_replica_cpu must be >= 0")
        if self.concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if self.fallback_timeout <= 0:
            raise ConfigurationError("fallback_timeout must be > 0")
        if self.gather_deadline <= self.fallback_timeout:
            raise ConfigurationError(
                "gather_deadline must exceed fallback_timeout "
                f"({self.gather_deadline} <= {self.fallback_timeout})"
            )
        if self.max_gather_attempts < 1:
            raise ConfigurationError("max_gather_attempts must be >= 1")
        if self.lease_duration < 0:
            raise ConfigurationError("lease_duration must be >= 0")
        if self.lease_skew_bound < 0:
            raise ConfigurationError("lease_skew_bound must be >= 0")
        if 0 < self.lease_duration <= self.lease_skew_bound:
            raise ConfigurationError(
                "lease_duration must exceed lease_skew_bound "
                f"({self.lease_duration} <= {self.lease_skew_bound})"
            )
        return self

    def operation_deadline(self) -> float:
        """Upper bound on the time a proxy spends on one operation's
        quorum gathers before surfacing a typed error."""
        return self.gather_deadline * self.max_gather_attempts


@dataclass(frozen=True)
class ClientConfig:
    """Deadline and retry/backoff policy of one client thread.

    A client attempt that receives no reply within ``attempt_timeout``
    is abandoned; the operation is retried (bounded exponential backoff
    with seeded jitter, so retry storms from many clients decorrelate
    deterministically) up to ``max_attempts`` times, after which the
    operation fails with ``RetriesExhaustedError``.  Every operation
    therefore resolves — success or typed error — within
    :meth:`deadline_bound` simulated seconds.
    """

    #: Per-attempt reply deadline, seconds.  Must cover the proxy's own
    #: retry budget plus round trips for the fault-free path to win.
    attempt_timeout: float = 6.0
    #: Total attempts (first try + retries).
    max_attempts: int = 3
    #: First backoff, seconds; attempt ``i`` backs off ``base * 2**i``.
    backoff_base: float = 0.05
    #: Backoff ceiling, seconds.
    backoff_cap: float = 1.0
    #: Uniform jitter added to each backoff, as a fraction of it.
    backoff_jitter: float = 0.5

    def validate(self) -> "ClientConfig":
        if self.attempt_timeout <= 0:
            raise ConfigurationError("attempt_timeout must be > 0")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")
        if self.backoff_cap < self.backoff_base:
            raise ConfigurationError("backoff_cap must be >= backoff_base")
        if self.backoff_jitter < 0:
            raise ConfigurationError("backoff_jitter must be >= 0")
        return self

    def backoff(self, retry_index: int) -> float:
        """Deterministic part of the ``retry_index``-th backoff."""
        return min(self.backoff_cap, self.backoff_base * (2**retry_index))

    def deadline_bound(self) -> float:
        """Worst-case time until an operation succeeds or fails typed."""
        total = self.max_attempts * self.attempt_timeout
        for retry_index in range(self.max_attempts - 1):
            total += self.backoff(retry_index) * (1.0 + self.backoff_jitter)
        return total


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster (Section 2.2 test-bed by default)."""

    num_storage_nodes: int = 10
    num_proxies: int = 5
    clients_per_proxy: int = 10
    replication_degree: int = 5
    initial_quorum: QuorumConfig = field(
        default_factory=lambda: QuorumConfig(read=3, write=3)
    )
    #: Write-ordering scheme (Section 2.1): "timestamp" uses globally
    #: synchronized clocks + proxy-id tie-breaks; "vector" uses
    #: Dynamo-style vector clocks with commutative merges.
    versioning: str = "timestamp"
    network: NetworkConfig = field(default_factory=NetworkConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    proxy: ProxyConfig = field(default_factory=ProxyConfig)
    client: ClientConfig = field(default_factory=ClientConfig)

    def validate(self) -> "ClusterConfig":
        if self.num_storage_nodes < 1:
            raise ConfigurationError("need at least one storage node")
        if self.num_proxies < 1:
            raise ConfigurationError("need at least one proxy")
        if self.clients_per_proxy < 1:
            raise ConfigurationError("need at least one client per proxy")
        if self.replication_degree < 1:
            raise ConfigurationError("replication degree must be >= 1")
        if self.replication_degree > self.num_storage_nodes:
            raise ConfigurationError(
                f"replication degree {self.replication_degree} exceeds "
                f"storage node count {self.num_storage_nodes}"
            )
        self.initial_quorum.validate_strict(self.replication_degree)
        if self.versioning not in ("timestamp", "vector"):
            raise ConfigurationError(
                "versioning must be 'timestamp' or 'vector', got "
                f"{self.versioning!r}"
            )
        self.network.validate()
        self.storage.validate()
        self.proxy.validate()
        self.client.validate()
        return self

    def with_quorum(self, quorum: QuorumConfig) -> "ClusterConfig":
        """Copy of this config with a different initial quorum."""
        return replace(self, initial_quorum=quorum)

    @property
    def total_clients(self) -> int:
        return self.num_proxies * self.clients_per_proxy


@dataclass(frozen=True)
class AutonomicConfig:
    """Knobs of the Autonomic Manager control loop (Sections 3-4)."""

    #: Number of hot objects optimized per fine-grain round (top-k size).
    top_k: int = 8
    #: Space-Saving summary capacity (counters per proxy).
    summary_capacity: int = 256
    #: Length of one monitoring round, simulated seconds.  The paper uses a
    #: 30 s moving-average window; simulations compress time so the default
    #: here is shorter but plays the same role.
    round_duration: float = 30.0
    #: Rounds to average when deciding whether fine-grain optimization is
    #: still paying off (the paper's gamma).
    gamma: int = 2
    #: Minimum average relative throughput improvement over the last gamma
    #: rounds required to continue fine-grain optimization (the theta
    #: threshold of Algorithm 1).
    theta: float = 0.02
    #: Quarantine period after each reconfiguration during which no new
    #: adaptation is evaluated (Section 4).
    quarantine: float = 5.0
    #: Lower/upper bounds the user may impose on the write quorum, e.g. for
    #: fault-tolerance constraints ("each write must contact at least
    #: k > 1 replicas", Section 3).
    min_write_quorum: int = 1
    max_write_quorum: int | None = None
    #: Maximum number of fine-grain rounds as a safety stop.
    max_rounds: int = 16
    #: Ablation hook (A2): when False, skip per-object fine-grain rounds
    #: entirely and only run the coarse tail optimization.
    enable_fine_grain: bool = True
    #: The Key Performance Indicator the loop maximizes (Section 3: "a
    #: target KPI (like throughput or latency)").  "throughput" maximizes
    #: completed operations per second; "latency" minimizes the mean
    #: operation latency.
    kpi: str = "throughput"
    #: Sliding-window size of the median filter applied to KPI samples
    #: before the stop rule (1 = no filtering); see
    #: :class:`repro.autonomic.policy.MedianFilter`.
    kpi_filter_window: int = 1

    def validate(self, replication_degree: int) -> "AutonomicConfig":
        if self.top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        if self.summary_capacity < self.top_k:
            raise ConfigurationError("summary_capacity must be >= top_k")
        if self.round_duration <= 0:
            raise ConfigurationError("round_duration must be > 0")
        if self.gamma < 1:
            raise ConfigurationError("gamma must be >= 1")
        if self.theta < 0:
            raise ConfigurationError("theta must be >= 0")
        if self.quarantine < 0:
            raise ConfigurationError("quarantine must be >= 0")
        upper = self.max_write_quorum or replication_degree
        if not 1 <= self.min_write_quorum <= upper <= replication_degree:
            raise ConfigurationError(
                "write quorum bounds must satisfy "
                f"1 <= min ({self.min_write_quorum}) <= max ({upper}) "
                f"<= N ({replication_degree})"
            )
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.kpi not in ("throughput", "latency"):
            raise ConfigurationError(
                f"kpi must be 'throughput' or 'latency', got {self.kpi!r}"
            )
        if self.kpi_filter_window < 1:
            raise ConfigurationError("kpi_filter_window must be >= 1")
        return self

    def write_quorum_range(self, replication_degree: int) -> range:
        """Admissible write-quorum sizes under the user constraints."""
        upper = self.max_write_quorum or replication_degree
        return range(self.min_write_quorum, upper + 1)
