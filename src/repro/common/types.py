"""Core value types shared across the Q-OPT stack.

The central type is :class:`QuorumConfig`, the (R, W) pair that the whole
paper is about.  The module also defines the process identifiers used by the
simulated Swift-like store and the version timestamps that give write
operations their total order (Section 2.1 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError

#: Objects are addressed by opaque string identifiers, as in Swift's
#: ``/account/container/object`` paths.  We keep them as plain strings.
ObjectId = str


class NodeKind(enum.Enum):
    """Roles a simulated process can play (Figure 1 of the paper)."""

    PROXY = "proxy"
    STORAGE = "storage"
    CLIENT = "client"
    AUTONOMIC_MANAGER = "autonomic-manager"
    RECONFIG_MANAGER = "reconfig-manager"
    ORACLE = "oracle"


@dataclass(frozen=True, order=True)
class NodeId:
    """Identifier of a simulated process.

    Ordering is lexicographic on ``(kind, index)`` so node ids can be used
    as deterministic dictionary keys and tie-breakers.
    """

    kind: str
    index: int

    def __str__(self) -> str:
        return f"{self.kind}-{self.index}"

    @staticmethod
    def proxy(index: int) -> "NodeId":
        return NodeId(NodeKind.PROXY.value, index)

    @staticmethod
    def storage(index: int) -> "NodeId":
        return NodeId(NodeKind.STORAGE.value, index)

    @staticmethod
    def client(index: int) -> "NodeId":
        return NodeId(NodeKind.CLIENT.value, index)

    @staticmethod
    def singleton(kind: NodeKind) -> "NodeId":
        return NodeId(kind.value, 0)


@dataclass(frozen=True, order=True)
class QuorumConfig:
    """A read/write quorum size pair.

    A configuration is *strict* for replication degree ``n`` when
    ``read + write > n``: any read quorum then intersects any write quorum,
    which is the property strong consistency rests on (Section 2.1).
    """

    read: int
    write: int

    def __post_init__(self) -> None:
        if self.read < 1 or self.write < 1:
            raise ConfigurationError(
                f"quorum sizes must be >= 1, got R={self.read} W={self.write}"
            )

    def __str__(self) -> str:
        return f"R={self.read},W={self.write}"

    def is_strict(self, replication_degree: int) -> bool:
        """Return whether this configuration guarantees strong consistency."""
        return self.read + self.write > replication_degree

    def validate_strict(self, replication_degree: int) -> "QuorumConfig":
        """Raise :class:`ConfigurationError` unless strict; return self."""
        if not self.is_strict(replication_degree):
            raise ConfigurationError(
                f"{self} is not strict for N={replication_degree}: "
                f"R + W must exceed N"
            )
        if max(self.read, self.write) > replication_degree:
            raise ConfigurationError(
                f"{self} exceeds replication degree N={replication_degree}"
            )
        return self

    def transition_with(self, other: "QuorumConfig") -> "QuorumConfig":
        """Transition quorum used while reconfiguring between two configs.

        Sized as the element-wise maximum so that its read (write) quorum
        intersects the write (read) quorum of *both* the old and the new
        configuration (Section 5.2, Algorithm 3 line 13).
        """
        return QuorumConfig(
            read=max(self.read, other.read),
            write=max(self.write, other.write),
        )

    @staticmethod
    def from_write(write: int, replication_degree: int) -> "QuorumConfig":
        """Derive the minimal strict configuration for a write-quorum size.

        The paper's Oracle only outputs W; R is derived as ``N - W + 1``
        (Section 4).
        """
        if not 1 <= write <= replication_degree:
            raise ConfigurationError(
                f"write quorum {write} outside [1, {replication_degree}]"
            )
        return QuorumConfig(read=replication_degree - write + 1, write=write)

    @staticmethod
    def all_strict_minimal(replication_degree: int) -> list["QuorumConfig"]:
        """All minimal strict configurations ``(N-W+1, W)`` for W = 1..N."""
        return [
            QuorumConfig.from_write(w, replication_degree)
            for w in range(1, replication_degree + 1)
        ]


@dataclass(frozen=True, order=True)
class VersionStamp:
    """Total order over write operations (Section 2.1).

    Writes are ordered by ``(timestamp, proxy)``: the simulated wall-clock
    timestamp first, with the issuing proxy's id as a commutative
    tie-breaker for concurrent writes, mirroring the globally-synchronized
    clock + proxy-id scheme the paper describes.  ``ZERO`` orders before
    every real write and denotes "never written".
    """

    timestamp: float
    proxy: str

    def __str__(self) -> str:
        return f"ts={self.timestamp:.6f}@{self.proxy}"


#: The stamp carried by objects that were never written.
ZERO_STAMP = VersionStamp(timestamp=float("-inf"), proxy="")


@dataclass(frozen=True)
class Version:
    """A stored object version.

    Besides the value and its :class:`VersionStamp`, a version records the
    ``cfg_no`` — the identifier of the quorum configuration in force when it
    was written.  Proxies use it to detect that a value may have been
    written with a smaller write quorum than the current one and must be
    re-read with a larger read quorum (Algorithm 4, lines 10-27).
    """

    value: Optional[bytes]
    stamp: VersionStamp
    cfg_no: int
    size: int = field(default=0)

    def is_newer_than(self, other: "Version") -> bool:
        return self.stamp > other.stamp


#: Shared placeholder for never-written objects.  ``Version`` is frozen,
#: so one instance can be handed to every caller.
_MISSING_VERSION = Version(value=None, stamp=ZERO_STAMP, cfg_no=0, size=0)


def missing_version() -> Version:
    """Placeholder version returned by replicas that never saw the object."""
    return _MISSING_VERSION


class OpType(enum.Enum):
    """The two client-facing operation types of the object store."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is OpType.WRITE
