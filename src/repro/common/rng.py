"""Deterministic random-number plumbing.

Every stochastic component of the simulator draws from its own
:class:`random.Random` stream derived from a single experiment seed, so
that (a) experiments are exactly reproducible and (b) changing one
component's consumption pattern does not perturb the draws of another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from a root seed and a label path.

    Uses SHA-256 over the textual label path so that the derivation is
    stable across Python versions and process runs (unlike ``hash()``).
    """
    text = f"{root_seed}|" + "|".join(str(label) for label in labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def substream(root_seed: int, *labels: object) -> random.Random:
    """Create an independent RNG stream for the given label path."""
    return random.Random(derive_seed(root_seed, *labels))


class SeedSequence:
    """Hands out numbered child seeds, for bulk node creation."""

    def __init__(self, root_seed: int, label: str) -> None:
        self._root_seed = root_seed
        self._label = label
        self._next = 0

    def next_seed(self) -> int:
        seed = derive_seed(self._root_seed, self._label, self._next)
        self._next += 1
        return seed

    def streams(self) -> Iterator[random.Random]:
        while True:
            yield random.Random(self.next_seed())
