"""Nemesis: a deterministic, seeded fault-schedule driver.

Jepsen validates distributed systems by letting a *nemesis* process
inject faults on a schedule while a checker verifies client histories;
this module is the discrete-event equivalent for the Q-OPT simulator.
A :class:`Nemesis` owns a seeded RNG substream and schedules faults at
simulated times:

* **crashes** (fail-stop, via :class:`~repro.sim.failure.CrashManager`)
  and **false-suspicion bursts** (via the ◇P detector) — both faithful
  to the paper's system model (Sections 3 and 5);
* **delay spikes** on directed links — faithful too, since the network
  is asynchronous;
* **partitions** and **per-link omission** — these lose messages that
  the paper's reliable channels would deliver, so scheduling one
  switches the network into its explicit lossy stress mode;
* **crash-during-reconfiguration** — a crash armed to fire the moment a
  Reconfiguration Manager starts its n-th reconfiguration, landing
  inside the two-phase protocol's window.

Every fault that actually fires is appended to :attr:`Nemesis.faults`
(and to the cluster's :class:`~repro.metrics.timeline.EventTimeline`,
when given), so a chaos run produces an auditable, reproducible fault
log: rerunning the same schedule with the same seed yields an identical
:meth:`signature`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import substream
from repro.common.types import NodeId
from repro.metrics.timeline import EventTimeline
from repro.sim.failure import CrashManager, FailureDetector
from repro.sim.kernel import Simulator
from repro.sim.network import Network

#: A directed link, for omission and delay faults.
Link = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as it fired."""

    time: float
    kind: str
    target: str
    detail: str = ""

    def as_tuple(self) -> tuple[float, str, str, str]:
        return (self.time, self.kind, self.target, self.detail)


class Nemesis:
    """Schedules and logs fault injection against a simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        crashes: CrashManager,
        detector: FailureDetector,
        seed: int = 0,
        events: Optional[EventTimeline] = None,
    ) -> None:
        self._sim = sim
        self._network = network
        self._crashes = crashes
        self._detector = detector
        self._rng: random.Random = substream(seed, "nemesis")
        self._events = events
        self._lossy_logged = False
        #: Chronological log of every fault that fired.
        self.faults: list[FaultEvent] = []

    @classmethod
    def for_cluster(cls, cluster: object, seed: int = 0) -> "Nemesis":
        """Build a nemesis wired to a :class:`~repro.sds.cluster.SwiftCluster`."""
        return cls(
            cluster.sim,  # type: ignore[attr-defined]
            cluster.network,  # type: ignore[attr-defined]
            cluster.crashes,  # type: ignore[attr-defined]
            cluster.detector,  # type: ignore[attr-defined]
            seed=seed,
            events=getattr(cluster, "events", None),
        )

    # -- schedule-construction helpers ---------------------------------------

    def jitter(self, base: float, spread: float) -> float:
        """``base`` plus a seeded uniform offset in ``[0, spread)``.

        Lets schedules decorrelate fault times across seeds while staying
        exactly reproducible for a fixed seed.
        """
        if spread < 0:
            raise SimulationError("jitter spread must be >= 0")
        return base + self._rng.uniform(0.0, spread)

    def signature(self) -> tuple[tuple[float, str, str, str], ...]:
        """Canonical fault-log form for run-to-run equality asserts."""
        return tuple(event.as_tuple() for event in self.faults)

    # -- crashes (model-faithful) --------------------------------------------

    def schedule_crash(self, at: float, node_id: NodeId) -> None:
        """Fail-stop ``node_id`` at simulated time ``at``."""
        self._at(at, self._fire_crash, node_id)

    def crash_on_reconfiguration(
        self,
        manager: object,
        node_id: NodeId,
        delay: float = 0.0,
        nth: int = 1,
    ) -> None:
        """Crash ``node_id`` when ``manager`` starts its ``nth`` (counted
        from this call) reconfiguration, ``delay`` seconds into it.

        ``manager`` is any object exposing
        ``on_reconfiguration_started(callback)`` — the hook
        :class:`~repro.reconfig.manager.ReconfigurationManager` provides.
        The crash lands inside the two-phase NEWQ/CONFIRM window, the
        most delicate moment of Algorithm 2.
        """
        if nth < 1:
            raise SimulationError("nth must be >= 1")
        remaining = [nth]

        def on_started(cfg_no: int, plan: object) -> None:
            del plan
            remaining[0] -= 1
            if remaining[0] == 0:
                self._log(
                    "arm-crash",
                    str(node_id),
                    f"reconfiguration cfg_no={cfg_no} started",
                )
                self._sim.schedule(delay, self._fire_crash, node_id)

        manager.on_reconfiguration_started(on_started)  # type: ignore[attr-defined]

    def _fire_crash(self, node_id: NodeId) -> None:
        if self._crashes.is_crashed(node_id):
            return
        self._log("crash", str(node_id))
        self._crashes.crash(node_id)

    # -- false suspicions (model-faithful: ◇P may lie for a while) -----------

    def schedule_false_suspicion(
        self, at: float, duration: float, nodes: Iterable[NodeId]
    ) -> None:
        """Make ◇P wrongly suspect live ``nodes`` during ``[at, at+duration)``."""
        if duration <= 0:
            raise SimulationError("suspicion duration must be > 0")
        targets = list(nodes)
        for node in targets:
            self._detector.falsely_suspect(node, at, at + duration)
        self._at(
            at,
            self._log,
            "false-suspicion",
            ",".join(str(node) for node in targets),
            f"for {duration:g}s",
        )

    # -- delay spikes (model-faithful: asynchrony) ---------------------------

    def schedule_delay_spike(
        self,
        at: float,
        duration: float,
        links: Iterable[Link],
        factor: float,
    ) -> None:
        """Multiply the latency of ``links`` by ``factor`` for ``duration``."""
        if duration <= 0:
            raise SimulationError("delay-spike duration must be > 0")
        if factor <= 0:
            raise SimulationError("delay factor must be > 0")
        frozen = list(links)
        self._at(at, self._start_delay_spike, frozen, factor)
        self._at(at + duration, self._end_delay_spike, frozen)

    def _start_delay_spike(self, links: list[Link], factor: float) -> None:
        for sender, recipient in links:
            self._network.set_delay_factor(sender, recipient, factor)
        self._log("delay-spike", self._links_label(links), f"x{factor:g}")

    def _end_delay_spike(self, links: list[Link]) -> None:
        for sender, recipient in links:
            self._network.set_delay_factor(sender, recipient, 1.0)
        self._log("delay-restore", self._links_label(links))

    # -- partitions and omission (stress-only: require lossy mode) ----------

    def schedule_partition(
        self,
        at: float,
        duration: float,
        groups: Sequence[Iterable[NodeId]],
    ) -> None:
        """Partition the cluster into ``groups`` for ``duration`` seconds.

        Nodes not named in any group implicitly join the first one.
        Enables the network's lossy stress mode.
        """
        if duration <= 0:
            raise SimulationError("partition duration must be > 0")
        self._ensure_lossy()
        frozen = [list(group) for group in groups]
        self._at(at, self._start_partition, frozen)
        self._at(at + duration, self._heal_partition)

    def schedule_isolation(
        self, at: float, duration: float, nodes: Iterable[NodeId]
    ) -> None:
        """Cut ``nodes`` off from the rest of the cluster for ``duration``.

        Convenience for the common one-island partition: unlisted nodes
        implicitly form the majority side.
        """
        self.schedule_partition(at, duration, [[], list(nodes)])

    def _start_partition(self, groups: list[list[NodeId]]) -> None:
        self._network.partition(groups)
        label = " | ".join(
            ",".join(str(node) for node in group) for group in groups
        )
        self._log("partition", label)

    def _heal_partition(self) -> None:
        self._network.heal()
        self._log("heal", "all")

    def schedule_omission(
        self,
        at: float,
        duration: float,
        links: Iterable[Link],
        probability: float,
    ) -> None:
        """Drop messages on ``links`` with ``probability`` for ``duration``.

        Enables the network's lossy stress mode; the per-message drop
        decisions come from the network's seeded stream.
        """
        if duration <= 0:
            raise SimulationError("omission duration must be > 0")
        if not 0.0 < probability <= 1.0:
            raise SimulationError("omission probability must be in (0, 1]")
        self._ensure_lossy()
        frozen = list(links)
        self._at(at, self._start_omission, frozen, probability)
        self._at(at + duration, self._end_omission, frozen)

    def _start_omission(self, links: list[Link], probability: float) -> None:
        for sender, recipient in links:
            self._network.set_link_omission(sender, recipient, probability)
        self._log(
            "omission", self._links_label(links), f"p={probability:g}"
        )

    def _end_omission(self, links: list[Link]) -> None:
        for sender, recipient in links:
            self._network.set_link_omission(sender, recipient, 0.0)
        self._log("omission-end", self._links_label(links))

    # -- internals -----------------------------------------------------------

    def _ensure_lossy(self) -> None:
        if not self._network.lossy:
            self._network.enable_lossy_mode()
        if not self._lossy_logged:
            self._lossy_logged = True
            self._log(
                "lossy-mode",
                "network",
                "loss faults beyond the paper's channel model enabled",
            )

    def _at(self, time: float, action: Callable[..., None], *args: object) -> None:
        delay = time - self._sim.now
        if delay < 0:
            raise SimulationError(
                f"cannot schedule a fault in the past: {time} < {self._sim.now}"
            )
        self._sim.schedule(delay, action, *args)

    def _log(self, kind: str, target: str, detail: str = "") -> None:
        event = FaultEvent(
            time=self._sim.now, kind=kind, target=target, detail=detail
        )
        self.faults.append(event)
        if self._events is not None:
            self._events.record(
                self._sim.now, "nemesis", kind, f"{target} {detail}".strip()
            )

    @staticmethod
    def _links_label(links: list[Link]) -> str:
        return ",".join(f"{sender}->{recipient}" for sender, recipient in links)


def links_between(
    senders: Iterable[NodeId], recipients: Iterable[NodeId], symmetric: bool = True
) -> list[Link]:
    """All directed links from ``senders`` to ``recipients`` (and back).

    Convenience for building omission/delay fault sets, e.g. "everything
    between proxy 0 and the first three storage nodes".
    """
    senders = list(senders)
    recipients = list(recipients)
    links: list[Link] = []
    for sender in senders:
        for recipient in recipients:
            if sender == recipient:
                continue
            links.append((sender, recipient))
            if symmetric:
                links.append((recipient, sender))
    return links
