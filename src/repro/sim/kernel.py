"""Discrete-event simulation kernel.

A small, dependency-free event loop in the style of SimPy: simulated
*processes* are Python generators that ``yield`` :class:`Future` objects to
suspend themselves; the :class:`Simulator` advances virtual time and resumes
processes when the futures they wait on resolve.

The kernel is deliberately minimal — channels, resources and failure
injection are layered on top in sibling modules — but it is exact: events
scheduled for the same instant fire in scheduling order, making every run
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import DeadlockError, SimulationError

#: The generator type simulated processes are written as.
ProcessGen = Generator["Future", Any, Any]


class Future:
    """A one-shot value that a process can wait on.

    A future starts *pending* and is later either resolved with a value or
    failed with an exception.  Callbacks added after completion fire
    immediately; a future can complete at most once.
    """

    __slots__ = ("_sim", "_done", "_value", "_exception", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Future {self.name or id(self)} {state}>"

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"future {self!r} not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        self._complete(value, None)

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception.

        Any process waiting on the future has the exception thrown into it
        at its ``yield`` point.
        """
        self._complete(None, exception)

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` once the future completes."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _complete(
        self, value: Any, exception: Optional[BaseException]
    ) -> None:
        if self._done:
            raise SimulationError(f"future {self!r} completed twice")
        self._done = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process:
    """A running simulated activity, driven by the simulator.

    Wraps a generator; each value the generator yields must be a
    :class:`Future`.  When the generator returns, :attr:`result` resolves
    with its return value, so processes can ``yield other.result`` to join.
    """

    __slots__ = ("_sim", "_gen", "_waiting_on", "name", "result", "_alive")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str) -> None:
        self._sim = sim
        self._gen = gen
        self._waiting_on: Optional[Future] = None
        self.name = name
        self.result = Future(sim, name=f"{name}.result")
        self._alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "finished"
        return f"<Process {self.name} {state}>"

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self._alive:
            return
        self._waiting_on = None
        self._sim._schedule_now(self._step_throw, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process silently (used for node crashes).

        The process's ``result`` future is failed so that joiners are not
        left waiting forever.
        """
        if not self._alive:
            return
        self._alive = False
        self._waiting_on = None
        self._gen.close()
        if not self.result.done:
            self.result.fail(Interrupt("killed"))

    # -- stepping machinery -------------------------------------------------

    def _start(self) -> None:
        self._sim._schedule_now(self._step_send, None)

    def _step_send(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
        except BaseException as exc:  # noqa: BLE001 - propagate via result
            self._finish(None, exc)
        else:
            self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value, None)
        except BaseException as err:  # noqa: BLE001 - propagate via result
            self._finish(None, err)
        else:
            self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Process):
            target = target.result
        if not isinstance(target, Future):
            self._finish(
                None,
                SimulationError(
                    f"process {self.name} yielded {target!r}; "
                    "processes must yield Future or Process"
                ),
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_future_done)

    def _on_future_done(self, future: Future) -> None:
        if not self._alive or self._waiting_on is not future:
            return  # interrupted or killed while waiting
        self._waiting_on = None
        if future.exception is not None:
            self._step_throw(future.exception)
        else:
            self._step_send(future._value)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self._alive = False
        if exc is None:
            self.result.resolve(value)
            return
        # A process someone is joining on delivers its exception to the
        # joiner; a fire-and-forget process that dies is a bug in the
        # simulation and is surfaced as an unhandled crash.
        watched = bool(self.result._callbacks)
        self.result.fail(exc)
        if not watched and not isinstance(exc, Interrupt):
            self._sim._report_crash(self, exc)


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        #: Simulated time, strictly non-decreasing.  Protocol code that
        #: compares stored deadlines against ``now`` (e.g. the lease
        #: grant table, invariant I7) relies on exactly this property
        #: and nothing else, which is why the same code runs unchanged
        #: under the clamped wall clock of ``net.kernel.RealtimeKernel``.
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = itertools.count()
        self._process_count = itertools.count()
        self._unhandled: list[tuple[Process, BaseException]] = []
        #: Events executed so far; the perf harness divides this by wall
        #: time for its kernel events/sec regression gate.
        self.events_processed: int = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, args)
        )

    def _schedule_now(self, callback: Callable[..., None], *args: Any) -> None:
        self.schedule(0.0, callback, *args)

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator."""
        name = name or f"proc-{next(self._process_count)}"
        process = Process(self, gen, name)
        process._start()
        return process

    # -- waiting helpers ------------------------------------------------------

    def future(self, name: str = "") -> Future:
        return Future(self, name=name)

    def sleep(self, delay: float) -> Future:
        """A future that resolves after ``delay`` simulated seconds."""
        future = Future(self, name=f"sleep({delay})")
        self.schedule(delay, future.resolve, None)
        return future

    def timeout(self, delay: float, value: Any = None) -> Future:
        """Like :meth:`sleep` but resolving with ``value``."""
        future = Future(self, name=f"timeout({delay})")
        self.schedule(delay, future.resolve, value)
        return future

    # -- running ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback, args = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("event queue time went backwards")
        self.now = time
        self.events_processed += 1
        callback(*args)
        if self._unhandled:
            self._raise_unhandled()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, simulated time is advanced to exactly
        ``until`` even if the queue drains earlier.

        The loop body is :meth:`step` inlined: one iteration runs per
        simulated event, so the per-event method call and duplicate
        queue peeks are worth eliding.  Keep the two in lock-step.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}: now is already {self.now}"
            )
        queue = self._queue
        pop = heapq.heappop
        unhandled = self._unhandled
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                break
            time, _seq, callback, args = pop(queue)
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = time
            self.events_processed += 1
            callback(*args)
            if unhandled:
                self._raise_unhandled()
        if until is not None:
            self.now = until

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Spawn a process, run to completion, and return its result.

        Raises :class:`DeadlockError` if the event queue drains before the
        process finishes — i.e., the process is blocked forever.
        """
        process = self.spawn(gen, name=name)
        # Mark the result as watched so a failure propagates here instead of
        # being reported as an unhandled crash inside step().
        process.result.add_callback(lambda _future: None)
        while not process.result.done:
            if not self.step():
                raise DeadlockError(
                    f"simulation deadlocked waiting for {process.name}"
                )
        return process.result.value

    # -- error reporting ---------------------------------------------------------

    def _report_crash(self, process: Process, exc: BaseException) -> None:
        self._unhandled.append((process, exc))

    def _raise_unhandled(self) -> None:
        if not self._unhandled:
            return
        process, exc = self._unhandled.pop(0)
        self._unhandled.clear()
        raise SimulationError(
            f"unhandled exception in process {process.name}: {exc!r}"
        ) from exc


def as_process(sim: Simulator, futures: Iterable[Future]) -> ProcessGen:
    """Tiny helper: a process body awaiting a sequence of futures."""
    results = []
    for future in futures:
        results.append((yield future))
    return results
