"""Base class for simulated protocol participants.

A :class:`Node` owns a mailbox on the network and runs a receive loop that
dispatches incoming payloads to handlers by payload type.  Handlers may be
plain methods (for instantaneous state updates) or generator methods (for
multi-step protocol interactions); generator handlers are spawned as child
processes so the receive loop is never blocked — this is what makes the
storage/proxy/manager protocol code non-blocking.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Optional, Tuple

from repro.common.errors import NodeCrashedError, SimulationError
from repro.common.types import NodeId
from repro.net.transport import Transport
from repro.sim.kernel import Process, ProcessGen, Simulator
from repro.sim.network import Envelope


class Node:
    """A protocol process with a mailbox and typed message handlers.

    ``network`` is any :class:`~repro.net.transport.Transport` — the
    simulated :class:`~repro.sim.network.Network` or the live
    :class:`~repro.net.tcp.TcpTransport`; nodes never look past the
    ``register``/``send`` seam.
    """

    def __init__(self, sim: Simulator, network: Transport, node_id: NodeId) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.mailbox = network.register(node_id)
        # Handler table: payload type -> (handler, child process name).
        # Both are resolved once at registration so the per-message
        # dispatch is a single dict probe — no f-string formatting or
        # reflection on the hot path.
        self._handlers: dict[type, tuple[Callable[[Envelope], Any], str]] = {}
        self._children: list[Process] = []
        self._loop: Optional[Process] = None
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.node_id}>"

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin receiving messages.  Idempotent."""
        if self._loop is not None:
            return
        self._loop = self.sim.spawn(
            self._receive_loop(), name=f"{self.node_id}.recv-loop"
        )

    def crash(self) -> None:
        """Fail-stop this node: kill the receive loop and all children."""
        if self.crashed:
            return
        self.crashed = True
        if self._loop is not None:
            self._loop.kill()
        for child in self._children:
            child.kill()
        self._children.clear()

    @property
    def alive(self) -> bool:
        return not self.crashed

    # -- message handling -----------------------------------------------------

    def register_handler(
        self, payload_type: type, handler: Callable[[Envelope], Any]
    ) -> None:
        """Route payloads of ``payload_type`` to ``handler``.

        ``handler`` receives the full :class:`Envelope`; if it is a
        generator function it runs as its own process.
        """
        if payload_type in self._handlers:
            raise SimulationError(
                f"{self.node_id}: duplicate handler for {payload_type.__name__}"
            )
        self._handlers[payload_type] = (
            handler,
            f"{self.node_id}.{payload_type.__name__}",
        )

    def send(
        self,
        recipient: NodeId,
        payload: Any,
        size: int = 256,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Send a payload to another node (async, fire-and-forget).

        ``trace`` is an optional span context propagated on the envelope
        so the receiver's spans join the sender's trace.
        """
        if self.crashed:
            raise NodeCrashedError(f"{self.node_id} is crashed")
        self.network.send(
            self.node_id, recipient, payload, size=size, trace=trace
        )

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Run a child process that dies with this node."""
        if self.crashed:
            raise NodeCrashedError(f"{self.node_id} is crashed")
        process = self.sim.spawn(gen, name=name or f"{self.node_id}.child")
        self._children.append(process)
        self._prune_children()
        return process

    # -- internals ------------------------------------------------------------

    def _receive_loop(self) -> ProcessGen:
        while True:
            envelope = yield self.mailbox.receive()
            if self.crashed:
                return
            self._dispatch(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        entry = self._handlers.get(type(envelope.payload))
        if entry is None:
            raise SimulationError(
                f"{self.node_id}: no handler for payload "
                f"{type(envelope.payload).__name__}"
            )
        handler, spawn_name = entry
        result = handler(envelope)
        if isinstance(result, GeneratorType):
            children = self._children
            children.append(self.sim.spawn(result, name=spawn_name))
            if len(children) > 64:
                self._children = [c for c in children if c.alive]

    def _prune_children(self) -> None:
        if len(self._children) > 64:
            self._children = [c for c in self._children if c.alive]
