"""Discrete-event simulation substrate (kernel, network, nodes, failures)."""

from repro.sim.failure import CrashManager, FailureDetector
from repro.sim.kernel import Future, Interrupt, Process, Simulator
from repro.sim.nemesis import FaultEvent, Nemesis, links_between
from repro.sim.network import Envelope, Mailbox, Network
from repro.sim.node import Node
from repro.sim.primitives import (
    Broadcast,
    Gate,
    Mutex,
    PendingCounter,
    Resource,
    all_of,
    any_of,
    retry_until,
)

__all__ = [
    "Broadcast",
    "CrashManager",
    "Envelope",
    "FailureDetector",
    "FaultEvent",
    "Future",
    "Gate",
    "Interrupt",
    "Mailbox",
    "Mutex",
    "Nemesis",
    "Network",
    "Node",
    "PendingCounter",
    "Process",
    "Resource",
    "Simulator",
    "all_of",
    "any_of",
    "links_between",
    "retry_until",
]
