"""Coordination primitives layered on the simulation kernel.

These are the building blocks protocol code is written with: waiting for
all/any of a set of futures, gates ("wait until condition X"), counters
("wait until the last pending operation drains" — Algorithm 3 line 14),
and FIFO queueing resources that model CPUs and disks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError
from repro.sim.kernel import Future, Simulator


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with the list of all results, in input order.

    If any input future fails, the combined future fails with that
    exception (first failure wins).
    """
    futures = list(futures)
    combined = sim.future(name=f"all_of[{len(futures)}]")
    if not futures:
        combined.resolve([])
        return combined
    remaining = [len(futures)]
    results: list[Any] = [None] * len(futures)

    def on_done(index: int, future: Future) -> None:
        if combined.done:
            return
        if future.exception is not None:
            combined.fail(future.exception)
            return
        results[index] = future._value
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.resolve(results)

    for index, future in enumerate(futures):
        future.add_callback(lambda f, i=index: on_done(i, f))
    return combined


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with ``(index, value)`` of the first completion."""
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of requires at least one future")
    combined = sim.future(name=f"any_of[{len(futures)}]")

    def on_done(index: int, future: Future) -> None:
        if combined.done:
            return
        if future.exception is not None:
            combined.fail(future.exception)
        else:
            combined.resolve((index, future._value))

    for index, future in enumerate(futures):
        future.add_callback(lambda f, i=index: on_done(i, f))
    return combined


class Gate:
    """A reusable open/closed barrier.

    Processes waiting on :meth:`wait` resume as soon as the gate is (or
    becomes) open.  Used for the "canReconfig" flag of Algorithm 2.
    """

    def __init__(self, sim: Simulator, open_: bool = True) -> None:
        self._sim = sim
        self._open = open_
        self._waiters: list[Future] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.resolve(None)

    def close(self) -> None:
        self._open = False

    def wait(self) -> Future:
        future = self._sim.future(name="gate.wait")
        if self._open:
            future.resolve(None)
        else:
            self._waiters.append(future)
        return future


class Mutex:
    """FIFO mutual exclusion for processes.

    Unlike :class:`Gate`, which wakes *all* waiters when opened, a mutex
    grants the lock to one waiter at a time, in arrival order.  The
    Reconfiguration Manager uses it to serialize reconfigurations
    ("Multiple reconfigurations are executed in sequence", Section 5.2).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._locked = False
        self._waiters: deque[Future] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Future:
        """A future resolving when the caller holds the lock."""
        future = self._sim.future(name="mutex.acquire")
        if not self._locked:
            self._locked = True
            future.resolve(None)
        else:
            self._waiters.append(future)
        return future

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("Mutex released while unlocked")
        if self._waiters:
            self._waiters.popleft().resolve(None)
        else:
            self._locked = False


class PendingCounter:
    """Counts in-flight operations; lets a process wait for drain.

    Proxies use one per quorum epoch: before acknowledging a NEWQ message
    they must "wait until all pending reads/writes issued using the old
    quorum complete" (Algorithm 3, line 14).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._count = 0
        self._drain_waiters: list[Future] = []

    @property
    def count(self) -> int:
        return self._count

    def increment(self) -> None:
        self._count += 1

    def decrement(self) -> None:
        if self._count <= 0:
            raise SimulationError("PendingCounter went negative")
        self._count -= 1
        if self._count == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for waiter in waiters:
                waiter.resolve(None)

    def wait_drained(self) -> Future:
        future = self._sim.future(name="pending.drained")
        if self._count == 0:
            future.resolve(None)
        else:
            self._drain_waiters.append(future)
        return future


class Resource:
    """A FIFO queueing server with bounded concurrency.

    Models a storage node's disk/worker pool or a proxy's CPU: up to
    ``concurrency`` requests are in service at once; the rest queue in FIFO
    order.  ``use(duration)`` returns a future that resolves when the
    request has both reached the head of the queue and been serviced for
    ``duration`` simulated seconds.
    """

    def __init__(self, sim: Simulator, concurrency: int, name: str = "") -> None:
        if concurrency < 1:
            raise SimulationError("Resource concurrency must be >= 1")
        self._sim = sim
        self._concurrency = concurrency
        self._busy = 0
        self._queue: deque[tuple[float, Future]] = deque()
        self.name = name or "resource"
        #: Cumulative busy time integrated over all servers (for utilization).
        self.busy_time = 0.0
        #: Total requests served to completion.
        self.completed = 0

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_service(self) -> int:
        return self._busy

    def use(self, duration: float) -> Future:
        """Acquire a server, hold it ``duration`` seconds, then release."""
        if duration < 0:
            raise SimulationError("service duration must be >= 0")
        done = self._sim.future(name=f"{self.name}.use")
        if self._busy < self._concurrency:
            self._start(duration, done)
        else:
            self._queue.append((duration, done))
        return done

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of servers busy over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self._concurrency)

    def _start(self, duration: float, done: Future) -> None:
        self._busy += 1
        self._sim.schedule(duration, self._complete, duration, done)

    def _complete(self, duration: float, done: Future) -> None:
        self._busy -= 1
        self.busy_time += duration
        self.completed += 1
        if self._queue:
            next_duration, next_done = self._queue.popleft()
            self._start(next_duration, next_done)
        done.resolve(None)


class Broadcast:
    """One-shot broadcast: many waiters, one fire.

    Unlike :class:`Gate` it delivers a value and never reuses.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self._fired = False
        self._value: Any = None
        self._waiters: list[Future] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"Broadcast {self.name} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.resolve(value)

    def wait(self) -> Future:
        future = self._sim.future(name=f"{self.name}.wait")
        if self._fired:
            future.resolve(self._value)
        else:
            self._waiters.append(future)
        return future


def retry_until(
    sim: Simulator,
    attempt: Callable[[], Future],
    accept: Callable[[Any], bool],
    backoff: float = 0.0,
    max_attempts: Optional[int] = None,
) -> Generator[Future, Any, Any]:
    """Process body: repeat ``attempt`` until ``accept(result)`` holds.

    Returns the accepted result.  Used in tests and examples to model
    client-side retry loops.
    """
    attempts = 0
    while True:
        attempts += 1
        result = yield attempt()
        if accept(result):
            return result
        if max_attempts is not None and attempts >= max_attempts:
            raise SimulationError(
                f"retry_until exhausted {max_attempts} attempts"
            )
        if backoff > 0:
            yield sim.sleep(backoff)
