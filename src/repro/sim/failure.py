"""Crash injection and the eventually-perfect failure detector.

Q-OPT's system model (Sections 3 and 5) assumes fail-stop crashes and an
*eventually perfect* failure detector (<>P) at the Reconfiguration
Manager: it satisfies strong completeness (every crashed proxy is
eventually suspected) and eventual strong accuracy (after some time, no
correct proxy is suspected).  Before that time, the detector may lie —
the reconfiguration protocol is *indulgent* and must stay safe under
false suspicions, which this module lets tests inject deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.common.errors import SimulationError
from repro.common.types import NodeId
from repro.sim.kernel import Simulator
from repro.sim.network import Network


class SuspicionSource(Protocol):
    """The one detector primitive the reconfiguration protocol consumes.

    The RM only ever asks "do you suspect p_i right now?" — so any object
    answering that is a valid detector: the simulated
    :class:`FailureDetector` below, or the live runtime's trivially
    optimistic detector (the protocol is indulgent, so a detector that
    never suspects merely delays epoch changes, never breaks safety).
    """

    def suspect(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is currently suspected to have crashed."""
        ...  # pragma: no cover - protocol definition


@dataclass
class _SuspicionWindow:
    node: NodeId
    start: float
    end: float


class CrashManager:
    """Central authority for injecting and tracking fail-stop crashes."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self._sim = sim
        self._network = network
        self._crash_times: dict[NodeId, float] = {}
        self._on_crash: list[Callable[[NodeId], None]] = []

    def on_crash(self, callback: Callable[[NodeId], None]) -> None:
        """Register a callback invoked with the node id on each crash."""
        self._on_crash.append(callback)

    def crash(self, node_id: NodeId) -> None:
        """Crash the node now (idempotent)."""
        if node_id in self._crash_times:
            return
        self._crash_times[node_id] = self._sim.now
        self._network.crash(node_id)
        for callback in self._on_crash:
            callback(node_id)

    def crash_at(self, node_id: NodeId, time: float) -> None:
        """Schedule a crash at absolute simulated time ``time``."""
        delay = time - self._sim.now
        if delay < 0:
            raise SimulationError(f"cannot schedule crash in the past: {time}")
        self._sim.schedule(delay, self.crash, node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        return node_id in self._crash_times

    def crash_time(self, node_id: NodeId) -> Optional[float]:
        return self._crash_times.get(node_id)

    @property
    def crashed_nodes(self) -> frozenset[NodeId]:
        return frozenset(self._crash_times)


class FailureDetector:
    """Eventually-perfect failure detector backed by the crash manager.

    A crashed node is suspected ``detection_delay`` seconds after its
    crash (strong completeness with bounded detection latency).  False
    suspicions of live nodes can be injected for bounded windows to
    exercise indulgence; after the window closes the detector is accurate
    again (eventual strong accuracy).
    """

    def __init__(
        self,
        sim: Simulator,
        crashes: CrashManager,
        detection_delay: float = 0.5,
    ) -> None:
        if detection_delay < 0:
            raise SimulationError("detection_delay must be >= 0")
        self._sim = sim
        self._crashes = crashes
        self._detection_delay = detection_delay
        self._false_windows: list[_SuspicionWindow] = []

    def suspect(self, node_id: NodeId) -> bool:
        """The paper's ``suspect(p_i)`` primitive (Section 5.1)."""
        crash_time = self._crashes.crash_time(node_id)
        if crash_time is not None:
            if self._sim.now >= crash_time + self._detection_delay:
                return True
        now = self._sim.now
        return any(
            window.node == node_id and window.start <= now < window.end
            for window in self._false_windows
        )

    def falsely_suspect(
        self, node_id: NodeId, start: float, end: float
    ) -> None:
        """Make the detector wrongly suspect a live node in [start, end)."""
        if end <= start:
            raise SimulationError("false-suspicion window must be non-empty")
        self._false_windows.append(_SuspicionWindow(node_id, start, end))

    @property
    def detection_delay(self) -> float:
        return self._detection_delay
