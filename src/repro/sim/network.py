"""Simulated cluster network: reliable, FIFO, bandwidth-modelled channels.

The paper's system model (Section 3) assumes reliable FIFO channels —
"each message is eventually delivered unless either the sender or the
receiver crashes during the transmission" — over an asynchronous network.
This module implements exactly that, with a physically grounded delay
model: each node's egress and ingress serialize through a single
full-duplex link (the Gigabit NIC of the Section 2.2 test-bed), then the
message pays a propagation delay with a small jitter.  Because proxies
relay the full object payload to or from every contacted replica, NIC
serialization is what makes the per-operation cost grow with the quorum
size — the effect at the heart of Figure 2.

Beyond the paper's model, the network exposes a **fault surface** for
nemesis-style chaos testing (:mod:`repro.sim.nemesis`):

* delay spikes per directed link (:meth:`Network.set_delay_factor`) —
  model-faithful, since the network is asynchronous;
* crash-window drops — model-faithful ("lost if the sender or receiver
  crashes during the transmission");
* network partitions (:meth:`Network.partition` / :meth:`Network.heal`)
  and per-link message omission (:meth:`Network.set_link_omission`) —
  these *violate* the reliable-channel assumption and therefore require
  the explicit stress-test opt-in :meth:`Network.enable_lossy_mode`.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence, Tuple

from repro.common.config import NetworkConfig
from repro.common.errors import SimulationError
from repro.common.types import NodeId
from repro.sim.kernel import Future, Simulator
from repro.sim.primitives import Resource

if TYPE_CHECKING:
    from repro.obs.context import Observability


@dataclass
class Envelope:
    """A message in flight: payload plus delivery metadata."""

    sender: NodeId
    recipient: NodeId
    payload: Any
    size: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0
    #: Trace context ``(trace_id, parent_span_id)`` propagated from the
    #: sender, so the receiver's spans join the sender's trace tree.
    trace: Optional[Tuple[int, int]] = None


class Mailbox:
    """Per-node inbox with future-based receive."""

    def __init__(self, sim: Simulator, owner: NodeId) -> None:
        self._sim = sim
        self.owner = owner
        self._messages: deque[Envelope] = deque()
        self._waiters: deque[Future] = deque()

    def __len__(self) -> int:
        return len(self._messages)

    def deliver(self, envelope: Envelope) -> None:
        if self._waiters:
            self._waiters.popleft().resolve(envelope)
        else:
            self._messages.append(envelope)

    def receive(self) -> Future:
        """A future resolving with the next :class:`Envelope`."""
        future = self._sim.future(name=f"{self.owner}.recv")
        if self._messages:
            future.resolve(self._messages.popleft())
        else:
            self._waiters.append(future)
        return future

    def drain(self) -> list[Envelope]:
        """Remove and return all queued messages (used on crash)."""
        messages = list(self._messages)
        self._messages.clear()
        return messages


@dataclass
class _ChannelState:
    """FIFO bookkeeping for one directed (sender, receiver) pair."""

    #: Arrival time of the channel's most recent message at the receiver's
    #: ingress queue; later messages are clamped to arrive no earlier, so
    #: per-hop jitter can never reorder a channel.
    last_arrival: float = 0.0
    #: Multiplier on computed latency; test hook for modelling slow links.
    delay_factor: float = 1.0


class Network:
    """The cluster interconnect.

    Nodes register once to obtain a :class:`Mailbox`; anyone can then
    :meth:`send` to a registered node.  Sends from or to crashed nodes are
    silently dropped, matching the fail-stop model.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NetworkConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._sim = sim
        self._config = (config or NetworkConfig()).validate()
        self._rng = rng or random.Random(0)
        self._mailboxes: dict[NodeId, Mailbox] = {}
        self._crashed: set[NodeId] = set()
        self._channels: dict[tuple[NodeId, NodeId], _ChannelState] = {}
        self._egress: dict[NodeId, Resource] = {}
        self._ingress: dict[NodeId, Resource] = {}
        # Stress-test fault state (all gated on lossy mode).
        self._lossy = False
        self._partition: Optional[dict[NodeId, int]] = None
        self._omission: dict[tuple[NodeId, NodeId], float] = {}
        # Optional observability hook (delivery-latency histogram).
        self._obs: Optional["Observability"] = None
        #: Delivery counters for observability.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_omitted = 0
        self.messages_partitioned = 0
        self.bytes_sent = 0

    # -- registration -------------------------------------------------------

    def register(self, node_id: NodeId) -> Mailbox:
        if node_id in self._mailboxes:
            raise SimulationError(f"{node_id} already registered")
        mailbox = Mailbox(self._sim, node_id)
        self._mailboxes[node_id] = mailbox
        self._egress[node_id] = Resource(
            self._sim, concurrency=1, name=f"{node_id}.nic-tx"
        )
        self._ingress[node_id] = Resource(
            self._sim, concurrency=1, name=f"{node_id}.nic-rx"
        )
        return mailbox

    def nic_utilization(self, node_id: NodeId, elapsed: float) -> tuple[float, float]:
        """(egress, ingress) utilization of a node's link over ``elapsed``."""
        return (
            self._egress[node_id].utilization(elapsed),
            self._ingress[node_id].utilization(elapsed),
        )

    def bind_observability(self, obs: "Observability") -> None:
        """Record per-message delivery latency into ``obs``'s histogram."""
        self._obs = obs

    def mailbox(self, node_id: NodeId) -> Mailbox:
        return self._mailboxes[node_id]

    def is_registered(self, node_id: NodeId) -> bool:
        return node_id in self._mailboxes

    # -- failure management -------------------------------------------------

    def crash(self, node_id: NodeId) -> None:
        """Fail-stop the node: all its traffic is dropped from now on."""
        self._crashed.add(node_id)
        if node_id in self._mailboxes:
            self._mailboxes[node_id].drain()

    def is_crashed(self, node_id: NodeId) -> bool:
        return node_id in self._crashed

    def set_delay_factor(
        self, sender: NodeId, recipient: NodeId, factor: float
    ) -> None:
        """Scale the latency of one directed channel.

        Model-faithful (the network is asynchronous): messages are
        delayed, never lost, so no lossy-mode opt-in is required.
        """
        if factor <= 0:
            raise SimulationError("delay factor must be > 0")
        self._channel(sender, recipient).delay_factor = factor

    # -- stress-test fault surface (lossy mode) ------------------------------

    @property
    def lossy(self) -> bool:
        """Whether loss faults beyond the paper's model are permitted."""
        return self._lossy

    def enable_lossy_mode(self) -> None:
        """Opt in to faults that violate the reliable-channel model.

        Partitions and message omission lose messages even when neither
        endpoint crashes — something Section 3's channels never do.  The
        explicit opt-in keeps every model-faithful simulation loss-free
        by construction while letting chaos suites stress the recovery
        paths.
        """
        self._lossy = True

    def partition(self, groups: Sequence[Iterable[NodeId]]) -> None:
        """Split the cluster: messages crossing group boundaries are lost.

        ``groups`` lists the connectivity islands; any registered node
        not named in a group implicitly joins the first one.  Messages
        already in flight across a new boundary are dropped at delivery
        time (they were "in transmission" when the partition started);
        a later :meth:`heal` lets traffic flow again.  Requires lossy
        mode.
        """
        if not self._lossy:
            raise SimulationError(
                "partition() requires enable_lossy_mode(): partitions "
                "violate the paper's reliable-channel model"
            )
        if not groups:
            raise SimulationError("partition needs at least one group")
        membership: dict[NodeId, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in membership:
                    raise SimulationError(
                        f"{node} appears in more than one partition group"
                    )
                membership[node] = index
        self._partition = membership

    def heal(self) -> None:
        """Remove the current partition (messages flow everywhere again)."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def set_link_omission(
        self, sender: NodeId, recipient: NodeId, probability: float
    ) -> None:
        """Drop each message on a directed link with ``probability``.

        Requires lossy mode; a probability of 0 clears the fault.  Drops
        are drawn from the network's seeded stream, so a fixed seed
        reproduces the exact same loss pattern.
        """
        if not 0.0 <= probability <= 1.0:
            raise SimulationError("omission probability must be in [0, 1]")
        if probability == 0.0:
            self._omission.pop((sender, recipient), None)
            return
        if not self._lossy:
            raise SimulationError(
                "set_link_omission() requires enable_lossy_mode(): "
                "omission violates the paper's reliable-channel model"
            )
        self._omission[(sender, recipient)] = probability

    def clear_link_faults(self) -> None:
        """Remove all omission probabilities and delay factors."""
        self._omission.clear()
        for channel in self._channels.values():
            channel.delay_factor = 1.0

    def _separated(self, sender: NodeId, recipient: NodeId) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(sender, 0) != self._partition.get(
            recipient, 0
        )

    # -- sending --------------------------------------------------------------

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        payload: Any,
        size: int = 256,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Send asynchronously.

        The message serializes through the sender's egress link, pays the
        propagation delay, serializes through the recipient's ingress
        link, and is finally delivered — clamped so that each (sender,
        recipient) channel stays FIFO.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        if sender in self._crashed or recipient in self._crashed:
            self.messages_dropped += 1
            return
        if self._separated(sender, recipient):
            self.messages_dropped += 1
            self.messages_partitioned += 1
            return
        omission = self._omission.get((sender, recipient))
        if omission is not None and self._rng.random() < omission:
            self.messages_dropped += 1
            self.messages_omitted += 1
            return
        if recipient not in self._mailboxes:
            raise SimulationError(f"send to unregistered node {recipient}")
        if sender not in self._egress:
            raise SimulationError(f"send from unregistered node {sender}")
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            size=size,
            sent_at=self._sim.now,
            trace=trace,
        )
        transmission = size / self._config.bandwidth
        self._egress[sender].use(transmission).add_callback(
            lambda _future: self._propagate(envelope, transmission)
        )

    def _propagate(self, envelope: Envelope, transmission: float) -> None:
        channel = self._channel(envelope.sender, envelope.recipient)
        base = self._config.base_latency
        jitter = self._rng.uniform(0, base * self._config.jitter_fraction)
        delay = (base + jitter) * channel.delay_factor
        # Per-channel FIFO: jitter must never let a message overtake an
        # earlier one from the same sender; the receiver's ingress queue
        # is itself FIFO, so clamping the arrival time suffices.
        arrival = max(self._sim.now + delay, channel.last_arrival)
        channel.last_arrival = arrival
        self._sim.schedule(
            arrival - self._sim.now, self._receive, envelope, transmission
        )

    def _receive(self, envelope: Envelope, transmission: float) -> None:
        if envelope.recipient in self._crashed:
            self.messages_dropped += 1
            return
        self._ingress[envelope.recipient].use(transmission).add_callback(
            lambda _future: self._deliver(envelope)
        )

    def _deliver(self, envelope: Envelope) -> None:
        if (
            envelope.recipient in self._crashed
            or envelope.sender in self._crashed
        ):
            self.messages_dropped += 1
            return
        if self._separated(envelope.sender, envelope.recipient):
            # In flight when the partition cut the link: lost.
            self.messages_dropped += 1
            self.messages_partitioned += 1
            return
        envelope.delivered_at = self._sim.now
        self.messages_delivered += 1
        if self._obs is not None:
            self._obs.net_delivery.observe(self._sim.now - envelope.sent_at)
        self._mailboxes[envelope.recipient].deliver(envelope)

    # -- internals ------------------------------------------------------------

    def _channel(self, sender: NodeId, recipient: NodeId) -> _ChannelState:
        key = (sender, recipient)
        state = self._channels.get(key)
        if state is None:
            state = _ChannelState()
            self._channels[key] = state
        return state
