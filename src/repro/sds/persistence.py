"""Pluggable persistence for storage nodes: memory or an on-disk WAL.

The simulator prices durability in *modelled* seconds (the disk queue in
:mod:`repro.sds.storage`), so its backend is a plain dict — byte-for-byte
the behaviour the determinism tripwire pins.  The live runtime pays for
durability in real syscalls instead: :class:`WalBackend` gives each
``repro serve`` replica a crash-recoverable store built from two files,

* ``wal.bin``      — an append-only log of CRC-framed records, one per
  applied write (and one per adopted epoch), reusing the deterministic
  :mod:`repro.net.codec` value encoding for the record bodies;
* ``snapshot.bin`` — a full CRC-framed dump of the version table, written
  atomically (tmp + ``os.replace``) whenever the WAL grows past
  ``snapshot_bytes``, after which the WAL is truncated.

Recovery replays snapshot then WAL, tolerating a torn tail: the first
record whose length or CRC does not check out ends the replay and is
truncated away (a ``kill -9`` mid-append loses at most the unsynced
suffix — the quarantined-rejoin protocol re-fetches anything lost from a
read quorum of peers before the replica serves reads again, invariant I6
in ``docs/PROTOCOL.md``).

fsync policy: appends are batched — the file is flushed and fsynced once
every ``fsync_batch`` records, on snapshot, and on close; the storage
node's periodic flush loop bounds how long an acked write can sit in the
OS page cache.  Durability of an *acknowledged* write is therefore a
cluster property (it lives on W replicas), not a per-replica one,
matching the paper's deployment assumptions.
"""

from __future__ import annotations

import os
import zlib
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.common.types import ObjectId, Version
from repro.net.codec import CodecError, decode_value, encode_value
from repro.sds.quorum import QuorumPlan

#: Bytes of framing per record: 4-byte length + 4-byte CRC32 of the body.
_RECORD_HEADER = 8
#: Refuse to parse absurd record lengths (corrupt header).
_MAX_RECORD = 64 * 1024 * 1024

_SNAPSHOT_NAME = "snapshot.bin"
_WAL_NAME = "wal.bin"


def _frame(body: bytes) -> bytes:
    return (
        len(body).to_bytes(4, "big")
        + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "big")
        + body
    )


def _read_records(data: bytes) -> Tuple[list, int]:
    """Parse CRC-framed records; returns ``(records, valid_bytes)``.

    Stops at the first torn or corrupt record — everything before it is
    intact (CRC-checked), everything after it is unreachable anyway
    because records are parsed sequentially.
    """
    records = []
    offset = 0
    total = len(data)
    while total - offset >= _RECORD_HEADER:
        length = int.from_bytes(data[offset:offset + 4], "big")
        if length > _MAX_RECORD:
            break
        end = offset + _RECORD_HEADER + length
        if end > total:
            break
        crc = int.from_bytes(data[offset + 4:offset + 8], "big")
        body = data[offset + _RECORD_HEADER:end]
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            break
        try:
            records.append(decode_value(body))
        except CodecError:
            break
        offset = end
    return records, offset


class MemoryBackend:
    """The simulator's store: a dict, nothing else.

    The storage node reads through :attr:`versions` directly (identical
    code path to the pre-seam implementation) and routes mutations
    through :meth:`put` / :meth:`set_epoch`, which for this backend are
    plain dict stores — the sim stays byte-for-byte deterministic.
    """

    durable = False

    def __init__(self) -> None:
        self.versions: Dict[ObjectId, Version] = {}
        self.recovered = False

    def put(self, object_id: ObjectId, version: Version) -> None:
        self.versions[object_id] = version

    def set_epoch(
        self, epoch_no: int, cfg_no: int, plan: Optional[QuorumPlan] = None
    ) -> None:
        pass

    def recovered_state(self) -> Tuple[int, int, Optional[QuorumPlan]]:
        return (0, 0, None)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class WalBackend:
    """File-backed store: snapshot + append-only CRC-framed WAL."""

    durable = True

    def __init__(
        self,
        directory: str,
        fsync_batch: int = 64,
        snapshot_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if fsync_batch < 1:
            raise ConfigurationError("fsync_batch must be >= 1")
        self.directory = directory
        self.fsync_batch = fsync_batch
        self.snapshot_bytes = snapshot_bytes
        os.makedirs(directory, exist_ok=True)
        self.snapshot_path = os.path.join(directory, _SNAPSHOT_NAME)
        self.wal_path = os.path.join(directory, _WAL_NAME)
        #: Whether prior on-disk state existed — a restart, not a first
        #: boot.  Drives the quarantined-rejoin path in the storage node.
        self.recovered = os.path.exists(self.snapshot_path) or os.path.exists(
            self.wal_path
        )
        self.versions: Dict[ObjectId, Version] = {}
        self._epoch_no = 0
        self._cfg_no = 0
        self._plan: Optional[QuorumPlan] = None
        # Observability counters.
        self.records_replayed = 0
        self.records_truncated = 0
        self.records_appended = 0
        self.snapshots_taken = 0
        self.fsyncs = 0
        self._load()
        self._wal = open(self.wal_path, "ab")
        self._pending = 0
        self._closed = False

    # -- recovery ------------------------------------------------------------

    def _load(self) -> None:
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "rb") as handle:
                records, _valid = _read_records(handle.read())
            # A snapshot is exactly one record; a torn snapshot (crashed
            # before the atomic replace — impossible — or disk rot) is
            # ignored: the WAL since the *previous* snapshot was already
            # truncated, so state is rebuilt by the rejoin sync instead.
            if records:
                tag, epoch_no, cfg_no, plan, versions = records[0]
                assert tag == "snapshot"
                self._epoch_no = int(epoch_no)
                self._cfg_no = int(cfg_no)
                self._plan = plan
                self.versions.update(versions)
        if not os.path.exists(self.wal_path):
            return
        with open(self.wal_path, "rb") as handle:
            data = handle.read()
        records, valid = _read_records(data)
        for record in records:
            self.records_replayed += 1
            if record[0] == "put":
                _tag, object_id, version = record
                self.versions[object_id] = version
            elif record[0] == "epoch":
                _tag, epoch_no, cfg_no, plan = record
                self._epoch_no = int(epoch_no)
                self._cfg_no = int(cfg_no)
                self._plan = plan
        if valid < len(data):
            # Torn tail from a crash mid-append: cut it off so the next
            # append does not splice new records after garbage.
            self.records_truncated += 1
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(valid)

    def recovered_state(self) -> Tuple[int, int, Optional[QuorumPlan]]:
        """Epoch/cfg/plan as of the last durable record (ZERO if fresh)."""
        return (self._epoch_no, self._cfg_no, self._plan)

    # -- mutation ------------------------------------------------------------

    def put(self, object_id: ObjectId, version: Version) -> None:
        self.versions[object_id] = version
        self._append(("put", object_id, version))

    def set_epoch(
        self, epoch_no: int, cfg_no: int, plan: Optional[QuorumPlan] = None
    ) -> None:
        self._epoch_no = epoch_no
        self._cfg_no = cfg_no
        self._plan = plan
        self._append(("epoch", epoch_no, cfg_no, plan))

    def _append(self, record: tuple) -> None:
        if self._closed:
            return
        self._wal.write(_frame(encode_value(record)))
        self.records_appended += 1
        self._pending += 1
        if self._pending >= self.fsync_batch:
            self.flush()
        if self._wal.tell() >= self.snapshot_bytes:
            self.snapshot()

    def flush(self) -> None:
        """Batched durability point: flush + fsync the WAL file."""
        if self._closed or self._pending == 0:
            return
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self.fsyncs += 1
        self._pending = 0

    def snapshot(self) -> None:
        """Dump the full version table atomically, then truncate the WAL.

        Ordering matters: the snapshot must be durable (fsynced and
        atomically in place) *before* the WAL records it subsumes are
        discarded, or a crash between the two loses acknowledged writes.
        """
        if self._closed:
            return
        body = encode_value(
            (
                "snapshot",
                self._epoch_no,
                self._cfg_no,
                self._plan,
                dict(self.versions),
            )
        )
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(_frame(body))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._wal.truncate(0)
        self._wal.seek(0)
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self._pending = 0
        self.snapshots_taken += 1

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._wal.close()

    # -- introspection (tests, metrics) --------------------------------------

    def wal_records(self) -> Iterator[tuple]:
        """Decode every intact record currently in the WAL file."""
        self._wal.flush()
        with open(self.wal_path, "rb") as handle:
            records, _valid = _read_records(handle.read())
        return iter(records)


#: What the storage node accepts as a backend.  A closed union rather
#: than a Protocol: both implementations live in this module, and the
#: union keeps mypy checking every call site against both concretely.
StorageBackend = Union[MemoryBackend, WalBackend]


__all__ = ["MemoryBackend", "WalBackend", "StorageBackend"]
