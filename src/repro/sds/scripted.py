"""Scripted client: explicit get/put against the simulated store.

The closed-loop :class:`~repro.sds.client.ClientNode` drives workloads;
this module is for *scripts* — test scenarios, examples and protocol
experiments that need precise control over which operation happens when:

    client = ScriptedClient(cluster, proxy_index=0)

    def scenario():
        yield client.put("photo-1", b"v1")
        version = yield client.get("photo-1")
        assert version.value == b"v1"

    cluster.sim.run_process(scenario())

Each call returns a :class:`~repro.sim.kernel.Future`; a process may
also fire several operations and gather them with
:func:`repro.sim.primitives.all_of` to express concurrency explicitly.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator

from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, Version
from repro.sds.cluster import SwiftCluster
from repro.sds.messages import (
    ClientRead,
    ClientReadReply,
    ClientWrite,
    ClientWriteReply,
)
from repro.sim.kernel import Future
from repro.sim.network import Envelope
from repro.sim.node import Node

_HEADER_BYTES = 256

#: Process-wide counter so several scripted clients get distinct ids.
_client_ids = itertools.count(10_000)


class ScriptedClient(Node):
    """Issue explicit reads/writes from simulation scripts."""

    def __init__(
        self, cluster: SwiftCluster, proxy_index: int = 0
    ) -> None:
        if not 0 <= proxy_index < len(cluster.proxies):
            raise ConfigurationError(
                f"proxy_index {proxy_index} out of range"
            )
        super().__init__(
            cluster.sim,
            cluster.network,
            NodeId.client(next(_client_ids)),
        )
        self._proxy_id = cluster.proxies[proxy_index].node_id
        self._request_seq = itertools.count(1)
        self._pending: dict[int, Future] = {}
        self.register_handler(ClientReadReply, self._on_read_reply)
        self.register_handler(ClientWriteReply, self._on_write_reply)
        self.start()
        cluster._nodes_by_id[self.node_id] = self

    # -- operations -----------------------------------------------------------

    def get(self, object_id: str) -> Future:
        """Read; the future resolves with the returned :class:`Version`."""
        request_id = next(self._request_seq)
        future = self.sim.future(name=f"{self.node_id}.get-{request_id}")
        self._pending[request_id] = future
        self.send(
            self._proxy_id,
            ClientRead(object_id=object_id, request_id=request_id),
            size=_HEADER_BYTES,
        )
        return future

    def put(self, object_id: str, value: bytes, size: int | None = None) -> Future:
        """Write; the future resolves with None once the quorum acked."""
        request_id = next(self._request_seq)
        future = self.sim.future(name=f"{self.node_id}.put-{request_id}")
        self._pending[request_id] = future
        self.send(
            self._proxy_id,
            ClientWrite(
                object_id=object_id,
                value=value,
                size=size if size is not None else len(value),
                request_id=request_id,
            ),
            size=_HEADER_BYTES + (size if size is not None else len(value)),
        )
        return future

    # -- reply routing ----------------------------------------------------------

    def _on_read_reply(self, envelope: Envelope) -> None:
        reply: ClientReadReply = envelope.payload
        future = self._pending.pop(reply.request_id, None)
        if future is not None and not future.done:
            future.resolve(reply.version)

    def _on_write_reply(self, envelope: Envelope) -> None:
        reply: ClientWriteReply = envelope.payload
        future = self._pending.pop(reply.request_id, None)
        if future is not None and not future.done:
            future.resolve(None)


def read_value(cluster: SwiftCluster, object_id: str) -> Version:
    """Convenience: one synchronous-looking read from outside a process.

    Runs the simulation until the read completes; intended for tests and
    examples, not for use while other experiments are mid-flight (it
    advances simulated time).
    """
    client = ScriptedClient(cluster)

    def body() -> Generator[Future, Any, Version]:
        version = yield client.get(object_id)
        return version

    return cluster.sim.run_process(body())
