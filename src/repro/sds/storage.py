"""Storage node: Algorithm 6 of the paper plus a disk service model.

A storage node keeps the latest version of each object it replicates,
serves quorum reads/writes from proxies, and participates in epoch
changes: once it acknowledges epoch ``e`` it NACKs every operation tagged
with an older epoch, carrying the new epoch's quorum plan so stale
proxies can catch up (Algorithm 6 lines 11-13).

The service model follows Section 2.2's observations: writes must reach
disk and are substantially slower than (mostly cached) reads, and both
scale with object size.  Requests queue on a bounded-concurrency disk
resource, which is what makes quorum sizes matter: every extra replica in
a quorum adds load to the storage tier.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

from repro.common.config import StorageConfig
from repro.common.types import NodeId, ObjectId, Version, missing_version
from repro.obs.context import Observability
from repro.obs.trace import Span
from repro.sds.messages import (
    AckNewEpoch,
    EpochNack,
    NewEpoch,
    ReplicaRead,
    ReplicaReadReply,
    ReplicaSync,
    ReplicaWrite,
    ReplicaWriteReply,
)
from repro.net.transport import Transport
from repro.sds.quorum import QuorumPlan
from repro.sds.ring import PlacementRing
from repro.sim.kernel import Simulator
from repro.sim.network import Envelope
from repro.sim.node import Node
from repro.sim.primitives import Resource

#: Wire overhead of a request/reply beyond the object payload, bytes.
_HEADER_BYTES = 256


class StorageNode(Node):
    """One back-end object server (Figure 1's "Storage" boxes)."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        node_id: NodeId,
        config: StorageConfig,
        initial_plan: QuorumPlan,
        rng: random.Random,
        ring: Optional[PlacementRing] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self._config = config.validate()
        self._rng = rng
        self._ring = ring
        self._obs = obs
        self._versions: dict[ObjectId, Version] = {}
        self._disk = Resource(
            sim, concurrency=config.concurrency, name=f"{node_id}.disk"
        )
        # Algorithm 6 state: last epoch/configuration this node committed to.
        self._epoch_no = 0
        self._cfg_no = 0
        self._plan = initial_plan
        # Anti-entropy: objects written locally since the last cycle.
        self._dirty: set[ObjectId] = set()
        self._replicator_started = False
        # Observability counters.
        self.reads_served = 0
        self.writes_served = 0
        self.writes_discarded = 0
        self.nacks_sent = 0
        self.syncs_sent = 0
        self.syncs_applied = 0

        self.register_handler(ReplicaRead, self._on_read)
        self.register_handler(ReplicaWrite, self._on_write)
        self.register_handler(ReplicaSync, self._on_sync)
        self.register_handler(NewEpoch, self._on_new_epoch)

    def start(self) -> None:
        super().start()
        if (
            not self._replicator_started
            and self._ring is not None
            and self._config.replication_interval > 0
        ):
            self._replicator_started = True
            self.spawn(
                self._replicator_loop(), name=f"{self.node_id}.replicator"
            )

    # -- protocol state (read-only views for tests) ---------------------------

    @property
    def epoch_no(self) -> int:
        return self._epoch_no

    @property
    def cfg_no(self) -> int:
        return self._cfg_no

    @property
    def disk(self) -> Resource:
        return self._disk

    def version_of(self, object_id: ObjectId) -> Version:
        """Current stored version (ZERO-stamped if never written)."""
        return self._versions.get(object_id, missing_version())

    def stored_objects(self) -> list[ObjectId]:
        return list(self._versions)

    # -- Algorithm 6 ------------------------------------------------------------

    def _on_new_epoch(self, envelope: Envelope) -> None:
        message: NewEpoch = envelope.payload
        # "if epNo >= lepNo then" — adopt the newer epoch; ack either way
        # is not required by the pseudo-code, which only acks adopted
        # epochs; we follow it literally.
        if message.epoch_no >= self._epoch_no:
            self._epoch_no = message.epoch_no
            self._cfg_no = message.cfg_no
            self._plan = message.plan
            self.send(
                envelope.sender,
                AckNewEpoch(epoch_no=message.epoch_no, replica=self.node_id),
                size=_HEADER_BYTES,
            )

    def _on_read(self, envelope: Envelope) -> Iterator:
        message: ReplicaRead = envelope.payload
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        obs = self._obs
        span: Optional[Span] = None
        started_at = self.sim.now
        if obs is not None:
            span = obs.tracer.start_span(
                "replica.read",
                category="storage",
                node=str(self.node_id),
                parent=envelope.trace,
                object=message.object_id,
                op_id=message.op_id,
            )
        hinted = self._versions.get(message.object_id)
        size_hint = hinted.size if hinted is not None else 0
        yield self._disk.use(self._read_service_time(size_hint))
        # Re-check the fence: a NEWEP may have been adopted while this
        # request waited in the disk queue.  Serving it anyway would let
        # a read from a superseded epoch count toward a quorum that no
        # longer intersects the fenced configuration (Section 5.3).
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            if span is not None:
                span.finish(status="stale-epoch")
            return
        # Serve whatever is on disk once the request reaches the head of
        # the queue (a concurrent write may have landed meanwhile).
        version = self._versions.get(message.object_id, missing_version())
        self.reads_served += 1
        self.send(
            envelope.sender,
            ReplicaReadReply(
                object_id=message.object_id,
                version=version,
                op_id=message.op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES + version.size,
        )
        if obs is not None:
            assert span is not None
            span.finish(status="ok")
            obs.replica_read.observe(self.sim.now - started_at)

    def _on_write(self, envelope: Envelope) -> Iterator:
        message: ReplicaWrite = envelope.payload
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        obs = self._obs
        span: Optional[Span] = None
        started_at = self.sim.now
        if obs is not None:
            span = obs.tracer.start_span(
                "replica.write",
                category="storage",
                node=str(self.node_id),
                parent=envelope.trace,
                object=message.object_id,
                op_id=message.op_id,
            )
        yield self._disk.use(self._write_service_time(message.size))
        # Re-check the fence after the disk wait (see _on_read): a write
        # from a superseded epoch must be nacked, not applied — applying
        # it would resurrect state the reconfiguration already fenced off.
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            if span is not None:
                span.finish(status="stale-epoch")
            return
        current = self._versions.get(message.object_id)
        # "storage nodes acknowledge the proxy but discard any write
        # request that is older than the latest write operation that they
        # have already acknowledged" (Section 2.1).  Equal stamps re-apply:
        # that is the read-repair write-back refreshing the version's
        # cfg_no under a newer configuration (Algorithm 4 line 27).
        if current is None or message.stamp >= current.stamp:
            self._versions[message.object_id] = Version(
                value=message.value,
                stamp=message.stamp,
                cfg_no=message.cfg_no,
                size=message.size,
            )
            self._dirty.add(message.object_id)
            self.writes_served += 1
        else:
            self.writes_discarded += 1
        self.send(
            envelope.sender,
            ReplicaWriteReply(
                object_id=message.object_id,
                op_id=message.op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES,
        )
        if obs is not None:
            assert span is not None
            span.finish(status="ok")
            obs.replica_write.observe(self.sim.now - started_at)

    # -- anti-entropy (Swift's object replicator) -----------------------------------

    def _replicator_loop(self) -> Iterator:
        """Periodically push locally updated objects to peer replicas.

        Pushes are paced across the cycle (as Swift's replicator is
        rate-limited) so that anti-entropy traffic is a smooth background
        load rather than a periodic burst that would alias into the
        foreground throughput measurements.
        """
        interval = self._config.replication_interval
        # Desynchronize the fleet's cycles.
        yield self.sim.sleep(self._rng.uniform(0, interval))
        while self.alive:
            dirty, self._dirty = self._dirty, set()
            pacing = interval / (2 * len(dirty)) if dirty else 0.0
            # Sorted iteration: ``dirty`` is a set of object ids, and set
            # order depends on PYTHONHASHSEED — iterating it raw leaks
            # the interpreter's hash seed into message ordering, breaking
            # cross-process determinism for the same simulation seed.
            for object_id in sorted(dirty):
                version = self._versions.get(object_id)
                if version is None:
                    continue
                for peer in self._ring.replicas(object_id):
                    if peer == self.node_id:
                        continue
                    self.syncs_sent += 1
                    self.send(
                        peer,
                        ReplicaSync(object_id=object_id, version=version),
                        size=_HEADER_BYTES + version.size,
                    )
                yield self.sim.sleep(pacing)
            yield self.sim.sleep(
                interval * self._rng.uniform(0.4, 0.6)
            )

    def _on_sync(self, envelope: Envelope) -> Iterator:
        message: ReplicaSync = envelope.payload
        current = self._versions.get(message.object_id)
        if current is not None and message.version.stamp <= current.stamp:
            return
        yield self._disk.use(
            self._write_service_time(message.version.size)
        )
        # Re-check: a fresher foreground write may have landed while the
        # sync waited for the disk.
        current = self._versions.get(message.object_id)
        if current is None or message.version.stamp > current.stamp:
            self._versions[message.object_id] = message.version
            self.syncs_applied += 1

    # -- service model ------------------------------------------------------------

    def _noise(self) -> float:
        """Multiplicative service-time variability (+-10%)."""
        return self._rng.uniform(0.9, 1.1)

    def _read_service_time(self, size: int) -> float:
        config = self._config
        time = config.read_service_time + size / config.read_bandwidth
        if self._rng.random() < config.read_miss_ratio:
            time += config.read_miss_penalty
        return time * self._noise()

    def _write_service_time(self, size: int) -> float:
        config = self._config
        time = config.write_service_time + size / config.write_bandwidth
        return time * self._noise()

    def _nack(
        self,
        recipient: NodeId,
        op_id: int,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.nacks_sent += 1
        if self._obs is not None:
            self._obs.tracer.annotate(
                "epoch-nack",
                category="storage",
                node=str(self.node_id),
                op_id=op_id,
                parent_span=trace[1] if trace is not None else 0,
            )
        self.send(
            recipient,
            EpochNack(
                epoch_no=self._epoch_no,
                cfg_no=self._cfg_no,
                plan=self._plan,
                op_id=op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES,
        )
