"""Storage node: Algorithm 6 of the paper plus a disk service model.

A storage node keeps the latest version of each object it replicates,
serves quorum reads/writes from proxies, and participates in epoch
changes: once it acknowledges epoch ``e`` it NACKs every operation tagged
with an older epoch, carrying the new epoch's quorum plan so stale
proxies can catch up (Algorithm 6 lines 11-13).

The service model follows Section 2.2's observations: writes must reach
disk and are substantially slower than (mostly cached) reads, and both
scale with object size.  Requests queue on a bounded-concurrency disk
resource, which is what makes quorum sizes matter: every extra replica in
a quorum adds load to the storage tier.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

from repro.common.config import StorageConfig
from repro.common.types import NodeId, ObjectId, Version, missing_version
from repro.obs.context import Observability
from repro.obs.trace import Span
from repro.sds.messages import (
    AckNewEpoch,
    EpochNack,
    LeaseGrant,
    LeaseNack,
    LeaseRead,
    LeaseReadReply,
    LeaseRequest,
    NewEpoch,
    ReplicaRead,
    ReplicaReadReply,
    ReplicaSync,
    ReplicaWrite,
    ReplicaWriteReply,
    SyncReply,
    SyncRequest,
)
from repro.net.transport import Transport
from repro.sds.persistence import MemoryBackend, StorageBackend
from repro.sds.quorum import QuorumPlan
from repro.sds.ring import PlacementRing
from repro.sim.kernel import Simulator
from repro.sim.network import Envelope
from repro.sim.node import Node
from repro.sim.primitives import Resource

#: Wire overhead of a request/reply beyond the object payload, bytes.
_HEADER_BYTES = 256

#: How often a durable backend's batched appends are fsynced, seconds.
#: Only the live runtime spawns the flush loop, so this is wall time.
_WAL_FLUSH_INTERVAL = 0.05

#: How often a quarantined replica retransmits SYNCREQ to peers that
#: have not answered yet, seconds.
_SYNC_RETRY_INTERVAL = 0.25


class StorageNode(Node):
    """One back-end object server (Figure 1's "Storage" boxes)."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        node_id: NodeId,
        config: StorageConfig,
        initial_plan: QuorumPlan,
        rng: random.Random,
        ring: Optional[PlacementRing] = None,
        obs: Optional[Observability] = None,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self._config = config.validate()
        self._rng = rng
        self._ring = ring
        self._obs = obs
        # Persistence seam: the backend owns the version table; reads go
        # through the shared dict (identical code path to the pre-seam
        # in-memory store), mutations through ``backend.put`` so a WAL
        # backend can journal them.  The sim always gets MemoryBackend.
        self._backend: StorageBackend = (
            backend if backend is not None else MemoryBackend()
        )
        self._versions: dict[ObjectId, Version] = self._backend.versions
        self._disk = Resource(
            sim, concurrency=config.concurrency, name=f"{node_id}.disk"
        )
        # Algorithm 6 state: last epoch/configuration this node committed to.
        self._epoch_no = 0
        self._cfg_no = 0
        self._plan = initial_plan
        # Anti-entropy: objects written locally since the last cycle.
        self._dirty: set[ObjectId] = set()
        self._replicator_started = False
        self._flush_started = False
        self._recovery_started = False
        # Quarantined rejoin (invariant I6): a replica restarting from
        # durable state may have lost a torn WAL tail, so it must not
        # contribute to read quorums until it has merged the state of a
        # read quorum of live peers at the current epoch.  It keeps
        # acking writes meanwhile (they only make it fresher).
        self._recovering = False
        #: peer -> epoch it answered our SYNCREQ with.
        self._sync_replies: dict[NodeId, int] = {}
        # Per-object read-lease grants (invariant I7), held only while
        # this node is the object's primary: object -> holder proxy ->
        # (expiry, granted duration).  Deliberately in-memory: a crashed
        # primary forgets its grants and LeaseNacks every lease read
        # after restart, which is safe because grant validation is
        # primary-side.  All grants die on any epoch adoption.
        self._leases: dict[ObjectId, dict[NodeId, Tuple[float, float]]] = {}
        if self._backend.recovered and self._ring is not None:
            epoch_no, cfg_no, plan = self._backend.recovered_state()
            self._epoch_no = epoch_no
            self._cfg_no = cfg_no
            if plan is not None:
                self._plan = plan
            self._recovering = True
        # Observability counters.
        self.reads_served = 0
        self.writes_served = 0
        self.writes_discarded = 0
        self.nacks_sent = 0
        self.syncs_sent = 0
        self.syncs_applied = 0
        self.reads_declined = 0
        self.sync_requests_sent = 0
        self.sync_requests_served = 0
        self.sync_versions_applied = 0
        self.recoveries_completed = 0
        self.leases_granted = 0
        self.leases_broken = 0
        self.lease_reads_served = 0
        self.lease_nacks_sent = 0

        self.register_handler(ReplicaRead, self._on_read)
        self.register_handler(ReplicaWrite, self._on_write)
        self.register_handler(ReplicaSync, self._on_sync)
        self.register_handler(NewEpoch, self._on_new_epoch)
        self.register_handler(SyncRequest, self._on_sync_request)
        self.register_handler(SyncReply, self._on_sync_reply)
        self.register_handler(LeaseRequest, self._on_lease_request)
        self.register_handler(LeaseRead, self._on_lease_read)

    def start(self) -> None:
        super().start()
        if (
            not self._replicator_started
            and self._ring is not None
            and self._config.replication_interval > 0
        ):
            self._replicator_started = True
            self.spawn(
                self._replicator_loop(), name=f"{self.node_id}.replicator"
            )
        if self._backend.durable and not self._flush_started:
            self._flush_started = True
            self.spawn(
                self._wal_flush_loop(), name=f"{self.node_id}.walflush"
            )
        if self._recovering and not self._recovery_started:
            self._recovery_started = True
            self.spawn(
                self._recovery_loop(), name=f"{self.node_id}.recovery"
            )

    # -- protocol state (read-only views for tests) ---------------------------

    @property
    def epoch_no(self) -> int:
        return self._epoch_no

    @property
    def cfg_no(self) -> int:
        return self._cfg_no

    @property
    def disk(self) -> Resource:
        return self._disk

    @property
    def quarantined(self) -> bool:
        """True while the replica is read-excluded (invariant I6)."""
        return self._recovering

    @property
    def persistence(self) -> StorageBackend:
        return self._backend

    def version_of(self, object_id: ObjectId) -> Version:
        """Current stored version (ZERO-stamped if never written)."""
        return self._versions.get(object_id, missing_version())

    def stored_objects(self) -> list[ObjectId]:
        return list(self._versions)

    # -- Algorithm 6 ------------------------------------------------------------

    def _on_new_epoch(self, envelope: Envelope) -> None:
        message: NewEpoch = envelope.payload
        # "if epNo >= lepNo then" — adopt the newer epoch; ack either way
        # is not required by the pseudo-code, which only acks adopted
        # epochs; we follow it literally.
        if message.epoch_no >= self._epoch_no:
            self._epoch_no = message.epoch_no
            self._cfg_no = message.cfg_no
            self._plan = message.plan
            # Epoch fence for leases (invariant I7): every outstanding
            # grant was minted under a superseded configuration, so a
            # lease read against it could count toward quorums that no
            # longer intersect.  Drop them all; holders fall back to the
            # quorum path on the next LeaseNack.
            if self._leases:
                self.leases_broken += sum(
                    len(grants) for grants in self._leases.values()
                )
                self._leases.clear()
            self._backend.set_epoch(
                message.epoch_no, message.cfg_no, message.plan
            )
            self.send(
                envelope.sender,
                AckNewEpoch(epoch_no=message.epoch_no, replica=self.node_id),
                size=_HEADER_BYTES,
            )

    def _on_read(self, envelope: Envelope) -> Iterator:
        message: ReplicaRead = envelope.payload
        if self._recovering:
            # Invariant I6: a quarantined replica must not contribute to
            # read quorums — its recovered state may miss writes it (or
            # peers) acknowledged before the crash.  Silence, not a NACK:
            # a NACK would carry a *stale* epoch and send the proxy into
            # a pointless adopt/retry spin, whereas the proxy's fallback
            # fan-out simply gathers the quorum from live peers.
            self.reads_declined += 1
            return
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        obs = self._obs
        span: Optional[Span] = None
        started_at = self.sim.now
        if obs is not None:
            span = obs.tracer.start_span(
                "replica.read",
                category="storage",
                node=str(self.node_id),
                parent=envelope.trace,
                object=message.object_id,
                op_id=message.op_id,
            )
        hinted = self._versions.get(message.object_id)
        size_hint = hinted.size if hinted is not None else 0
        yield self._disk.use(self._read_service_time(size_hint))
        # Re-check the fence: a NEWEP may have been adopted while this
        # request waited in the disk queue.  Serving it anyway would let
        # a read from a superseded epoch count toward a quorum that no
        # longer intersects the fenced configuration (Section 5.3).
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            if span is not None:
                span.finish(status="stale-epoch")
            return
        # Serve whatever is on disk once the request reaches the head of
        # the queue (a concurrent write may have landed meanwhile).
        version = self._versions.get(message.object_id, missing_version())
        self.reads_served += 1
        self.send(
            envelope.sender,
            ReplicaReadReply(
                object_id=message.object_id,
                version=version,
                op_id=message.op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES + version.size,
        )
        if obs is not None:
            assert span is not None
            span.finish(status="ok")
            obs.replica_read.observe(self.sim.now - started_at)

    def _on_write(self, envelope: Envelope) -> Iterator:
        message: ReplicaWrite = envelope.payload
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        obs = self._obs
        span: Optional[Span] = None
        started_at = self.sim.now
        if obs is not None:
            span = obs.tracer.start_span(
                "replica.write",
                category="storage",
                node=str(self.node_id),
                parent=envelope.trace,
                object=message.object_id,
                op_id=message.op_id,
            )
        yield self._disk.use(self._write_service_time(message.size))
        # Re-check the fence after the disk wait (see _on_read): a write
        # from a superseded epoch must be nacked, not applied — applying
        # it would resurrect state the reconfiguration already fenced off.
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            if span is not None:
                span.finish(status="stale-epoch")
            return
        current = self._versions.get(message.object_id)
        # "storage nodes acknowledge the proxy but discard any write
        # request that is older than the latest write operation that they
        # have already acknowledged" (Section 2.1).  Equal stamps re-apply:
        # that is the read-repair write-back refreshing the version's
        # cfg_no under a newer configuration (Algorithm 4 line 27).
        if current is None or message.stamp >= current.stamp:
            self._backend.put(
                message.object_id,
                Version(
                    value=message.value,
                    stamp=message.stamp,
                    cfg_no=message.cfg_no,
                    size=message.size,
                ),
            )
            self._dirty.add(message.object_id)
            self.writes_served += 1
            # Invalidate leases on write (invariant I7).  Equal stamps
            # are re-applies of an already-leased value (stabilise
            # write-backs, duplicate quorum legs) and break nothing.
            if current is None or message.stamp > current.stamp:
                self._break_leases(message.object_id, message.stamp)
        else:
            self.writes_discarded += 1
        self.send(
            envelope.sender,
            ReplicaWriteReply(
                object_id=message.object_id,
                op_id=message.op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES,
        )
        if obs is not None:
            assert span is not None
            span.finish(status="ok")
            obs.replica_write.observe(self.sim.now - started_at)

    # -- anti-entropy (Swift's object replicator) -----------------------------------

    def _replicator_loop(self) -> Iterator:
        """Periodically push locally updated objects to peer replicas.

        Pushes are paced across the cycle (as Swift's replicator is
        rate-limited) so that anti-entropy traffic is a smooth background
        load rather than a periodic burst that would alias into the
        foreground throughput measurements.
        """
        interval = self._config.replication_interval
        # Desynchronize the fleet's cycles.
        yield self.sim.sleep(self._rng.uniform(0, interval))
        while self.alive:
            dirty, self._dirty = self._dirty, set()
            pacing = interval / (2 * len(dirty)) if dirty else 0.0
            # Sorted iteration: ``dirty`` is a set of object ids, and set
            # order depends on PYTHONHASHSEED — iterating it raw leaks
            # the interpreter's hash seed into message ordering, breaking
            # cross-process determinism for the same simulation seed.
            for object_id in sorted(dirty):
                version = self._versions.get(object_id)
                if version is None:
                    continue
                for peer in self._ring.replicas(object_id):
                    if peer == self.node_id:
                        continue
                    self.syncs_sent += 1
                    self.send(
                        peer,
                        ReplicaSync(object_id=object_id, version=version),
                        size=_HEADER_BYTES + version.size,
                    )
                yield self.sim.sleep(pacing)
            yield self.sim.sleep(
                interval * self._rng.uniform(0.4, 0.6)
            )

    def _on_sync(self, envelope: Envelope) -> Iterator:
        message: ReplicaSync = envelope.payload
        current = self._versions.get(message.object_id)
        if current is not None and message.version.stamp <= current.stamp:
            return
        yield self._disk.use(
            self._write_service_time(message.version.size)
        )
        # Re-check: a fresher foreground write may have landed while the
        # sync waited for the disk.
        current = self._versions.get(message.object_id)
        if current is None or message.version.stamp > current.stamp:
            self._backend.put(message.object_id, message.version)
            self.syncs_applied += 1
            self._break_leases(message.object_id, message.version.stamp)

    # -- per-object read leases (invariant I7) ---------------------------------

    def lease_holders(self, object_id: ObjectId) -> list[NodeId]:
        """Proxies currently holding an unexpired grant (test view)."""
        grants = self._leases.get(object_id, {})
        return sorted(
            holder
            for holder, (expiry, _duration) in grants.items()
            if self.sim.now < expiry
        )

    def _is_primary(self, object_id: ObjectId) -> bool:
        """Is this node the object's primary (first ring replica)?

        The primary is deterministic and identical at every node, which
        is what lets the write path require its ack without any extra
        coordination (see ``ProxyConfig.lease_duration``).
        """
        if self._ring is None:
            return False
        return self._ring.replicas(object_id)[0] == self.node_id

    def _on_lease_request(self, envelope: Envelope) -> None:
        message: LeaseRequest = envelope.payload
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        if (
            self._recovering
            or message.epoch_no > self._epoch_no
            or not self._is_primary(message.object_id)
            or self._config.max_lease_duration <= 0
        ):
            # Quarantined (I6), ahead-of-us epoch, not the primary, or
            # leases disabled server-side: refuse without epoch state —
            # the proxy simply stays on the quorum path.
            self._lease_nack(envelope.sender, message)
            return
        duration = min(message.duration, self._config.max_lease_duration)
        expiry = self.sim.now + duration
        grants = self._leases.setdefault(message.object_id, {})
        grants[envelope.sender] = (expiry, duration)
        self.leases_granted += 1
        self.send(
            envelope.sender,
            LeaseGrant(
                object_id=message.object_id,
                expiry=expiry,
                epoch_no=self._epoch_no,
                op_id=message.op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES,
        )

    def _on_lease_read(self, envelope: Envelope) -> Iterator:
        message: LeaseRead = envelope.payload
        if self._recovering:
            # Invariant I6: a quarantined primary's state may miss
            # acked writes, and its grant table died with the crash.
            # A LeaseNack (not silence, unlike _on_read) is safe here
            # because it carries no epoch state — the proxy drops its
            # lease and regathers from live peers.
            self.reads_declined += 1
            self._lease_nack(envelope.sender, message)
            return
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        if not self._grant_valid(message.object_id, envelope.sender):
            self._lease_nack(envelope.sender, message)
            return
        hinted = self._versions.get(message.object_id)
        size_hint = hinted.size if hinted is not None else 0
        yield self._disk.use(self._read_service_time(size_hint))
        # Re-validate after the disk wait: both the epoch fence (see
        # _on_read) and the grant itself — a NEWEP adoption or a
        # foreign write may have invalidated the lease while this
        # request sat in the disk queue.
        if message.epoch_no < self._epoch_no:
            self._nack(envelope.sender, message.op_id, envelope.trace)
            return
        if self._recovering or not self._grant_valid(
            message.object_id, envelope.sender
        ):
            self._lease_nack(envelope.sender, message)
            return
        # Sliding renewal: a served lease read refreshes the grant for
        # its original duration, so a hot read-mostly object keeps its
        # lease alive without LeaseRequest traffic.
        grants = self._leases[message.object_id]
        _old_expiry, duration = grants[envelope.sender]
        expiry = self.sim.now + duration
        grants[envelope.sender] = (expiry, duration)
        version = self._versions.get(message.object_id, missing_version())
        self.lease_reads_served += 1
        self.send(
            envelope.sender,
            LeaseReadReply(
                object_id=message.object_id,
                version=version,
                expiry=expiry,
                op_id=message.op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES + version.size,
        )

    def _grant_valid(self, object_id: ObjectId, holder: NodeId) -> bool:
        grants = self._leases.get(object_id)
        if not grants:
            return False
        record = grants.get(holder)
        if record is None:
            return False
        expiry, _duration = record
        if self.sim.now >= expiry:
            del grants[holder]
            if not grants:
                del self._leases[object_id]
            return False
        return True

    def _break_leases(self, object_id: ObjectId, stamp: object) -> None:
        """Invalidate grants on a write — except the writer's own.

        The writer's proxy already observed its own stamp (its stability
        watermark covers it), so its lease stays valid; every other
        holder must fall back to a quorum read once and re-acquire.
        ``getattr`` keeps the vector-clock versioning scheme working:
        a stamp without a ``proxy`` field breaks every grant.
        """
        grants = self._leases.get(object_id)
        if not grants:
            return
        writer = getattr(stamp, "proxy", None)
        broken = [
            holder for holder in sorted(grants) if str(holder) != writer
        ]
        for holder in broken:
            del grants[holder]
        self.leases_broken += len(broken)
        if not grants:
            del self._leases[object_id]

    def _lease_nack(self, recipient: NodeId, message: object) -> None:
        self.lease_nacks_sent += 1
        self.send(
            recipient,
            LeaseNack(
                object_id=message.object_id,  # type: ignore[attr-defined]
                op_id=message.op_id,  # type: ignore[attr-defined]
                epoch_no=self._epoch_no,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES,
        )

    # -- crash recovery: quarantined rejoin (invariant I6) ---------------------

    def _recovery_peers(self) -> list[NodeId]:
        """Every other storage node, in deterministic (sorted) order."""
        if self._ring is None:
            return []
        return sorted(
            peer for peer in self._ring.nodes if peer != self.node_id
        )

    def _recovery_loop(self) -> Iterator:
        """Drive the catch-up sync until the quarantine can be lifted.

        Retransmits SYNCREQ to every peer that has not answered yet.
        Each iteration re-reads ``self._epoch_no``: an epoch adopted
        between retransmissions (via NEWEP or a peer's reply) must be
        reflected in the next request, not a stale captured value.
        """
        while self.alive and self._recovering:
            for peer in self._recovery_peers():
                if peer not in self._sync_replies:
                    self.sync_requests_sent += 1
                    self.send(
                        peer,
                        SyncRequest(
                            replica=self.node_id, epoch_no=self._epoch_no
                        ),
                        size=_HEADER_BYTES,
                    )
            yield self.sim.sleep(_SYNC_RETRY_INTERVAL)

    def _on_sync_request(self, envelope: Envelope) -> None:
        message: SyncRequest = envelope.payload
        del message
        if self._recovering:
            # A quarantined replica's state is not yet trustworthy; two
            # simultaneously recovering replicas must not certify each
            # other (the requester needs *caught-up* peers to count
            # toward its read-quorum's worth of replies).
            return
        self.sync_requests_served += 1
        payload_bytes = sum(v.size for v in self._versions.values())
        self.send(
            envelope.sender,
            SyncReply(
                replica=self.node_id,
                epoch_no=self._epoch_no,
                cfg_no=self._cfg_no,
                plan=self._plan,
                versions=dict(self._versions),
            ),
            size=_HEADER_BYTES + payload_bytes,
        )

    def _on_sync_reply(self, envelope: Envelope) -> None:
        """Merge a peer's state; atomic (no suspension points) by design."""
        message: SyncReply = envelope.payload
        if not self._recovering:
            return
        for object_id in sorted(message.versions):
            version = message.versions[object_id]
            current = self._versions.get(object_id)
            if current is None or version.stamp > current.stamp:
                self._backend.put(object_id, version)
                self.sync_versions_applied += 1
        if (message.epoch_no, message.cfg_no) > (self._epoch_no, self._cfg_no):
            self._epoch_no = message.epoch_no
            self._cfg_no = message.cfg_no
            self._plan = message.plan
            self._backend.set_epoch(
                message.epoch_no, message.cfg_no, message.plan
            )
        self._sync_replies[message.replica] = message.epoch_no
        self._maybe_exit_quarantine()

    def _maybe_exit_quarantine(self) -> None:
        """Lift the quarantine once the I6 catch-up condition holds.

        Condition: replies from at least ``max_read(plan)`` distinct
        peers whose epoch is no newer than ours (we adopt newer epochs
        on sight, so this means "at the current epoch").  Any read
        quorum's worth of peers intersects every write quorum of the
        current configuration, so every write acknowledged while this
        replica was down has been merged; the replayed WAL covers every
        write acknowledged before the crash except a torn tail, which
        the same intersection argument recovers from peers.
        """
        if not self._recovering:
            return
        if any(
            epoch > self._epoch_no for epoch in self._sync_replies.values()
        ):
            return
        peers = self._recovery_peers()
        needed = min(self._plan.max_read, len(peers)) if peers else 0
        caught_up = sum(
            1
            for epoch in self._sync_replies.values()
            if epoch >= self._epoch_no
        )
        if caught_up < needed:
            return
        self._recovering = False
        self.recoveries_completed += 1
        self._sync_replies.clear()
        self._backend.set_epoch(self._epoch_no, self._cfg_no, self._plan)
        self._backend.flush()

    # -- durability ---------------------------------------------------------------

    def _wal_flush_loop(self) -> Iterator:
        """Bound how long an acked write can sit unfsynced (live only)."""
        while self.alive:
            yield self.sim.sleep(_WAL_FLUSH_INTERVAL)
            self._backend.flush()

    # -- service model ------------------------------------------------------------

    def _noise(self) -> float:
        """Multiplicative service-time variability (+-10%)."""
        return self._rng.uniform(0.9, 1.1)

    def _read_service_time(self, size: int) -> float:
        config = self._config
        time = config.read_service_time + size / config.read_bandwidth
        if self._rng.random() < config.read_miss_ratio:
            time += config.read_miss_penalty
        return time * self._noise()

    def _write_service_time(self, size: int) -> float:
        config = self._config
        time = config.write_service_time + size / config.write_bandwidth
        return time * self._noise()

    def _nack(
        self,
        recipient: NodeId,
        op_id: int,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.nacks_sent += 1
        if self._obs is not None:
            self._obs.tracer.annotate(
                "epoch-nack",
                category="storage",
                node=str(self.node_id),
                op_id=op_id,
                parent_span=trace[1] if trace is not None else 0,
            )
        self.send(
            recipient,
            EpochNack(
                epoch_no=self._epoch_no,
                cfg_no=self._cfg_no,
                plan=self._plan,
                op_id=op_id,
                replica=self.node_id,
            ),
            size=_HEADER_BYTES,
        )
