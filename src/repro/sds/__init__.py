"""The Swift-like software-defined storage substrate."""

from repro.sds.client import ClientNode, OperationRecord, OperationSource
from repro.sds.cluster import SwiftCluster, build_cluster
from repro.sds.consistency import HistoryChecker, Violation
from repro.sds.messages import AggregateStats, ObjectStats
from repro.sds.proxy import ProxyNode
from repro.sds.quorum import (
    ConfigurationHistory,
    InstalledConfiguration,
    QuorumPlan,
)
from repro.sds.ring import PlacementRing
from repro.sds.scripted import ScriptedClient, read_value
from repro.sds.storage import StorageNode
from repro.sds.vector_clocks import (
    TimestampVersioning,
    VectorStamp,
    VectorVersioning,
    make_versioning,
)

__all__ = [
    "AggregateStats",
    "ClientNode",
    "ConfigurationHistory",
    "HistoryChecker",
    "InstalledConfiguration",
    "ObjectStats",
    "OperationRecord",
    "OperationSource",
    "PlacementRing",
    "ProxyNode",
    "QuorumPlan",
    "ScriptedClient",
    "StorageNode",
    "SwiftCluster",
    "TimestampVersioning",
    "VectorStamp",
    "VectorVersioning",
    "Violation",
    "build_cluster",
    "make_versioning",
    "read_value",
]
