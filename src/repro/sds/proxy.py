"""Proxy node: Algorithms 3, 4 and 5 of the paper.

Proxies are the SDS front-end (Figure 1): they turn client reads/writes
into quorum accesses on the storage tier, and they are the participants
of the non-blocking reconfiguration protocol:

* **Algorithm 4 (read)** — gather the object's read quorum, pick the
  freshest version; if that version was written under an older quorum
  configuration whose write quorum may not intersect the current read
  quorum, re-read with the largest read quorum installed since, and
  asynchronously write the value back under the current configuration.
* **Algorithm 5 (write)** — gather write-quorum acks for a totally
  ordered (timestamp, proxy-id) stamped version.
* **Algorithm 3 (reconfiguration)** — on NEWQ, switch to the transition
  quorum, drain pending old-quorum operations, ack; on CONFIRM, switch to
  the new quorum.  Epoch NACKs from storage nodes teach the proxy about
  epochs it missed and trigger op re-execution.

The proxy also hosts the monitoring hooks of Algorithm 1: per-access
recording into a top-k stream summary and per-round statistics shipping
to the Autonomic Manager.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.common.config import ProxyConfig
from repro.common.errors import GatherTimeoutError, OperationError
from repro.common.types import (
    NodeId,
    ObjectId,
    OpType,
    Version,
    VersionStamp,
)
from repro.metrics.timeline import EventTimeline
from repro.obs.context import Observability
from repro.obs.trace import Span
from repro.sds.messages import (
    AckConfirm,
    AckNewQuorum,
    AckPause,
    ClientOperationFailed,
    ClientRead,
    ClientReadReply,
    ClientWrite,
    ClientWriteReply,
    Confirm,
    EpochNack,
    LeaseGrant,
    LeaseNack,
    LeaseRead,
    LeaseReadReply,
    LeaseRequest,
    NewQuorum,
    NewRound,
    NewTopK,
    PauseProxy,
    ReplicaRead,
    ReplicaReadReply,
    ReplicaWrite,
    ReplicaWriteReply,
    ResumeProxy,
    RoundStats,
)
from repro.net.transport import Transport
from repro.sds.quorum import ConfigurationHistory, QuorumPlan
from repro.sds.ring import PlacementRing, _hash64
from repro.sds.vector_clocks import TimestampVersioning
from repro.sim.kernel import Future, Simulator
from repro.sim.network import Envelope
from repro.sim.node import Node
from repro.sim.primitives import Gate, PendingCounter, Resource, any_of
from repro.topk.stats import ProxyStatsRecorder

#: Wire overhead of a request/reply beyond the object payload, bytes.
_HEADER_BYTES = 256

#: Write-stamp replay window per client (must exceed any sane client
#: pipeline depth; ids are monotonic so eviction is oldest-first).
_WRITE_STAMP_CACHE = 128


class _Gather:
    """In-flight quorum collection for one replica-level operation.

    When ``required`` names a replica, the gather does not resolve until
    that replica's reply is among the collected ones, even past
    ``needed`` — the mandatory-primary write rule of invariant I7.
    """

    __slots__ = ("needed", "required", "replies", "future")

    def __init__(
        self,
        needed: int,
        future: Future,
        required: Optional[NodeId] = None,
    ) -> None:
        self.needed = needed
        self.required = required
        self.replies: list = []
        self.future = future

    def add_reply(self, reply: Any) -> None:
        if self.future.done:
            return
        self.replies.append(reply)
        if len(self.replies) < self.needed:
            return
        if self.required is not None and all(
            reply.replica != self.required for reply in self.replies
        ):
            return
        self.future.resolve(("ok", list(self.replies)))

    def add_nack(self, nack: EpochNack) -> None:
        if self.future.done:
            return
        self.future.resolve(("nack", nack))


class _HeldLease:
    """A proxy-side record of a lease granted by an object's primary.

    ``expiry`` is advisory at the proxy (the primary re-validates every
    lease read against its own clock); it only gates whether the fast
    path is worth attempting.  Mutable: served lease reads slide it
    forward without reallocating.
    """

    __slots__ = ("expiry", "epoch_no")

    def __init__(self, expiry: float, epoch_no: int) -> None:
        self.expiry = expiry
        self.epoch_no = epoch_no


class ProxyNode(Node):
    """One Swift proxy process."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        node_id: NodeId,
        ring: PlacementRing,
        config: ProxyConfig,
        initial_plan: QuorumPlan,
        rng: random.Random,
        stats: Optional[ProxyStatsRecorder] = None,
        versioning: Any = None,
        events: Optional[EventTimeline] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self._versioning = versioning or TimestampVersioning()
        self._ring = ring
        self._config = config.validate()
        self._rng = rng
        self._cpu = Resource(
            sim, concurrency=config.concurrency, name=f"{node_id}.cpu"
        )
        self._rotation = _hash64(str(node_id))

        # Algorithm 3 state.
        self._epoch_no = 0
        self._cfg_no = 0
        self._confirmed_cfg_no = 0
        self._current_plan = initial_plan
        self._transition_plan: Optional[QuorumPlan] = None
        self._history = ConfigurationHistory()
        self._history.record(0, initial_plan)
        self._inflight = PendingCounter(sim)
        # Ablation A3 hook: the stop-the-world baseline closes this gate.
        self._pause_gate = Gate(sim, open_=True)

        # Replica-level op routing.
        self._op_seq = itertools.count(1)
        self._gathers: dict[int, _Gather] = {}

        # Monitoring (Algorithm 1 proxy side).
        self.stats = stats
        self._round_started_at = 0.0
        self._round_completed = 0
        self._round_latency_sum = 0.0
        self._last_round_no = 0
        self._last_round_stats: Optional[RoundStats] = None

        # Observability.
        self._events = events
        self._obs = obs
        self.operations_completed = 0
        self.operation_retries = 0
        self.read_repairs = 0
        self.write_backs = 0
        # Highest stamp per object known to sit on a full write quorum
        # (own completed writes and write-backs, or an agreed
        # self-intersecting read) — reads of covered stamps skip the
        # ABD phase-2 write-back in _stabilise.
        self._stable: dict[ObjectId, VersionStamp] = {}
        # Stamp minted per (client, request_id): a client's retry of the
        # same logical write must reuse the first attempt's stamp — a
        # fresh stamp would resurrect the retried (old) value above
        # writes that completed in between, breaking linearizability.
        # Pipelined clients keep up to ``pipeline_depth`` logical writes
        # in flight, so the cache holds a bounded window of recent
        # request ids per client (ids are monotonic per client; a client
        # only ever retries ids younger than the eviction horizon).
        self._write_stamps: dict[NodeId, dict[int, VersionStamp]] = {}
        self.resubmitted_writes = 0
        self.gather_timeouts = 0
        self.operations_failed = 0

        # Per-object read leases (invariant I7).  The write-side rule
        # (primary ack mandatory) follows the *static* config flag so
        # every proxy in the fleet applies it uniformly; the read-side
        # fast path can additionally be toggled per proxy at runtime
        # (set_lease_reads), which is safe — it only changes whether we
        # *use* leases, never whether writes keep them sound.
        self._leases: dict[ObjectId, _HeldLease] = {}
        self._lease_pending: dict[ObjectId, float] = {}
        self._lease_reads_enabled = True
        self.lease_read_hits = 0
        self.lease_read_misses = 0
        self.leases_acquired = 0
        self.lease_requests_sent = 0
        self._sync_optimized()

        self.register_handler(ClientRead, self._on_client_read)
        self.register_handler(ClientWrite, self._on_client_write)
        self.register_handler(ReplicaReadReply, self._on_replica_reply)
        self.register_handler(ReplicaWriteReply, self._on_replica_reply)
        self.register_handler(EpochNack, self._on_epoch_nack)
        self.register_handler(LeaseReadReply, self._on_replica_reply)
        self.register_handler(LeaseGrant, self._on_lease_grant)
        self.register_handler(LeaseNack, self._on_lease_nack)
        self.register_handler(NewQuorum, self._on_new_quorum)
        self.register_handler(Confirm, self._on_confirm)
        self.register_handler(NewRound, self._on_new_round)
        self.register_handler(NewTopK, self._on_new_top_k)
        self.register_handler(PauseProxy, self._on_pause)
        self.register_handler(ResumeProxy, self._on_resume)

    # -- read-only views ----------------------------------------------------

    @property
    def epoch_no(self) -> int:
        return self._epoch_no

    @property
    def cfg_no(self) -> int:
        return self._cfg_no

    @property
    def in_transition(self) -> bool:
        return self._transition_plan is not None

    def active_plan(self) -> QuorumPlan:
        """The plan governing operations issued right now.

        During phase 1 of a reconfiguration this is the transition plan
        (pairwise max of old and new quorums); otherwise the installed
        plan.
        """
        return self._transition_plan or self._current_plan

    # -- client-facing operations (Algorithms 4 and 5) -------------------------

    def _on_client_read(self, envelope: Envelope) -> Iterator:
        request: ClientRead = envelope.payload
        yield self._pause_gate.wait()
        if self.stats is not None:
            self.stats.record_access(request.object_id, OpType.READ, 0)
        started_at = self.sim.now
        counter = self._inflight
        counter.increment()
        span: Optional[Span] = None
        if self._obs is not None:
            span = self._obs.tracer.start_span(
                "proxy.read",
                category="proxy",
                node=str(self.node_id),
                parent=envelope.trace,
                object=request.object_id,
            )
        try:
            version = yield from self._read(request.object_id, span=span)
        except OperationError as error:
            if span is not None:
                span.finish(status="failed")
            self._fail_operation(
                envelope.sender,
                request.request_id,
                "read",
                request.object_id,
                error,
            )
            return
        finally:
            # Decrement unconditionally: a timed-out operation must not
            # wedge the NEWQ drain barrier of Algorithm 3.
            counter.decrement()
        if span is not None:
            span.finish(status="ok")
        if self.stats is not None:
            self.stats.record_access_size(request.object_id, version.size)
        self.send(
            envelope.sender,
            ClientReadReply(
                object_id=request.object_id,
                version=version,
                request_id=request.request_id,
            ),
            size=_HEADER_BYTES + version.size,
        )
        self._complete_operation(self.sim.now - started_at)

    def _on_client_write(self, envelope: Envelope) -> Iterator:
        request: ClientWrite = envelope.payload
        yield self._pause_gate.wait()
        if self.stats is not None:
            self.stats.record_access(
                request.object_id, OpType.WRITE, request.size
            )
        started_at = self.sim.now
        counter = self._inflight
        counter.increment()
        stamps = self._write_stamps.get(envelope.sender)
        if stamps is None:
            stamps = self._write_stamps[envelope.sender] = {}
        cached = stamps.get(request.request_id)
        if cached is not None:
            stamp = cached
            self.resubmitted_writes += 1
        else:
            stamp = self._versioning.next_stamp(
                str(self.node_id), request.object_id, self.sim.now
            )
            stamps[request.request_id] = stamp
            if len(stamps) > _WRITE_STAMP_CACHE:
                # Dicts iterate in insertion order: evict the oldest
                # request id (deterministic; far older than any id a
                # depth-bounded client could still retry).
                del stamps[next(iter(stamps))]
        span: Optional[Span] = None
        if self._obs is not None:
            span = self._obs.tracer.start_span(
                "proxy.write",
                category="proxy",
                node=str(self.node_id),
                parent=envelope.trace,
                object=request.object_id,
            )
        try:
            yield from self._write(
                request.object_id,
                request.value,
                request.size,
                stamp,
                span=span,
                phase="p1",
            )
        except OperationError as error:
            if span is not None:
                span.finish(status="failed")
            self._fail_operation(
                envelope.sender,
                request.request_id,
                "write",
                request.object_id,
                error,
            )
            return
        finally:
            counter.decrement()
        if span is not None:
            span.finish(status="ok")
        self._note_stable(request.object_id, stamp)
        self.send(
            envelope.sender,
            ClientWriteReply(
                object_id=request.object_id, request_id=request.request_id
            ),
            size=_HEADER_BYTES,
        )
        self._complete_operation(self.sim.now - started_at)

    def _read(
        self, object_id: ObjectId, span: Optional[Span] = None
    ) -> Iterator:
        """Algorithm 4 body; returns the freshest safe :class:`Version`.

        Raises :class:`GatherTimeoutError` once every gather attempt —
        each against the next ring rotation, to route around a faulty
        preferred replica set — has exhausted its deadline.
        """
        started_at = self.sim.now
        if self._lease_feature_on() and self._lease_reads_enabled:
            reply = yield from self._lease_read(object_id, span=span)
            if reply is not None:
                version = reply.version
                if version.value is not None:
                    # A lease read returns the primary's *current*
                    # version, which mandatory-primary writes keep at
                    # least as fresh as any completed write — but it may
                    # still be a partial (in-flight or abandoned) write,
                    # so it goes through the same stability discipline
                    # as a quorum read before reaching the client.  In
                    # steady state the stamp is already memoised stable
                    # and this costs nothing.
                    yield from self._stabilise(
                        object_id, version, [reply], parent=span
                    )
                self._versioning.observe(object_id, version.stamp)
                return version
        timeouts = 0
        while True:
            read_quorum = self.active_plan().quorum_for(object_id).read
            outcome = yield from self._gather_reads(
                object_id,
                read_quorum,
                rotation_offset=timeouts,
                parent=span,
                phase="p1",
            )
            if outcome[0] == "nack":
                self._adopt_from_nack(outcome[1])
                continue
            if outcome[0] == "timeout":
                timeouts = self._next_attempt(
                    "read", object_id, timeouts, started_at
                )
                continue
            version = self._freshest(outcome[1])
            # Lines 10-17: was the version written under a configuration
            # whose write quorum might not intersect our read quorum?
            repair_quorum = self._history.max_read_quorum(
                object_id, version.cfg_no, self._cfg_no
            )
            if repair_quorum <= read_quorum:
                yield from self._stabilise(
                    object_id, version, outcome[1], parent=span
                )
                self._versioning.observe(object_id, version.stamp)
                self._maybe_request_lease(object_id)
                return version
            self.read_repairs += 1
            outcome = yield from self._gather_reads(
                object_id,
                repair_quorum,
                rotation_offset=timeouts,
                parent=span,
                phase="p2",
            )
            if outcome[0] == "nack":
                self._adopt_from_nack(outcome[1])
                continue
            if outcome[0] == "timeout":
                timeouts = self._next_attempt(
                    "read", object_id, timeouts, started_at
                )
                continue
            version = self._freshest(outcome[1])
            yield from self._stabilise(
                object_id, version, outcome[1], parent=span
            )
            self._versioning.observe(object_id, version.stamp)
            self._maybe_request_lease(object_id)
            return version

    def _write(
        self,
        object_id: ObjectId,
        value: bytes,
        size: int,
        stamp: VersionStamp,
        span: Optional[Span] = None,
        phase: Optional[str] = None,
    ) -> Iterator:
        """Algorithm 5 body.

        Raises :class:`GatherTimeoutError` after exhausting all rotation
        retries, like :meth:`_read`.  ``phase`` labels the gather
        histogram ("p1" for client writes, ``None`` for stabilise
        write-backs, which are accounted separately).
        """
        started_at = self.sim.now
        timeouts = 0
        while True:
            write_quorum = self.active_plan().quorum_for(object_id).write
            outcome = yield from self._gather_writes(
                object_id, value, size, stamp, write_quorum,
                rotation_offset=timeouts,
                parent=span,
                phase=phase,
            )
            if outcome[0] == "nack":
                self._adopt_from_nack(outcome[1])
                continue
            if outcome[0] == "timeout":
                timeouts = self._next_attempt(
                    "write", object_id, timeouts, started_at
                )
                continue
            return

    def _next_attempt(
        self,
        kind: str,
        object_id: ObjectId,
        timeouts: int,
        started_at: float,
    ) -> int:
        """Account one gather timeout; raise once the retry budget is spent."""
        timeouts += 1
        self.gather_timeouts += 1
        if self._obs is not None:
            self._obs.gather_timeouts.inc()
        if timeouts >= self._config.max_gather_attempts:
            self._record(
                "gather-exhausted", f"{kind} {object_id} attempts={timeouts}"
            )
            raise GatherTimeoutError(
                f"{kind} of {object_id} found no responsive quorum after "
                f"{timeouts} attempts",
                object_id=str(object_id),
                elapsed=self.sim.now - started_at,
                attempts=timeouts,
            )
        self._record(
            "gather-retry", f"{kind} {object_id} rotation+{timeouts}"
        )
        return timeouts

    def _stabilise(
        self,
        object_id: ObjectId,
        version: Version,
        replies: list[ReplicaReadReply],
        parent: Optional[Span] = None,
    ) -> Iterator:
        """Write the freshest version back to a full write quorum before
        the read returns it (ABD phase 2; Alg. 4 line 27).

        A writer that crashes or exhausts its retries mid-quorum leaves a
        *partial* write behind; a read that observes it and returns
        without this step could expose a value a later read fails to
        find.  The round trip is skipped only when it is provably
        redundant: every reply already carries the version and read
        quorums self-intersect (2r > n), so any later read meets a
        replica that stores it.  A write-back that itself finds no
        responsive quorum fails the read with the usual typed error —
        an unstable value must never reach the client.

        Stability is memoised per object: a stamp this proxy has itself
        pushed to a full write quorum (a completed client write or an
        earlier write-back) is durable, so reads that return it — the
        steady state, including every read under R=1 where a lone reply
        can never self-certify — cost no extra round trip.
        """
        if version.value is None:
            return
        # Equality only: knowing a *higher* stamp sits on some write
        # quorum says nothing about the stability of the older value
        # this gather actually returned (quorum shapes shift under
        # per-object reconfiguration), so `<` must still write back.
        if self._stable.get(object_id) == version.stamp:
            return
        agreed = all(
            reply.version.stamp == version.stamp for reply in replies
        )
        if agreed and 2 * len(replies) > self._ring.replication_degree:
            self._note_stable(object_id, version.stamp)
            return
        self.write_backs += 1
        obs = self._obs
        span: Optional[Span] = None
        started_at = self.sim.now
        if obs is not None:
            span = obs.tracer.start_span(
                "proxy.stabilise",
                category="proxy",
                node=str(self.node_id),
                parent=parent.context() if parent is not None else None,
                object=object_id,
            )
        try:
            yield from self._write(
                object_id, version.value, version.size, version.stamp,
                span=span,
            )
        except OperationError:
            if span is not None:
                span.finish(status="failed")
            raise
        if obs is not None:
            assert span is not None
            span.finish(status="ok")
            obs.stabilise.observe(self.sim.now - started_at)
        self._note_stable(object_id, version.stamp)

    def _note_stable(self, object_id: ObjectId, stamp: VersionStamp) -> None:
        current = self._stable.get(object_id)
        if current is None or current < stamp:
            self._stable[object_id] = stamp

    # -- per-object read leases (invariant I7) ---------------------------------

    def _lease_feature_on(self) -> bool:
        return self._config.lease_duration > 0

    def set_lease_reads(self, enabled: bool) -> None:
        """Runtime toggle for the read-side fast path (per proxy).

        Disabling drops held leases so an A/B comparison on a live
        cluster measures the pure quorum path, not residual lease hits.
        """
        self._lease_reads_enabled = bool(enabled)
        if not enabled:
            self._drop_all_leases()

    def leases_held(self) -> int:
        """Number of objects this proxy currently holds a lease on."""
        return len(self._leases)

    def _primary(self, object_id: ObjectId) -> NodeId:
        return self._ring.replicas(object_id)[0]

    def _lease_read(
        self, object_id: ObjectId, span: Optional[Span] = None
    ) -> Iterator:
        """Attempt the one-replica fast path; ``None`` means fall back.

        The proxy-side expiry check (minus ``lease_skew_bound``) is
        purely advisory: the primary re-validates the grant against its
        own clock, so clock skew can only cost a wasted round trip and a
        fall-back to the quorum path, never a stale read.
        """
        held = self._leases.get(object_id)
        if held is None or held.epoch_no != self._epoch_no:
            return None
        if self.sim.now >= held.expiry - self._config.lease_skew_bound:
            del self._leases[object_id]
            return None
        op_id = next(self._op_seq)
        gather = _Gather(
            needed=1, future=self.sim.future(name=f"lease-read-{op_id}")
        )
        self._gathers[op_id] = gather
        trace = span.context() if span is not None else None
        try:
            yield self._cpu.use(self._config.per_replica_cpu)
            self.send(
                self._primary(object_id),
                LeaseRead(
                    object_id=object_id,
                    epoch_no=self._epoch_no,
                    op_id=op_id,
                ),
                size=_HEADER_BYTES,
                trace=trace,
            )
            yield any_of(
                self.sim,
                [gather.future, self.sim.sleep(self._config.fallback_timeout)],
            )
            if not gather.future.done:
                self.lease_read_misses += 1
                self._leases.pop(object_id, None)
                return None
            outcome = gather.future.value
            if outcome[0] == "nack":
                self.lease_read_misses += 1
                self._leases.pop(object_id, None)
                self._adopt_from_nack(outcome[1])
                return None
            if outcome[0] == "lease-nack":
                self.lease_read_misses += 1
                self._leases.pop(object_id, None)
                return None
            reply: LeaseReadReply = outcome[1][0]
            self.lease_read_hits += 1
            # Sliding renewal: the served read refreshed the grant.
            held = self._leases.get(object_id)
            if held is not None and reply.expiry > held.expiry:
                held.expiry = reply.expiry
            return reply
        finally:
            del self._gathers[op_id]

    def _maybe_request_lease(self, object_id: ObjectId) -> None:
        """Fire-and-forget lease acquisition after a quorum read.

        Requesting *after* a successful quorum read (rather than on the
        fast-path miss) keeps acquisition off the latency path and
        naturally targets the read-heavy objects leases pay off for.
        A per-object dedup window bounds request traffic while a grant
        or nack is in flight.
        """
        if not (self._lease_feature_on() and self._lease_reads_enabled):
            return
        if object_id in self._leases:
            return
        now = self.sim.now
        pending = self._lease_pending.get(object_id)
        if pending is not None and now < pending:
            return
        self._lease_pending[object_id] = now + self._config.fallback_timeout
        self.lease_requests_sent += 1
        self.send(
            self._primary(object_id),
            LeaseRequest(
                object_id=object_id,
                epoch_no=self._epoch_no,
                duration=self._config.lease_duration,
                op_id=next(self._op_seq),
            ),
            size=_HEADER_BYTES,
        )

    def _on_lease_grant(self, envelope: Envelope) -> None:
        grant: LeaseGrant = envelope.payload
        self._lease_pending.pop(grant.object_id, None)
        if grant.epoch_no != self._epoch_no:
            # Granted under an epoch we have already left (or not yet
            # reached): unusable either way — the primary will fence it.
            return
        held = self._leases.get(grant.object_id)
        if held is None:
            self._leases[grant.object_id] = _HeldLease(
                grant.expiry, grant.epoch_no
            )
            self.leases_acquired += 1
        elif grant.expiry > held.expiry:
            held.expiry = grant.expiry
            held.epoch_no = grant.epoch_no

    def _on_lease_nack(self, envelope: Envelope) -> None:
        nack: LeaseNack = envelope.payload
        gather = self._gathers.get(nack.op_id)
        if gather is not None:
            # Rejected lease *read*: resolve the fast-path future with a
            # distinct outcome — unlike an EpochNack this carries no
            # plan, so a quarantined primary cannot drag us onto stale
            # epoch state.
            if not gather.future.done:
                gather.future.resolve(("lease-nack", nack))
            return
        # Rejected lease *request* (fire-and-forget): clear the dedup
        # window and any lease we optimistically still hold.
        self._lease_pending.pop(nack.object_id, None)
        self._leases.pop(nack.object_id, None)

    def _drop_all_leases(self) -> None:
        self._leases.clear()
        self._lease_pending.clear()

    # -- quorum gathering --------------------------------------------------------

    def _gather_reads(
        self,
        object_id: ObjectId,
        quorum: int,
        rotation_offset: int = 0,
        parent: Optional[Span] = None,
        phase: Optional[str] = None,
    ) -> Iterator:
        def make_request(op_id: int) -> Tuple[Any, int]:
            return (
                ReplicaRead(
                    object_id=object_id,
                    epoch_no=self._epoch_no,
                    op_id=op_id,
                ),
                _HEADER_BYTES,
            )

        outcome = yield from self._gather(
            object_id, quorum, make_request, rotation_offset,
            parent=parent, phase=phase,
        )
        return outcome

    def _gather_writes(
        self,
        object_id: ObjectId,
        value: bytes,
        size: int,
        stamp: VersionStamp,
        quorum: int,
        rotation_offset: int = 0,
        parent: Optional[Span] = None,
        phase: Optional[str] = None,
    ) -> Iterator:
        def make_request(op_id: int) -> Tuple[Any, int]:
            return (
                ReplicaWrite(
                    object_id=object_id,
                    value=value,
                    size=size,
                    stamp=stamp,
                    epoch_no=self._epoch_no,
                    cfg_no=self._cfg_no,
                    op_id=op_id,
                ),
                _HEADER_BYTES + size,
            )

        # Invariant I7: with leases enabled the object's primary must
        # ack every write, so its copy is always at least as fresh as
        # any completed write and it can break foreign leases on every
        # one.  The flag is static cluster config, never the runtime
        # read toggle — a fleet with mixed write rules would be unsound.
        required = (
            self._primary(object_id) if self._lease_feature_on() else None
        )
        outcome = yield from self._gather(
            object_id, quorum, make_request, rotation_offset,
            parent=parent, phase=phase, required=required,
        )
        return outcome

    def _gather(
        self,
        object_id: ObjectId,
        quorum: int,
        make_request: Callable[[int], Tuple[Any, int]],
        rotation_offset: int = 0,
        parent: Optional[Span] = None,
        phase: Optional[str] = None,
        required: Optional[NodeId] = None,
    ) -> Iterator:
        """Contact ``quorum`` replicas; fall back to the rest on timeout.

        Resolves with ``("ok", replies)`` once ``quorum`` replies arrive,
        ``("nack", nack)`` as soon as any replica rejects our epoch, or
        ``("timeout", None)`` if ``gather_deadline`` elapses first — the
        bound that keeps the proxy from hanging on lost messages or
        crashed replicas.  The fallback to the remaining replicas after
        ``fallback_timeout`` is the rarely-exercised failure path of
        Section 2.1; ``rotation_offset`` shifts the preferred replica
        order so a retry lands on different nodes.
        """
        order = self._ring.preferred_order(
            object_id, self._rotation + rotation_offset
        )
        if required is not None and required in order:
            # The mandatory replica is contacted first in every attempt
            # so steady-state gathers never wait on the fallback round.
            order = [required] + [r for r in order if r != required]
        quorum = min(quorum, len(order))
        op_id = next(self._op_seq)
        gather = _Gather(
            needed=quorum,
            future=self.sim.future(name=f"gather-{op_id}"),
            required=required,
        )
        self._gathers[op_id] = gather
        obs = self._obs
        span: Optional[Span] = None
        trace: Optional[Tuple[int, int]] = None
        started_at = self.sim.now
        if obs is not None:
            span = obs.tracer.start_span(
                "proxy.gather",
                category="proxy",
                node=str(self.node_id),
                parent=parent.context() if parent is not None else None,
                object=object_id,
                op_id=op_id,
                quorum=quorum,
                phase=phase or "",
                rotation=rotation_offset,
            )
            trace = span.context()
        try:
            # Marshalling cost on the proxy CPU, proportional to fan-out.
            yield self._cpu.use(self._config.per_replica_cpu * quorum)
            # The deadline clock starts once the requests hit the wire.
            deadline = self.sim.sleep(self._config.gather_deadline)
            payload, size = make_request(op_id)
            for replica in order[:quorum]:
                self.send(replica, payload, size=size, trace=trace)
            yield any_of(
                self.sim,
                [gather.future, self.sim.sleep(self._config.fallback_timeout)],
            )
            if not gather.future.done and len(order) > quorum:
                for replica in order[quorum:]:
                    self.send(replica, payload, size=size, trace=trace)
            yield any_of(self.sim, [gather.future, deadline])
            if not gather.future.done:
                if span is not None:
                    span.finish(status="timeout")
                return ("timeout", None)
            outcome = gather.future.value
            if obs is not None:
                assert span is not None
                span.finish(status=outcome[0])
                if outcome[0] == "ok":
                    elapsed = self.sim.now - started_at
                    if phase == "p1":
                        obs.gather_p1.observe(elapsed)
                    elif phase == "p2":
                        obs.gather_p2.observe(elapsed)
            return outcome
        finally:
            del self._gathers[op_id]

    def _on_replica_reply(self, envelope: Envelope) -> None:
        reply = envelope.payload
        gather = self._gathers.get(reply.op_id)
        if gather is not None:
            gather.add_reply(reply)

    def _on_epoch_nack(self, envelope: Envelope) -> None:
        nack: EpochNack = envelope.payload
        gather = self._gathers.get(nack.op_id)
        if gather is not None:
            gather.add_nack(nack)

    def _adopt_from_nack(self, nack: EpochNack) -> None:
        """Lines 5-8 of Alg. 4 / 8-11 of Alg. 5: learn the newer epoch."""
        self.operation_retries += 1
        if nack.epoch_no > self._epoch_no:
            self._epoch_no = nack.epoch_no
            self._cfg_no = nack.cfg_no
            self._confirmed_cfg_no = max(self._confirmed_cfg_no, nack.cfg_no)
            self._current_plan = nack.plan
            self._transition_plan = None
            self._history.record(nack.cfg_no, nack.plan)
            # Invariant I7: epoch change fences every lease — storage
            # nodes cleared their grant tables on NEWEP adoption.
            self._drop_all_leases()
            self._sync_optimized()

    @staticmethod
    def _freshest(replies: list[ReplicaReadReply]) -> Version:
        """Select the value with the freshest timestamp (Alg. 4 line 9)."""
        return max((reply.version for reply in replies), key=lambda v: v.stamp)

    # -- Algorithm 3: reconfiguration ------------------------------------------------

    def _on_new_quorum(self, envelope: Envelope) -> Iterator:
        message: NewQuorum = envelope.payload
        if self._epoch_no > message.epoch_no:
            return
        if message.cfg_no <= self._confirmed_cfg_no:
            # Retransmitted NEWQ for a configuration we already confirmed
            # (our earlier ack was lost): re-ack without re-entering the
            # transition, which would wedge the proxy in it forever.
            self.send(
                envelope.sender,
                AckNewQuorum(epoch_no=message.epoch_no, proxy=self.node_id),
                size=_HEADER_BYTES,
            )
            return
        self._epoch_no = message.epoch_no
        self._cfg_no = message.cfg_no
        self._history.record(message.cfg_no, message.plan)
        # Invariant I7: entering the new epoch fences held leases.
        self._drop_all_leases()
        # New reads/writes are processed using the transition quorum.
        self._transition_plan = self._current_plan.transition_with(
            message.plan
        )
        # Wait until all pending operations issued under the old quorum
        # complete; operations started from now on belong to a fresh
        # counter and need not drain.
        draining = self._inflight
        self._inflight = PendingCounter(self.sim)
        yield draining.wait_drained()
        # Re-check the fence after draining: an EpochNack adoption may
        # have moved us past this NEWQ's epoch, in which case the RM has
        # already started a newer change and this ack is for a superseded
        # phase — drop it rather than vouch for a dead configuration.
        if self._epoch_no > message.epoch_no:
            return
        self.send(
            envelope.sender,
            AckNewQuorum(epoch_no=message.epoch_no, proxy=self.node_id),
            size=_HEADER_BYTES,
        )

    def _on_confirm(self, envelope: Envelope) -> None:
        message: Confirm = envelope.payload
        if self._epoch_no > message.epoch_no:
            return
        if message.cfg_no < self._confirmed_cfg_no:
            # Stale duplicate: ack it, but keep the newer installed plan.
            self.send(
                envelope.sender,
                AckConfirm(epoch_no=message.epoch_no, proxy=self.node_id),
                size=_HEADER_BYTES,
            )
            return
        self._epoch_no = message.epoch_no
        self._confirmed_cfg_no = message.cfg_no
        self._current_plan = message.plan
        self._transition_plan = None
        self._drop_all_leases()
        self._sync_optimized()
        self.send(
            envelope.sender,
            AckConfirm(epoch_no=message.epoch_no, proxy=self.node_id),
            size=_HEADER_BYTES,
        )

    def _on_pause(self, envelope: Envelope) -> Iterator:
        request: PauseProxy = envelope.payload
        self._pause_gate.close()
        yield self._inflight.wait_drained()
        self.send(
            envelope.sender,
            AckPause(token=request.token, proxy=self.node_id),
            size=_HEADER_BYTES,
        )

    def _on_resume(self, envelope: Envelope) -> None:
        del envelope
        self._pause_gate.open()

    def _sync_optimized(self) -> None:
        """Keep the stats recorder's notion of per-object overrides fresh."""
        if self.stats is not None:
            self.stats.set_optimized(frozenset(self._current_plan.overrides))

    # -- Algorithm 1: monitoring hooks ---------------------------------------

    def _on_new_round(self, envelope: Envelope) -> None:
        message: NewRound = envelope.payload
        if self.stats is None:
            return
        if message.round_no <= self._last_round_no:
            # Retransmitted NEWROUND (our ROUNDSTATS was lost): replay
            # the cached report rather than snapshotting a bogus,
            # near-empty round.
            if (
                message.round_no == self._last_round_no
                and self._last_round_stats is not None
            ):
                report = self._last_round_stats
                self.send(
                    envelope.sender,
                    report,
                    size=_HEADER_BYTES
                    + 64 * (len(report.top_k) + len(report.stats_top_k)),
                )
            return
        now = self.sim.now
        duration = max(now - self._round_started_at, 1e-9)
        throughput = self._round_completed / duration
        mean_latency = (
            self._round_latency_sum / self._round_completed
            if self._round_completed
            else 0.0
        )
        top_k, monitored, tail = self.stats.snapshot_round(
            already_optimized=frozenset(self._current_plan.overrides)
        )
        report = RoundStats(
            round_no=message.round_no,
            proxy=self.node_id,
            top_k=top_k,
            stats_top_k=monitored,
            stats_tail=tail,
            throughput=throughput,
            mean_latency=mean_latency,
        )
        self._last_round_no = message.round_no
        self._last_round_stats = report
        self.send(
            envelope.sender,
            report,
            size=_HEADER_BYTES + 64 * (len(top_k) + len(monitored)),
        )
        self._round_started_at = now
        self._round_completed = 0
        self._round_latency_sum = 0.0

    def _on_new_top_k(self, envelope: Envelope) -> None:
        message: NewTopK = envelope.payload
        if self.stats is not None:
            self.stats.set_monitored(message.object_ids)

    def _complete_operation(self, latency: float) -> None:
        self.operations_completed += 1
        self._round_completed += 1
        self._round_latency_sum += latency

    # -- graceful degradation -------------------------------------------------

    def _fail_operation(
        self,
        client: NodeId,
        request_id: int,
        kind: str,
        object_id: ObjectId,
        error: OperationError,
    ) -> None:
        """Tell the client the operation failed, instead of going silent."""
        self.operations_failed += 1
        attempts = getattr(error, "attempts", 0)
        self._record("op-failed", f"{kind} {object_id} attempts={attempts}")
        self.send(
            client,
            ClientOperationFailed(
                object_id=object_id,
                request_id=request_id,
                kind=kind,
                attempts=attempts,
            ),
            size=_HEADER_BYTES,
        )

    def _record(self, label: str, detail: str = "") -> None:
        if self._events is not None:
            self._events.record(
                self.sim.now, "proxy", label, f"{self.node_id}: {detail}"
            )
