"""Vector-clock write ordering (the paper's Dynamo-style alternative).

Section 2.1 notes that the total order over writes "is typically
achieved either using globally synchronized clocks or using a
combination of causal ordering and proxy identifiers (to order
concurrent requests), e.g., based on vector clocks with commutative
merge functions".  The default scheme in this repository is the
synchronized-clock one (:class:`~repro.common.types.VersionStamp`);
this module provides the vector-clock alternative:

* :class:`VectorStamp` — an immutable vector clock tagged with the
  issuing proxy.  Causally related stamps compare by dominance; stamps
  from concurrent writes are ordered deterministically by
  ``(total event count, proxy id, canonical entries)``.  Because causal
  dominance strictly increases the total count, this tie-break is a
  *linear extension* of the causal order — every replica applying
  "keep the larger stamp" converges to the same version, which is the
  commutative merge the paper refers to.
* :class:`VectorVersioning` — the per-proxy stamping policy: each proxy
  keeps the last stamp it observed per object (from its own reads and
  writes) and issues new stamps by merging that context and incrementing
  its own entry.

Semantics note: with synchronized clocks the store's order is
real-time-consistent; with vector clocks, two writes issued through
different proxies with no intervening read are *causally concurrent*
even if they do not overlap in real time, and the proxy-id tie-break may
order them either way.  That is the standard weakening of Dynamo-style
stores, and it is why the default experiments use timestamp ordering.
The guarantees that do hold — per-proxy session ordering, causal
ordering across read-then-write chains, and replica convergence — are
covered by ``tests/sds/test_vector_clocks.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.common.types import VersionStamp


def _is_zero_stamp(other: object) -> bool:
    return isinstance(other, VersionStamp) and other.timestamp == float(
        "-inf"
    )


@dataclass(frozen=True)
class VectorStamp:
    """An immutable vector clock with a deterministic total order."""

    #: Canonical (sorted) tuple of (proxy id, event count) pairs.
    entries: tuple[tuple[str, int], ...]
    #: The proxy that issued the write carrying this stamp.
    proxy: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "entries", tuple(sorted(self.entries))
        )

    # -- causal structure -------------------------------------------------------

    def count_for(self, proxy: str) -> int:
        for name, count in self.entries:
            if name == proxy:
                return count
        return 0

    @property
    def total(self) -> int:
        """Total events observed; strictly grows along causal edges."""
        return sum(count for _name, count in self.entries)

    def dominates(self, other: "VectorStamp") -> bool:
        """True when this stamp causally descends from ``other``."""
        if self.entries == other.entries:
            return False
        for name, count in other.entries:
            if self.count_for(name) < count:
                return False
        return True

    def concurrent_with(self, other: "VectorStamp") -> bool:
        return (
            self.entries != other.entries
            and not self.dominates(other)
            and not other.dominates(self)
        )

    def merge(self, other: "VectorStamp") -> "VectorStamp":
        """Entry-wise maximum (commutative, associative, idempotent)."""
        names = {name for name, _ in self.entries} | {
            name for name, _ in other.entries
        }
        merged = tuple(
            (name, max(self.count_for(name), other.count_for(name)))
            for name in sorted(names)
        )
        return VectorStamp(entries=merged, proxy=self.proxy)

    def increment(self, proxy: str) -> "VectorStamp":
        """A new stamp with ``proxy``'s entry advanced by one."""
        names = {name for name, _ in self.entries} | {proxy}
        entries = tuple(
            (
                name,
                self.count_for(name) + (1 if name == proxy else 0),
            )
            for name in sorted(names)
        )
        return VectorStamp(entries=entries, proxy=proxy)

    # -- total order --------------------------------------------------------------

    def _key(self) -> tuple:
        return (self.total, self.proxy, self.entries)

    def _compare(self, other: object) -> Optional[int]:
        if isinstance(other, VectorStamp):
            if self.entries == other.entries and self.proxy == other.proxy:
                return 0
            return -1 if self._key() < other._key() else 1
        if _is_zero_stamp(other):
            return 1  # every real stamp is newer than "never written"
        return None

    def __lt__(self, other: object) -> bool:
        result = self._compare(other)
        if result is None:
            return NotImplemented
        return result < 0

    def __le__(self, other: object) -> bool:
        result = self._compare(other)
        if result is None:
            return NotImplemented
        return result <= 0

    def __gt__(self, other: object) -> bool:
        result = self._compare(other)
        if result is None:
            return NotImplemented
        return result > 0

    def __ge__(self, other: object) -> bool:
        result = self._compare(other)
        if result is None:
            return NotImplemented
        return result >= 0

    def __str__(self) -> str:
        body = ",".join(f"{name}:{count}" for name, count in self.entries)
        return f"vc[{body}]@{self.proxy}"


#: Either stamping scheme, as stored in :class:`~repro.common.types.Version`.
AnyStamp = Union[VersionStamp, VectorStamp]


class TimestampVersioning:
    """The default scheme: globally synchronized clocks + proxy id."""

    def next_stamp(
        self, proxy: str, object_id: str, now: float
    ) -> VersionStamp:
        return VersionStamp(timestamp=now, proxy=proxy)

    def observe(self, object_id: str, stamp: AnyStamp) -> None:
        """Timestamp ordering needs no causal context."""


class VectorVersioning:
    """Dynamo-style scheme: per-object causal context at each proxy."""

    def __init__(self) -> None:
        self._context: dict[str, VectorStamp] = {}

    def next_stamp(
        self, proxy: str, object_id: str, now: float
    ) -> VectorStamp:
        del now  # vector clocks are oblivious to wall time
        context = self._context.get(object_id)
        if context is None:
            stamp = VectorStamp(entries=(), proxy=proxy).increment(proxy)
        else:
            stamp = context.increment(proxy)
        self._context[object_id] = stamp
        return stamp

    def observe(self, object_id: str, stamp: AnyStamp) -> None:
        """Fold a stamp returned by a read into the causal context."""
        if not isinstance(stamp, VectorStamp):
            return
        context = self._context.get(object_id)
        if context is None:
            self._context[object_id] = stamp
        else:
            self._context[object_id] = context.merge(stamp)

    def context_of(self, object_id: str) -> Optional[VectorStamp]:
        return self._context.get(object_id)


def make_versioning(
    scheme: str,
) -> "Union[TimestampVersioning, VectorVersioning]":
    """Factory used by the cluster builder (``timestamp`` | ``vector``)."""
    if scheme == "timestamp":
        return TimestampVersioning()
    if scheme == "vector":
        return VectorVersioning()
    raise ValueError(f"unknown versioning scheme {scheme!r}")
