"""Wire messages of the Q-OPT protocol stack.

One dataclass per message named in the paper's pseudo-code (Algorithms
1-6), plus the client-facing read/write requests.  Node classes dispatch
on these types; keeping them in one module doubles as the protocol's wire
format documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.common.types import NodeId, ObjectId, QuorumConfig, Version, VersionStamp
from repro.sds.quorum import QuorumPlan

# --------------------------------------------------------------------------
# Client <-> Proxy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ClientRead:
    """Client asks its proxy to read an object."""

    object_id: ObjectId
    request_id: int


@dataclass(frozen=True)
class ClientWrite:
    """Client asks its proxy to write an object."""

    object_id: ObjectId
    value: bytes
    size: int
    request_id: int


@dataclass(frozen=True)
class ClientReadReply:
    """Proxy -> client: the freshest version found by the read quorum."""

    object_id: ObjectId
    version: Version
    request_id: int


@dataclass(frozen=True)
class ClientWriteReply:
    """Proxy -> client: the write reached its write quorum."""

    object_id: ObjectId
    request_id: int


@dataclass(frozen=True)
class ClientOperationFailed:
    """Proxy -> client: the operation could not complete in time.

    Sent when every gather attempt (including ring-rotation retries)
    exhausted its deadline — graceful degradation instead of a silently
    hung request.  ``kind`` is ``"read"`` or ``"write"``.
    """

    object_id: ObjectId
    request_id: int
    kind: str
    attempts: int = 0


# --------------------------------------------------------------------------
# Proxy <-> Storage (Algorithms 4, 5, 6)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicaRead:
    """[Read, oid, curepno] of Algorithm 4."""

    object_id: ObjectId
    epoch_no: int
    op_id: int


@dataclass(frozen=True)
class ReplicaReadReply:
    """[ReadReply, oid, val, ts] with the cfg_no piggybacked (Alg. 6 l.19)."""

    object_id: ObjectId
    version: Version
    op_id: int
    replica: NodeId


@dataclass(frozen=True)
class ReplicaWrite:
    """[Write, oid, val, ts, curepno] of Algorithm 5.

    ``cfg_no`` is the configuration number under which the issuing proxy
    executed the write; the storage node records it in the version
    metadata (Algorithm 6 line 17).  The paper's pseudo-code keeps cfNo
    implicit on the wire; carrying the proxy's number explicitly is the
    conservative reading (it is exactly the configuration whose write
    quorum this write satisfies).
    """

    object_id: ObjectId
    value: bytes
    size: int
    stamp: VersionStamp
    epoch_no: int
    cfg_no: int
    op_id: int


@dataclass(frozen=True)
class ReplicaWriteReply:
    """[WriteReply, oid] of Algorithm 5."""

    object_id: ObjectId
    op_id: int
    replica: NodeId


@dataclass(frozen=True)
class ReplicaSync:
    """Background anti-entropy push between storage nodes.

    Swift's object replicator periodically copies each object to the
    replicas that missed its foreground write quorum; receivers keep the
    version only if it is newer than what they hold.  This traffic is
    invisible to proxies and clients but keeps every replica populated,
    as in the paper's test-bed.
    """

    object_id: ObjectId
    version: Version


@dataclass(frozen=True)
class EpochNack:
    """[NACK, epNo, cfNo, newR, newW] (Algorithm 6 line 13).

    Sent by a storage node that already moved to a later epoch; carries
    that epoch's number and quorum plan so the stale proxy can catch up
    and re-execute (Algorithm 4 lines 5-8, Algorithm 5 lines 8-11).
    """

    epoch_no: int
    cfg_no: int
    plan: QuorumPlan
    op_id: int
    replica: NodeId


# --------------------------------------------------------------------------
# Storage <-> storage: quarantined-rejoin catch-up (invariant I6)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SyncRequest:
    """[SYNCREQ, replica, epNo]: a recovering replica asks for state.

    Sent by a replica that restarted from its WAL and is quarantined
    (read-excluded): it needs the current epoch, configuration and any
    versions its torn WAL tail may have lost.  ``epoch_no`` is the
    sender's recovered epoch, so the peer can see how far behind it is.
    """

    replica: NodeId
    epoch_no: int


@dataclass(frozen=True)
class SyncReply:
    """[SYNCREP, replica, epNo, cfNo, plan, versions]: catch-up state.

    A live peer's full view: its committed epoch/configuration (the
    Section 5.3 fence state) plus every version it stores.  The
    recovering replica merges versions freshest-first and leaves
    quarantine only after replies from a read quorum's worth of peers
    at the newest epoch it has seen (invariant I6).
    """

    replica: NodeId
    epoch_no: int
    cfg_no: int
    plan: QuorumPlan
    versions: Mapping[ObjectId, Version]


# --------------------------------------------------------------------------
# Proxy <-> primary replica: per-object read leases (invariant I7)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LeaseRequest:
    """[LEASEREQ, oid, epNo, dur]: ask the object's primary for a lease.

    Sent fire-and-forget after a successful quorum read.  Only the
    object's *primary* replica — the first entry of the placement ring's
    replica walk, identical at every proxy — may grant; any other
    replica answers with :class:`LeaseNack`.  ``duration`` is the
    requested validity window; the primary clamps it to its own
    ``max_lease_duration``.
    """

    object_id: ObjectId
    epoch_no: int
    duration: float
    op_id: int


@dataclass(frozen=True)
class LeaseGrant:
    """[LEASEGRANT, oid, expiry, epNo]: the primary granted a lease.

    ``expiry`` is on the granting replica's clamped wall clock; the
    proxy subtracts its configured clock-skew bound before trusting it.
    A grant is only usable at the epoch it was minted under — both ends
    drop all lease state on any epoch change (Section 5.3 fencing).
    """

    object_id: ObjectId
    expiry: float
    epoch_no: int
    op_id: int
    replica: NodeId


@dataclass(frozen=True)
class LeaseRead:
    """[LEASEREAD, oid, epNo]: a single-replica read under a held lease.

    The primary validates the caller's grant *authoritatively* against
    its own table (epoch fence, expiry, not broken by a foreign write)
    before serving — the proxy-side expiry check is only an advisory
    optimization, so clock skew can cost a round trip but never serve a
    stale value.
    """

    object_id: ObjectId
    epoch_no: int
    op_id: int


@dataclass(frozen=True)
class LeaseReadReply:
    """[LEASEREADREPLY, oid, val, ts, expiry]: the primary's current
    version, plus the slid (renewed) lease expiry."""

    object_id: ObjectId
    version: Version
    expiry: float
    op_id: int
    replica: NodeId


@dataclass(frozen=True)
class LeaseNack:
    """[LEASENACK, oid, epNo]: no valid lease — fall back to quorum.

    Sent when the grant is absent, expired, broken by a write, when the
    replica is not the object's primary, or while it is quarantined
    (invariant I6).  Unlike :class:`EpochNack` it carries no quorum
    plan: the proxy just drops its lease and re-executes on the quorum
    path, so a quarantined primary cannot send it into a stale-epoch
    adopt/retry spin.
    """

    object_id: ObjectId
    op_id: int
    epoch_no: int
    replica: NodeId


# --------------------------------------------------------------------------
# Reconfiguration Manager <-> Proxy (Algorithms 2, 3)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NewQuorum:
    """[NEWQ, epNo, cfNo, newR, newW]: phase 1 of the reconfiguration."""

    epoch_no: int
    cfg_no: int
    plan: QuorumPlan


@dataclass(frozen=True)
class AckNewQuorum:
    """[ACKNEWQ, epNo]: proxy switched to the transition quorum and its
    pending old-quorum operations drained."""

    epoch_no: int
    proxy: NodeId


@dataclass(frozen=True)
class Confirm:
    """[CONFIRM, epNo, newR, newW]: phase 2 — switch to the new quorum."""

    epoch_no: int
    cfg_no: int
    plan: QuorumPlan


@dataclass(frozen=True)
class AckConfirm:
    """[ACKCONFIRM, epNo]."""

    epoch_no: int
    proxy: NodeId


@dataclass(frozen=True)
class PauseProxy:
    """Ablation A3 only: stop-the-world baseline reconfiguration.

    Q-OPT's protocol is non-blocking; the naive alternative pauses all
    client processing while the configuration switches.  These messages
    exist solely so the E6 benchmark can quantify what the two-phase
    protocol buys.
    """

    token: int


@dataclass(frozen=True)
class AckPause:
    """Proxy paused and drained its in-flight operations."""

    token: int
    proxy: NodeId


@dataclass(frozen=True)
class ResumeProxy:
    """Resume client processing after a stop-the-world switch."""

    token: int


# --------------------------------------------------------------------------
# Reconfiguration Manager <-> Storage (Algorithms 2, 6)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NewEpoch:
    """[NEWEP, epNo, cfNo, newR, newW]: fence off stale proxies."""

    epoch_no: int
    cfg_no: int
    plan: QuorumPlan


@dataclass(frozen=True)
class AckNewEpoch:
    """[ACKNEWEP, epNo]."""

    epoch_no: int
    replica: NodeId


# --------------------------------------------------------------------------
# Autonomic Manager <-> Proxy (Algorithm 1)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NewRound:
    """[NEWROUND, r]: start monitoring round ``r``."""

    round_no: int


@dataclass(frozen=True)
class ObjectStats:
    """Per-object workload profile shipped from proxies to the manager."""

    object_id: ObjectId
    reads: int
    writes: int
    mean_size: float

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def write_ratio(self) -> float:
        total = self.accesses
        return self.writes / total if total else 0.0


@dataclass(frozen=True)
class AggregateStats:
    """Aggregate profile of the tail of the access distribution."""

    reads: int
    writes: int
    mean_size: float

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def write_ratio(self) -> float:
        total = self.accesses
        return self.writes / total if total else 0.0


@dataclass(frozen=True)
class RoundStats:
    """[ROUNDSTATS, r, topK, statsTopK, statsTail, th] (Alg. 1 line 7)."""

    round_no: int
    proxy: NodeId
    #: Hotspot candidates for the *next* round (object id -> est. count).
    top_k: Mapping[ObjectId, int]
    #: Profiles of the objects monitored during the round that just ended.
    stats_top_k: tuple[ObjectStats, ...]
    #: Aggregate profile of everything not individually monitored.
    stats_tail: AggregateStats
    #: Proxy throughput (ops/s) over the round that just ended.
    throughput: float
    #: Mean client-operation latency (seconds) over the round.
    mean_latency: float = 0.0


@dataclass(frozen=True)
class NewTopK:
    """[NEWTOPK, r, topK]: objects each proxy must monitor next round."""

    round_no: int
    object_ids: frozenset[ObjectId]


# --------------------------------------------------------------------------
# Autonomic Manager <-> Oracle (Algorithm 1 lines 10-11, 20-21)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NewStats:
    """[NEWSTATS, r, statsTopK]: ask for per-object quorum predictions."""

    round_no: int
    stats: tuple[ObjectStats, ...]


@dataclass(frozen=True)
class NewQuorums:
    """[NEWQUORUMS, r, quorumsTopK]: predicted per-object quorums."""

    round_no: int
    quorums: Mapping[ObjectId, QuorumConfig]


@dataclass(frozen=True)
class TailStats:
    """[TAILSTATS, statsTail]: ask for the tail's bulk quorum."""

    stats: AggregateStats


@dataclass(frozen=True)
class TailQuorum:
    """[TAILQUORUM, quorumTail]."""

    quorum: QuorumConfig


# --------------------------------------------------------------------------
# Autonomic Manager <-> Reconfiguration Manager (Algorithm 1 lines 12, 22)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FineRec:
    """[FINEREC, r, topK, quorumsTopK]: install per-object overrides."""

    round_no: int
    quorums: Mapping[ObjectId, QuorumConfig]


@dataclass(frozen=True)
class CoarseRec:
    """[COARSEREC, quorumTail]: install a new tail default."""

    quorum: QuorumConfig


@dataclass(frozen=True)
class AckRec:
    """[ACKREC, r]: the reconfiguration concluded."""

    round_no: int
