"""Quorum plans: global and per-object quorum assignments.

Q-OPT assigns *different quorum systems to different items* (Section 5.4):
the hot objects found by top-k analysis get individual (R, W) pairs while
the tail of the access distribution shares a single default.  A
:class:`QuorumPlan` captures one installed assignment — a default
configuration plus per-object overrides — and is the unit the
Reconfiguration Manager installs under a configuration number ``cfg_no``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.common.types import ObjectId, QuorumConfig


@dataclass(frozen=True)
class QuorumPlan:
    """An immutable quorum assignment: default + per-object overrides."""

    default: QuorumConfig
    overrides: Mapping[ObjectId, QuorumConfig] = field(default_factory=dict)

    def quorum_for(self, object_id: ObjectId) -> QuorumConfig:
        """The (R, W) pair governing accesses to ``object_id``."""
        return self.overrides.get(object_id, self.default)

    def validate_strict(self, replication_degree: int) -> "QuorumPlan":
        self.default.validate_strict(replication_degree)
        for object_id, quorum in self.overrides.items():
            try:
                quorum.validate_strict(replication_degree)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"override for {object_id!r}: {exc}"
                ) from exc
        return self

    def with_overrides(
        self, updates: Mapping[ObjectId, QuorumConfig]
    ) -> "QuorumPlan":
        """New plan with additional/replaced per-object overrides."""
        merged = dict(self.overrides)
        merged.update(updates)
        return QuorumPlan(default=self.default, overrides=merged)

    def with_default(self, default: QuorumConfig) -> "QuorumPlan":
        """New plan with a different tail (default) configuration."""
        return QuorumPlan(default=default, overrides=dict(self.overrides))

    @property
    def max_read(self) -> int:
        """Largest read quorum anywhere in the plan."""
        return max(
            [self.default.read] + [q.read for q in self.overrides.values()]
        )

    @property
    def max_write(self) -> int:
        """Largest write quorum anywhere in the plan."""
        return max(
            [self.default.write] + [q.write for q in self.overrides.values()]
        )

    def transition_with(self, other: "QuorumPlan") -> "QuorumPlan":
        """Element-wise transition plan between two plans.

        Per object, the transition quorum is the pairwise max of the old
        and new (R, W) — the per-object generalization of Algorithm 3
        line 13, guaranteeing intersection with both plans for every
        object.
        """
        default = self.default.transition_with(other.default)
        overrides: dict[ObjectId, QuorumConfig] = {}
        for object_id in sorted(set(self.overrides) | set(other.overrides)):
            overrides[object_id] = self.quorum_for(object_id).transition_with(
                other.quorum_for(object_id)
            )
        return QuorumPlan(default=default, overrides=overrides)

    @staticmethod
    def uniform(quorum: QuorumConfig) -> "QuorumPlan":
        """A plan assigning the same configuration to every object."""
        return QuorumPlan(default=quorum, overrides={})


@dataclass(frozen=True)
class InstalledConfiguration:
    """A quorum plan together with the configuration number it got.

    Proxies keep the history of installed configurations (the paper's set
    ``Q``) to compute the read quorum needed when a read returns a version
    written under an older configuration (Algorithm 4, lines 10-17).
    """

    cfg_no: int
    plan: QuorumPlan


class ConfigurationHistory:
    """The proxy-side set ``Q`` of installed configurations.

    Supports the single query Algorithm 4 needs: the largest read quorum
    that governed ``object_id`` in any configuration between ``since``
    and ``until`` (inclusive).  History can be pruned once a maximal read
    quorum is installed (paper, footnote 2); we keep it simple and retain
    everything, which is cheap at simulation scale.
    """

    def __init__(self) -> None:
        self._installed: list[InstalledConfiguration] = []

    def __len__(self) -> int:
        return len(self._installed)

    def record(self, cfg_no: int, plan: QuorumPlan) -> None:
        if self._installed and cfg_no <= self._installed[-1].cfg_no:
            # Re-delivery of an already-known configuration (e.g. via a
            # NACK that raced a CONFIRM) is harmless; ignore it.
            return
        self._installed.append(InstalledConfiguration(cfg_no, plan))

    def latest(self) -> Optional[InstalledConfiguration]:
        return self._installed[-1] if self._installed else None

    def max_read_quorum(
        self, object_id: ObjectId, since: int, until: int
    ) -> int:
        """Largest read quorum for the object over cfg_no in [since, until].

        Returns 0 when no recorded configuration falls in the range, which
        callers treat as "no repair needed" (the version was written under
        the initial configuration).
        """
        best = 0
        for installed in self._installed:
            if since <= installed.cfg_no <= until:
                best = max(best, installed.plan.quorum_for(object_id).read)
        return best
