"""Closed-loop workload clients.

The paper's load generators are closed: each client thread "injects a new
operation only after having received a reply for the previously submitted
operation" with zero think time (Section 2.2).  One :class:`ClientNode`
models one such thread, statically bound to a proxy.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Protocol

from repro.common.types import NodeId, OpType, VersionStamp, ZERO_STAMP
from repro.metrics.collector import OperationLog
from repro.sds.messages import (
    ClientRead,
    ClientReadReply,
    ClientWrite,
    ClientWriteReply,
)
from repro.sim.kernel import Future, Simulator
from repro.sim.network import Envelope, Network
from repro.sim.node import Node

#: Wire overhead of a request/reply beyond the object payload, bytes.
_HEADER_BYTES = 256


class OperationSource(Protocol):
    """What a client needs from a workload: a stream of operations."""

    def next_operation(self, rng: random.Random) -> "OperationSpec":
        """Produce the next operation to inject."""
        ...  # pragma: no cover - protocol definition


class OperationSpec(Protocol):
    """Duck type of one generated operation."""

    object_id: str
    op_type: OpType
    size: int
    value: bytes


@dataclass(frozen=True)
class OperationRecord:
    """Client-observed history of one operation.

    Consistency checkers consume these records: the invocation/response
    interval, the value written (writes) or the value and stamp returned
    (reads).  Values are globally unique per write, so a record history
    fully determines the register semantics the cluster exhibited.
    """

    client: NodeId
    object_id: str
    op_type: OpType
    invoked_at: float
    completed_at: float
    value: Optional[bytes]
    stamp: VersionStamp = ZERO_STAMP


class ClientNode(Node):
    """One closed-loop client thread bound to a proxy."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: NodeId,
        proxy_id: NodeId,
        workload: OperationSource,
        rng: random.Random,
        log: OperationLog,
        think_time: float = 0.0,
        recorder: Optional[Callable[[OperationRecord], None]] = None,
    ) -> None:
        super().__init__(sim, network, node_id)
        self._proxy_id = proxy_id
        self._workload = workload
        self._rng = rng
        self._log = log
        self._think_time = think_time
        self._recorder = recorder
        self._request_seq = itertools.count(1)
        self._pending: dict[int, Future] = {}
        self._issue_loop_started = False
        self.operations_issued = 0

        self.register_handler(ClientReadReply, self._on_reply)
        self.register_handler(ClientWriteReply, self._on_reply)

    @property
    def proxy_id(self) -> NodeId:
        return self._proxy_id

    def start(self) -> None:
        super().start()
        if not self._issue_loop_started:
            self._issue_loop_started = True
            self.spawn(self._issue_loop(), name=f"{self.node_id}.loop")

    def _issue_loop(self) -> Iterator:
        while self.alive:
            operation = self._workload.next_operation(self._rng)
            started_at = self.sim.now
            if (
                self._recorder is not None
                and operation.op_type is OpType.WRITE
            ):
                # Record the invocation immediately: a consistency checker
                # must know about writes that are still in flight when the
                # simulation ends (their values may be visible to reads).
                self._recorder(
                    OperationRecord(
                        client=self.node_id,
                        object_id=operation.object_id,
                        op_type=OpType.WRITE,
                        invoked_at=started_at,
                        completed_at=float("inf"),
                        value=operation.value,
                    )
                )
            reply = yield self._issue(operation)
            self._log.record(
                completed_at=self.sim.now,
                latency=self.sim.now - started_at,
                op_type=operation.op_type,
            )
            if self._recorder is not None:
                if operation.op_type is OpType.WRITE:
                    record = OperationRecord(
                        client=self.node_id,
                        object_id=operation.object_id,
                        op_type=operation.op_type,
                        invoked_at=started_at,
                        completed_at=self.sim.now,
                        value=operation.value,
                    )
                else:
                    version = reply.version
                    record = OperationRecord(
                        client=self.node_id,
                        object_id=operation.object_id,
                        op_type=operation.op_type,
                        invoked_at=started_at,
                        completed_at=self.sim.now,
                        value=version.value,
                        stamp=version.stamp,
                    )
                self._recorder(record)
            if self._think_time > 0:
                yield self.sim.sleep(self._think_time)

    def _issue(self, operation: OperationSpec) -> Future:
        request_id = next(self._request_seq)
        reply_future = self.sim.future(name=f"{self.node_id}.req{request_id}")
        self._pending[request_id] = reply_future
        self.operations_issued += 1
        if operation.op_type is OpType.WRITE:
            self.send(
                self._proxy_id,
                ClientWrite(
                    object_id=operation.object_id,
                    value=operation.value,
                    size=operation.size,
                    request_id=request_id,
                ),
                size=_HEADER_BYTES + operation.size,
            )
        else:
            self.send(
                self._proxy_id,
                ClientRead(
                    object_id=operation.object_id, request_id=request_id
                ),
                size=_HEADER_BYTES,
            )
        return reply_future

    def _on_reply(self, envelope: Envelope) -> None:
        reply = envelope.payload
        future = self._pending.pop(reply.request_id, None)
        if future is not None and not future.done:
            future.resolve(reply)
