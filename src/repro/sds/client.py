"""Closed-loop workload clients.

The paper's load generators are closed: each client thread "injects a new
operation only after having received a reply for the previously submitted
operation" with zero think time (Section 2.2).  One :class:`ClientNode`
models one such thread, statically bound to a proxy.

Under fault injection a reply may never come — the proxy crashed, the
request or reply was lost, or the proxy itself gave up and answered
:class:`~repro.sds.messages.ClientOperationFailed`.  Each operation
therefore runs under a per-attempt deadline with bounded exponential
backoff (seeded jitter) between attempts, and after
``ClientConfig.max_attempts`` the operation surfaces a typed
:class:`~repro.common.errors.RetriesExhaustedError` instead of hanging
the closed loop forever.  Failed writes deliberately keep their
``completed_at = inf`` invocation record: the write may still take
effect later, and a linearizability checker must treat it as forever
concurrent.

**Pipelining** (``pipeline_depth``): one client may run several
issue-loop *slots*, each a closed loop of its own, so up to ``depth``
logical operations are in flight concurrently — the classic lever when
per-op latency, not server capacity, bounds a closed-loop benchmark.
Every logical operation still owns a unique ``request_id`` that all its
retries reuse, so the proxy's write-stamp replay works per operation and
pipelined histories stay linearizable.  With ``injection_rate > 0`` the
slots switch from closed-loop to *open-loop* pacing: injections are
scheduled on a fixed grid of ``rate`` ops/sec per client (staggered
across slots) regardless of completions, with concurrency still bounded
by ``depth`` — when every slot is busy the generator degrades to
closed-loop instead of queueing unboundedly.  ``pipeline_depth=1`` with
``injection_rate=0`` is byte-identical to the historical single-loop
client (same spawn names, same RNG draws), which the sim determinism
suite pins.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Protocol, Tuple

from repro.common.config import ClientConfig
from repro.common.errors import OperationError, RetriesExhaustedError
from repro.common.types import NodeId, OpType, VersionStamp, ZERO_STAMP
from repro.metrics.collector import OperationLog
from repro.metrics.timeline import EventTimeline
from repro.obs.context import Observability
from repro.obs.trace import Span
from repro.sds.messages import (
    ClientOperationFailed,
    ClientRead,
    ClientReadReply,
    ClientWrite,
    ClientWriteReply,
)
from repro.net.transport import Transport
from repro.sim.kernel import Future, Simulator
from repro.sim.network import Envelope
from repro.sim.node import Node
from repro.sim.primitives import any_of

#: Wire overhead of a request/reply beyond the object payload, bytes.
_HEADER_BYTES = 256


class OperationSource(Protocol):
    """What a client needs from a workload: a stream of operations."""

    def next_operation(self, rng: random.Random) -> "OperationSpec":
        """Produce the next operation to inject."""
        ...  # pragma: no cover - protocol definition


class OperationSpec(Protocol):
    """Duck type of one generated operation."""

    object_id: str
    op_type: OpType
    size: int
    value: bytes


class ProxySelector(Protocol):
    """The client's routing seam: which proxy serves this object?

    A sharded fleet plugs a :class:`~repro.shard.router.ShardRouter` in
    here; the default (no router) keeps the historical static binding to
    one proxy.
    """

    def route(self, object_id: str) -> NodeId:
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class OperationRecord:
    """Client-observed history of one operation.

    Consistency checkers consume these records: the invocation/response
    interval, the value written (writes) or the value and stamp returned
    (reads).  Values are globally unique per write, so a record history
    fully determines the register semantics the cluster exhibited.
    """

    client: NodeId
    object_id: str
    op_type: OpType
    invoked_at: float
    completed_at: float
    value: Optional[bytes]
    stamp: VersionStamp = ZERO_STAMP


class ClientNode(Node):
    """One closed-loop client thread bound to a proxy."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        node_id: NodeId,
        proxy_id: NodeId,
        workload: OperationSource,
        rng: random.Random,
        log: OperationLog,
        think_time: float = 0.0,
        recorder: Optional[Callable[[OperationRecord], None]] = None,
        policy: Optional[ClientConfig] = None,
        events: Optional[EventTimeline] = None,
        obs: Optional[Observability] = None,
        pipeline_depth: int = 1,
        injection_rate: float = 0.0,
        router: Optional[ProxySelector] = None,
    ) -> None:
        # Validate before registering the node: a half-constructed
        # client must not claim its id on the network.
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if injection_rate < 0:
            raise ValueError("injection_rate must be >= 0")
        super().__init__(sim, network, node_id)
        self._proxy_id = proxy_id
        self._router = router
        self._workload = workload
        self._rng = rng
        self._log = log
        self._think_time = think_time
        self._recorder = recorder
        self._policy = (policy or ClientConfig()).validate()
        self._events = events
        self._obs = obs
        self._pipeline_depth = pipeline_depth
        self._injection_rate = injection_rate
        self._request_seq = itertools.count(1)
        self._pending: dict[int, Future] = {}
        self._issue_loop_started = False
        self._draining = False
        self.operations_issued = 0
        self.operation_retries = 0
        self.attempt_timeouts = 0
        self.operations_failed = 0
        #: Invocation time per busy pipeline slot; chaos tests assert (via
        #: :attr:`inflight_since`) that no client sits on an operation
        #: longer than ``policy.deadline_bound()``.
        self._inflight_invocations: dict[int, float] = {}

        self.register_handler(ClientReadReply, self._on_reply)
        self.register_handler(ClientWriteReply, self._on_reply)
        self.register_handler(ClientOperationFailed, self._on_reply)

    @property
    def proxy_id(self) -> NodeId:
        return self._proxy_id

    @property
    def pipeline_depth(self) -> int:
        return self._pipeline_depth

    @property
    def inflight_since(self) -> Optional[float]:
        """Invocation time of the oldest operation currently in flight."""
        if not self._inflight_invocations:
            return None
        return min(self._inflight_invocations.values())

    @property
    def inflight_operations(self) -> int:
        """Number of logical operations currently in flight."""
        return len(self._inflight_invocations)

    def stop_issuing(self) -> None:
        """Stop starting new logical operations; in-flight ones finish.

        A graceful alternative to :meth:`crash` for ending a load phase:
        every operation runs to completion (or exhausts its bounded
        retries), so the recorded history carries no forever-concurrent
        invocation records beyond genuine failures.
        """
        self._draining = True

    def start(self) -> None:
        super().start()
        if not self._issue_loop_started:
            self._issue_loop_started = True
            # Slot 0 keeps the historical spawn name so depth-1 runs stay
            # byte-identical to the pre-pipelining client (determinism
            # suite pins this).
            self.spawn(self._issue_loop(0), name=f"{self.node_id}.loop")
            for slot in range(1, self._pipeline_depth):
                self.spawn(
                    self._issue_loop(slot),
                    name=f"{self.node_id}.loop{slot}",
                )

    def _issue_loop(self, slot: int) -> Iterator:
        obs = self._obs
        # Open-loop pacing state: injections for this slot land on a grid
        # of one per ``depth / rate`` seconds, slots staggered evenly.
        interval = 0.0
        next_at = 0.0
        if self._injection_rate > 0:
            interval = self._pipeline_depth / self._injection_rate
            next_at = self.sim.now + slot / self._injection_rate
        while self.alive:
            if self._draining:
                return
            if interval > 0:
                delay = next_at - self.sim.now
                if delay > 0:
                    yield self.sim.sleep(delay)
                # Schedule the following injection; if this slot fell
                # behind the grid (op slower than the interval), degrade
                # to closed-loop rather than queueing a backlog.
                next_at = max(next_at + interval, self.sim.now)
            operation = self._workload.next_operation(self._rng)
            started_at = self.sim.now
            self._inflight_invocations[slot] = started_at
            span: Optional[Span] = None
            if obs is not None:
                name = (
                    "client.write"
                    if operation.op_type is OpType.WRITE
                    else "client.read"
                )
                span = obs.tracer.start_span(
                    name,
                    category="client",
                    node=str(self.node_id),
                    object=operation.object_id,
                )
            if (
                self._recorder is not None
                and operation.op_type is OpType.WRITE
            ):
                # Record the invocation immediately: a consistency checker
                # must know about writes that are still in flight when the
                # simulation ends (their values may be visible to reads).
                self._recorder(
                    OperationRecord(
                        client=self.node_id,
                        object_id=operation.object_id,
                        op_type=OpType.WRITE,
                        invoked_at=started_at,
                        completed_at=float("inf"),
                        value=operation.value,
                    )
                )
            try:
                reply = yield from self._perform(
                    operation, started_at, span=span
                )
            except OperationError:
                # Graceful degradation: drop the operation and move on.
                # A failed write keeps only its inf-completion invocation
                # record — it may still take effect, so the checker must
                # treat it as forever concurrent.  A failed read records
                # nothing.
                self.operations_failed += 1
                if obs is not None:
                    obs.client_failures.inc()
                    assert span is not None
                    span.finish(status="failed")
                self._record(
                    "op-failed",
                    f"{operation.op_type.name.lower()} {operation.object_id}",
                )
                self._inflight_invocations.pop(slot, None)
                if self._think_time > 0:
                    yield self.sim.sleep(self._think_time)
                continue
            self._inflight_invocations.pop(slot, None)
            latency = self.sim.now - started_at
            if obs is not None:
                assert span is not None
                span.finish(status="ok")
                if operation.op_type is OpType.WRITE:
                    obs.client_write.observe(latency)
                else:
                    obs.client_read.observe(latency)
            self._log.record(
                completed_at=self.sim.now,
                latency=latency,
                op_type=operation.op_type,
            )
            if self._recorder is not None:
                if operation.op_type is OpType.WRITE:
                    record = OperationRecord(
                        client=self.node_id,
                        object_id=operation.object_id,
                        op_type=operation.op_type,
                        invoked_at=started_at,
                        completed_at=self.sim.now,
                        value=operation.value,
                    )
                else:
                    version = reply.version
                    record = OperationRecord(
                        client=self.node_id,
                        object_id=operation.object_id,
                        op_type=operation.op_type,
                        invoked_at=started_at,
                        completed_at=self.sim.now,
                        value=version.value,
                        stamp=version.stamp,
                    )
                self._recorder(record)
            if self._think_time > 0:
                yield self.sim.sleep(self._think_time)

    def _perform(
        self,
        operation: OperationSpec,
        started_at: float,
        span: Optional[Span] = None,
    ) -> Iterator:
        """One logical operation: bounded attempts under deadlines.

        Each attempt waits at most ``attempt_timeout``; between attempts
        the client backs off exponentially with seeded jitter (the jitter
        draw happens only on the retry path, so fault-free runs consume
        the RNG identically with or without this machinery).  Exhausting
        ``max_attempts`` raises :class:`RetriesExhaustedError`.

        Every attempt reuses the SAME request id: it names the logical
        operation, not the transmission, so the proxy can recognise a
        write resubmission and reuse the stamp it minted for the first
        attempt.  A retried write carrying a fresh stamp would reorder
        its (old) value above writes that completed in between — the
        exact linearizability violation the chaos storms caught.
        """
        policy = self._policy
        obs = self._obs
        request_id = next(self._request_seq)
        # Route once per LOGICAL operation, not per attempt: every retry
        # must reach the same proxy so its write-stamp replay recognises
        # the resubmission (a different proxy would mint a fresh stamp
        # and reorder the old value above intervening writes).
        target = (
            self._proxy_id
            if self._router is None
            else self._router.route(str(operation.object_id))
        )
        for attempt in range(policy.max_attempts):
            if attempt:
                self.operation_retries += 1
                if obs is not None:
                    obs.client_retries.inc()
                delay = policy.backoff(attempt - 1)
                delay += delay * policy.backoff_jitter * self._rng.random()
                self._record(
                    "retry",
                    f"{operation.object_id} attempt={attempt + 1} "
                    f"backoff={delay:.3f}",
                )
                yield self.sim.sleep(delay)
            attempt_span: Optional[Span] = None
            trace = None
            if obs is not None:
                attempt_span = obs.tracer.start_span(
                    "client.attempt",
                    category="client",
                    node=str(self.node_id),
                    parent=span.context() if span is not None else None,
                    object=operation.object_id,
                    attempt=attempt,
                    request_id=request_id,
                )
                trace = attempt_span.context()
            future = self._issue(operation, request_id, target, trace=trace)
            yield any_of(
                self.sim,
                [future, self.sim.sleep(policy.attempt_timeout)],
            )
            if not future.done:
                # Attempt deadline hit: abandon this request id so a late
                # reply is ignored, then back off and retry.
                self._pending.pop(request_id, None)
                self.attempt_timeouts += 1
                if attempt_span is not None:
                    attempt_span.finish(status="timeout")
                self._record(
                    "attempt-timeout",
                    f"{operation.object_id} request={request_id}",
                )
                continue
            reply = future.value
            if isinstance(reply, ClientOperationFailed):
                # The proxy gave up gracefully; treat like a timeout.
                if attempt_span is not None:
                    attempt_span.finish(status="proxy-gave-up")
                self._record(
                    "proxy-gave-up",
                    f"{operation.object_id} after {reply.attempts} gathers",
                )
                continue
            if attempt_span is not None:
                attempt_span.finish(status="ok")
            return reply
        raise RetriesExhaustedError(
            f"{operation.object_id}: no reply within {policy.max_attempts} "
            "attempts",
            object_id=str(operation.object_id),
            elapsed=self.sim.now - started_at,
            attempts=policy.max_attempts,
        )

    def _issue(
        self,
        operation: OperationSpec,
        request_id: int,
        target: NodeId,
        trace: Optional[Tuple[int, int]] = None,
    ) -> Future:
        reply_future = self.sim.future(name=f"{self.node_id}.req{request_id}")
        self._pending[request_id] = reply_future
        self.operations_issued += 1
        if operation.op_type is OpType.WRITE:
            self.send(
                target,
                ClientWrite(
                    object_id=operation.object_id,
                    value=operation.value,
                    size=operation.size,
                    request_id=request_id,
                ),
                size=_HEADER_BYTES + operation.size,
                trace=trace,
            )
        else:
            self.send(
                target,
                ClientRead(
                    object_id=operation.object_id, request_id=request_id
                ),
                size=_HEADER_BYTES,
                trace=trace,
            )
        return reply_future

    def _on_reply(self, envelope: Envelope) -> None:
        reply = envelope.payload
        future = self._pending.pop(reply.request_id, None)
        if future is not None and not future.done:
            future.resolve(reply)

    def _record(self, label: str, detail: str = "") -> None:
        if self._events is not None:
            self._events.record(
                self.sim.now, "client", label, f"{self.node_id}: {detail}"
            )
