"""Object placement: a consistent-hash ring, as in Swift.

Swift maps objects to storage devices with a ring built from an MD5 hash
of the object path; replicas of the same object always land on distinct
nodes.  This module reproduces that behaviour with a classic
virtual-node consistent-hash ring.  Placement is deterministic in the
object id and the node set, so every component of the simulation (and
every test) agrees on where replicas live.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, ObjectId


def _hash64(text: str) -> int:
    """Stable 64-bit hash (MD5-derived, like Swift's ring)."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementRing:
    """Maps each object id to its ordered list of replica nodes.

    The first ``replication_degree`` distinct nodes clockwise from the
    object's hash position hold its replicas.  ``vnodes`` virtual points
    per node smooth the load distribution.

    Two optional Swift-ring features:

    * **weights** — per-node capacity weights scale the number of virtual
      points, shifting proportionally more objects onto bigger devices;
    * **zones** — when nodes are assigned to failure zones, replica
      selection prefers nodes from zones not yet used by the object
      (Swift's "as unique as possible" placement), so that a zone outage
      cannot take out a whole replica set when enough zones exist.
    """

    def __init__(
        self,
        nodes: list[NodeId],
        replication_degree: int,
        vnodes: int = 64,
        weights: dict[NodeId, float] | None = None,
        zones: dict[NodeId, str] | None = None,
    ) -> None:
        if replication_degree < 1:
            raise ConfigurationError("replication degree must be >= 1")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("duplicate nodes in ring")
        if replication_degree > len(nodes):
            raise ConfigurationError(
                f"replication degree {replication_degree} exceeds "
                f"node count {len(nodes)}"
            )
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        weights = weights or {}
        for node, weight in weights.items():
            if node not in set(nodes):
                raise ConfigurationError(f"weight for unknown node {node}")
            if weight <= 0:
                raise ConfigurationError(
                    f"weight for {node} must be > 0, got {weight}"
                )
        zones = zones or {}
        for node in zones:
            if node not in set(nodes):
                raise ConfigurationError(f"zone for unknown node {node}")
        self._nodes = list(nodes)
        self._replication_degree = replication_degree
        self._zones = dict(zones)
        points: list[tuple[int, NodeId]] = []
        for node in nodes:
            node_vnodes = max(1, round(vnodes * weights.get(node, 1.0)))
            for replica_point in range(node_vnodes):
                points.append((_hash64(f"{node}#{replica_point}"), node))
        points.sort()
        self._positions = [position for position, _node in points]
        self._owners = [node for _position, node in points]
        # The ring is immutable after construction, so an object's
        # replica walk (md5 + bisect + clockwise scan) is computed once
        # and memoized; the bound only exists so a pathological key
        # population cannot grow memory without limit.
        self._replica_cache: dict[ObjectId, tuple[NodeId, ...]] = {}
        self._replica_cache_cap = 65536

    @property
    def nodes(self) -> list[NodeId]:
        return list(self._nodes)

    @property
    def replication_degree(self) -> int:
        return self._replication_degree

    def zone_of(self, node: NodeId) -> str:
        """The failure zone of a node ('' when zones are not configured)."""
        return self._zones.get(node, "")

    def replicas(self, object_id: ObjectId) -> list[NodeId]:
        """The ordered replica set of an object (length = N, all distinct).

        With zones configured, the walk clockwise from the object's hash
        position first picks at most one node per zone; only once every
        zone is represented (or exhausted) does it reuse zones.
        """
        return list(self._replica_tuple(object_id))

    def _replica_tuple(self, object_id: ObjectId) -> tuple[NodeId, ...]:
        cached = self._replica_cache.get(object_id)
        if cached is None:
            if len(self._replica_cache) >= self._replica_cache_cap:
                self._replica_cache.clear()
            cached = tuple(self._compute_replicas(object_id))
            self._replica_cache[object_id] = cached
        return cached

    def _compute_replicas(self, object_id: ObjectId) -> list[NodeId]:
        start = bisect.bisect_right(self._positions, _hash64(object_id))
        count = len(self._positions)
        distinct: list[NodeId] = []
        seen: set[NodeId] = set()
        for offset in range(count):
            owner = self._owners[(start + offset) % count]
            if owner not in seen:
                seen.add(owner)
                distinct.append(owner)
                if len(distinct) == len(self._nodes):
                    break
        if not self._zones:
            return distinct[: self._replication_degree]
        chosen: list[NodeId] = []
        chosen_set: set[NodeId] = set()
        used_zones: set[str] = set()
        candidates = list(distinct)
        while len(chosen) < self._replication_degree:
            progressed = False
            for node in candidates:
                if node in chosen_set:
                    continue
                zone = self.zone_of(node)
                if zone in used_zones:
                    continue
                chosen.append(node)
                chosen_set.add(node)
                used_zones.add(zone)
                progressed = True
                if len(chosen) == self._replication_degree:
                    break
            if len(chosen) == self._replication_degree:
                break
            if not progressed:
                # All remaining zones are used: relax and start a new
                # zone round (Swift's "as unique as possible").
                used_zones = set()
        return chosen

    def preferred_order(
        self, object_id: ObjectId, proxy_seed: int
    ) -> list[NodeId]:
        """Replica list rotated by a proxy-specific offset.

        The paper load-balances by "a hash on the proxy identifier"
        (Section 2.1): different proxies contact different quorums of the
        same replica set, spreading read load.
        """
        replicas = self._replica_tuple(object_id)
        rotation = proxy_seed % len(replicas)
        if rotation:
            return list(replicas[rotation:] + replicas[:rotation])
        return list(replicas)

    def load_distribution(self, object_ids: list[ObjectId]) -> dict[NodeId, int]:
        """Replica count per node over a population of objects (for tests)."""
        counts: dict[NodeId, int] = {node: 0 for node in self._nodes}
        for object_id in object_ids:
            for node in self.replicas(object_id):
                counts[node] += 1
        return counts
