"""Cluster assembly: wire storage nodes, proxies and clients together.

:class:`SwiftCluster` builds the full simulated test-bed of Section 2.2
from a :class:`~repro.common.config.ClusterConfig`: the network, the
placement ring, storage and proxy nodes, crash management, and (on
demand) closed-loop clients driving a workload.  The Q-OPT control plane
(Reconfiguration Manager, Autonomic Manager, Oracle) attaches on top via
the ``repro.reconfig`` and ``repro.autonomic`` packages.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import substream
from repro.common.types import NodeId, ObjectId, Version
from repro.metrics.collector import OperationLog
from repro.metrics.timeline import EventTimeline
from repro.obs.context import Observability
from repro.sds.client import ClientNode, OperationRecord, OperationSource
from repro.sds.proxy import ProxyNode
from repro.sds.quorum import QuorumPlan
from repro.sds.ring import PlacementRing
from repro.sds.storage import StorageNode
from repro.sds.vector_clocks import make_versioning
from repro.sim.failure import CrashManager, FailureDetector
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.topk.stats import ProxyStatsRecorder


class SwiftCluster:
    """A fully wired simulated SDS deployment."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        seed: int = 0,
        top_k: int = 8,
        summary_capacity: int = 256,
        detection_delay: float = 0.5,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = (config or ClusterConfig()).validate()
        self.seed = seed
        self.sim = Simulator()
        #: Optional observability bundle: when given, every tier is
        #: instrumented and the tracer follows the simulated clock.
        self.obs = obs
        if obs is not None:
            obs.bind_clock(lambda: self.sim.now)
        self.network = Network(
            self.sim, self.config.network, rng=substream(seed, "network")
        )
        if obs is not None:
            self.network.bind_observability(obs)
        self.crashes = CrashManager(self.sim, self.network)
        self.detector = FailureDetector(
            self.sim, self.crashes, detection_delay=detection_delay
        )
        self.log = OperationLog()
        #: Shared audit log: nemesis faults, proxy/client degradation events.
        self.events = EventTimeline()
        if obs is not None:
            # Bridge timeline records (nemesis faults in particular) into
            # the trace as annotations.
            self.events.bind_observability(obs)

        initial_plan = QuorumPlan.uniform(self.config.initial_quorum)
        initial_plan.validate_strict(self.config.replication_degree)
        self.initial_plan = initial_plan

        storage_ids = [
            NodeId.storage(index)
            for index in range(self.config.num_storage_nodes)
        ]
        self.ring = PlacementRing(
            storage_ids, replication_degree=self.config.replication_degree
        )
        self.storage_nodes: list[StorageNode] = [
            StorageNode(
                self.sim,
                self.network,
                node_id,
                config=self.config.storage,
                initial_plan=initial_plan,
                rng=substream(seed, "storage", node_id.index),
                ring=self.ring,
                obs=obs,
            )
            for node_id in storage_ids
        ]
        self.proxies: list[ProxyNode] = [
            ProxyNode(
                self.sim,
                self.network,
                NodeId.proxy(index),
                ring=self.ring,
                config=self.config.proxy,
                initial_plan=initial_plan,
                rng=substream(seed, "proxy", index),
                stats=ProxyStatsRecorder(
                    top_k=top_k, summary_capacity=summary_capacity
                ),
                versioning=make_versioning(self.config.versioning),
                events=self.events,
                obs=obs,
            )
            for index in range(self.config.num_proxies)
        ]
        self.clients: list[ClientNode] = []
        self._nodes_by_id: dict[NodeId, object] = {}
        for node in [*self.storage_nodes, *self.proxies]:
            node.start()
            self._nodes_by_id[node.node_id] = node
        # Fail-stop: when the crash manager kills a node, stop its
        # processes too, so crashed nodes truly go silent.
        self.crashes.on_crash(self._on_crash)

    # -- client management ----------------------------------------------------

    def add_clients(
        self,
        workload: OperationSource | Callable[[int], OperationSource],
        clients_per_proxy: Optional[int] = None,
        think_time: float = 0.0,
        recorder: Optional[Callable[[OperationRecord], None]] = None,
        pipeline_depth: int = 1,
        injection_rate: float = 0.0,
    ) -> list[ClientNode]:
        """Attach closed-loop clients, round-robin across proxies.

        ``workload`` is either a single shared :class:`OperationSource`
        or a factory called with the client index (for per-client
        sources, e.g. multi-tenant scenarios).  ``pipeline_depth`` > 1
        keeps that many logical operations in flight per client;
        ``injection_rate`` > 0 switches the client to open-loop pacing
        (see :class:`~repro.sds.client.ClientNode`).
        """
        count_per_proxy = clients_per_proxy or self.config.clients_per_proxy
        created: list[ClientNode] = []
        base_index = len(self.clients)
        for proxy_index, proxy in enumerate(self.proxies):
            for slot in range(count_per_proxy):
                client_index = base_index + proxy_index * count_per_proxy + slot
                source = (
                    workload(client_index)
                    if callable(workload)
                    else workload
                )
                client = ClientNode(
                    self.sim,
                    self.network,
                    NodeId.client(client_index),
                    proxy_id=proxy.node_id,
                    workload=source,
                    rng=substream(self.seed, "client", client_index),
                    log=self.log,
                    think_time=think_time,
                    recorder=recorder,
                    policy=self.config.client,
                    events=self.events,
                    obs=self.obs,
                    pipeline_depth=pipeline_depth,
                    injection_rate=injection_rate,
                )
                client.start()
                self.clients.append(client)
                self._nodes_by_id[client.node_id] = client
                created.append(client)
        return created

    # -- failure injection ------------------------------------------------------

    def crash_storage(self, index: int) -> None:
        self.crashes.crash(NodeId.storage(index))

    def crash_proxy(self, index: int) -> None:
        self.crashes.crash(NodeId.proxy(index))

    def _on_crash(self, node_id: NodeId) -> None:
        node = self._nodes_by_id.get(node_id)
        if node is not None:
            node.crash()

    # -- running --------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        if duration < 0:
            raise ConfigurationError("duration must be >= 0")
        self.sim.run(until=self.sim.now + duration)

    def throughput(self, window: float) -> float:
        """Cluster throughput (ops/s) over the trailing ``window`` seconds."""
        return self.log.throughput(
            max(0.0, self.sim.now - window), self.sim.now
        )

    # -- inspection (used by tests and consistency checkers) ---------------------

    def replica_versions(self, object_id: ObjectId) -> dict[NodeId, Version]:
        """The version of an object stored at each of its replicas."""
        return {
            node_id: self._storage(node_id).version_of(object_id)
            for node_id in self.ring.replicas(object_id)
        }

    def freshest_version(self, object_id: ObjectId) -> Version:
        """Newest version of an object across all replicas."""
        versions = self.replica_versions(object_id).values()
        return max(versions, key=lambda version: version.stamp)

    def _storage(self, node_id: NodeId) -> StorageNode:
        node = self._nodes_by_id[node_id]
        assert isinstance(node, StorageNode)
        return node


def build_cluster(
    config: Optional[ClusterConfig] = None, seed: int = 0, **kwargs: object
) -> SwiftCluster:
    """Convenience alias mirroring the public API naming."""
    return SwiftCluster(config=config, seed=seed, **kwargs)
