"""History-based consistency checking.

The safety property Q-OPT preserves across reconfigurations is **Dynamic
Quorum Consistency** (Section 5): a read's quorum intersects the write
quorum of any concurrent write and, absent concurrent writes, of the
last completed write.  Together with the total order on writes this
yields regular-register semantics per object, strengthened to atomicity
between non-concurrent reads by the freshest-timestamp selection rule.

:class:`HistoryChecker` verifies both properties from client-observed
histories (:class:`~repro.sds.client.OperationRecord`), with no access
to server internals:

1. **Plausibility** — every read returns either the initial value or the
   value of a write that was invoked before the read completed.
2. **No stale reads** — a read never returns a value overwritten by a
   write that completed before the read was invoked (the interval-order
   formulation of the regular-register condition).
3. **Monotonic reads w.r.t. completed writes** — if an earlier,
   non-concurrent read returned version ``v`` and ``v``'s write had
   completed before the later read began, the later read returns a
   version at least as new.

Check 3 is deliberately *not* full atomicity: like the underlying
quorum stores the paper builds on (and as the paper notes, the
reconfiguration protocol is oblivious to "regular or atomic register"
semantics), reads concurrent with an in-flight write may observe
new-then-old across clients until that write completes.  Once a write
completes — i.e. its full write quorum acknowledged — every subsequent
read quorum intersects it and staleness is impossible, which is exactly
what checks 2 and 3 verify.

On top of those per-read interval checks, the module provides a
**Wing–Gong linearizability checker** (:class:`LinearizabilityChecker`):
a complete per-key search for a linearization of the observed history
against an atomic-register specification.  Values are globally unique
per write, so the search state collapses to (set of linearized
operations, last linearized write) and memoized reachability decides
each key in practice-linear time; independent time chunks (quiescent
points where every earlier operation has completed) are checked
separately with the possible register values threaded across the
boundary.  Atomicity is *stronger* than the guarantee Q-OPT makes while
a write is in flight, so :meth:`HistoryChecker.check` remains the
protocol-level oracle; the linearizability checker is the strictest
regression net for histories that should be atomic, and is what the
integration suite and the fault-injection example run under.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.types import ObjectId, OpType, VersionStamp
from repro.sds.client import OperationRecord


@dataclass(frozen=True)
class Violation:
    """One detected consistency violation."""

    kind: str
    object_id: ObjectId
    description: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.object_id}: {self.description}"


@dataclass
class HistoryChecker:
    """Collects operation records and checks register semantics."""

    records: list[OperationRecord] = field(default_factory=list)

    def record(self, record: OperationRecord) -> None:
        """Recorder callback — pass ``checker.record`` to the clients."""
        self.records.append(record)

    # -- checking -----------------------------------------------------------

    def check(self) -> list[Violation]:
        """Run all checks over the collected history."""
        violations: list[Violation] = []
        by_object: dict[ObjectId, list[OperationRecord]] = {}
        for record in self.records:
            by_object.setdefault(record.object_id, []).append(record)
        for object_id, history in by_object.items():
            violations.extend(self._check_object(object_id, history))
        return violations

    def assert_consistent(self) -> None:
        """Raise ``AssertionError`` listing any violations."""
        violations = self.check()
        if violations:
            summary = "\n".join(str(v) for v in violations[:10])
            raise AssertionError(
                f"{len(violations)} consistency violations, e.g.:\n{summary}"
            )

    def check_linearizable(
        self, max_states: int = 1_000_000
    ) -> list[Violation]:
        """Full Wing–Gong search over the history (atomic register).

        Strictly stronger than :meth:`check`: a pass here implies a pass
        there, but histories that legally show new-then-old across an
        in-flight write (regular-register behaviour) fail this check
        while passing :meth:`check`.
        """
        checker = LinearizabilityChecker(max_states=max_states)
        return checker.check(self.records)

    def assert_linearizable(self, max_states: int = 1_000_000) -> None:
        """Raise ``AssertionError`` listing linearizability violations."""
        violations = self.check_linearizable(max_states=max_states)
        if violations:
            summary = "\n".join(str(v) for v in violations[:10])
            raise AssertionError(
                f"{len(violations)} linearizability violations, e.g.:\n"
                f"{summary}"
            )

    # -- per-object logic ------------------------------------------------------

    def _check_object(
        self, object_id: ObjectId, history: list[OperationRecord]
    ) -> list[Violation]:
        violations: list[Violation] = []
        reads = [r for r in history if r.op_type is OpType.READ]
        # Clients record every write twice: at invocation (with an
        # infinite completion time) and at completion.  Keep one record
        # per value, preferring the completed one; a write that never
        # completed stays with completed_at = inf and can never make a
        # later read stale.
        write_by_value: dict[bytes, OperationRecord] = {}
        for record in history:
            if record.op_type is not OpType.WRITE or record.value is None:
                continue
            existing = write_by_value.get(record.value)
            if existing is None or record.completed_at < existing.completed_at:
                write_by_value[record.value] = record
        writes = list(write_by_value.values())

        # Precompute, over writes sorted by completion time, the running
        # maximum of invocation times: for a read invoked at t, the
        # largest write-invocation time among writes completed before t
        # tells us whether any completed write strictly follows a
        # candidate returned write in the interval order.
        writes_by_completion = sorted(writes, key=lambda w: w.completed_at)
        completion_times = [w.completed_at for w in writes_by_completion]
        prefix_max_invocation: list[float] = []
        running = float("-inf")
        for write in writes_by_completion:
            running = max(running, write.invoked_at)
            prefix_max_invocation.append(running)

        for read in reads:
            # 1. Plausibility.
            source: Optional[OperationRecord] = None
            if read.value is not None:
                source = write_by_value.get(read.value)
                if source is None:
                    violations.append(
                        Violation(
                            kind="fabricated-value",
                            object_id=object_id,
                            description=(
                                f"read at {read.invoked_at:.4f} returned "
                                f"{read.value!r}, written by no recorded write"
                            ),
                        )
                    )
                    continue
                if source.invoked_at >= read.completed_at:
                    violations.append(
                        Violation(
                            kind="future-read",
                            object_id=object_id,
                            description=(
                                f"read completed at {read.completed_at:.4f} "
                                "returned a value whose write started at "
                                f"{source.invoked_at:.4f}"
                            ),
                        )
                    )
                    continue

            # 2. Staleness: is there a write w' completed before this
            # read started, such that the returned write finished before
            # w' began?  (The returned write was then overwritten by a
            # non-concurrent, completed write.)
            index = bisect.bisect_left(completion_times, read.invoked_at)
            if index > 0:
                latest_follower_invocation = prefix_max_invocation[index - 1]
                source_completed = (
                    source.completed_at if source is not None else float("-inf")
                )
                if source_completed < latest_follower_invocation:
                    violations.append(
                        Violation(
                            kind="stale-read",
                            object_id=object_id,
                            description=(
                                f"read invoked at {read.invoked_at:.4f} "
                                "missed a write that completed earlier "
                                "and did not overlap the returned write"
                            ),
                        )
                    )

        # 3. Monotonic reads w.r.t. completed writes: an earlier read's
        # observation becomes binding once BOTH the read itself and the
        # write that produced its value have completed.  An observation's
        # "availability time" is therefore max(read completion, source
        # write completion); any read invoked after that must return a
        # stamp at least as new.
        observations: list[tuple[float, OperationRecord]] = []
        for read in reads:
            if read.value is None:
                continue
            source = write_by_value.get(read.value)
            if source is None:
                continue  # already reported as fabricated
            available_at = max(read.completed_at, source.completed_at)
            if available_at != float("inf"):
                observations.append((available_at, read))
        observations.sort(key=lambda pair: pair[0])
        reads_by_invocation = sorted(reads, key=lambda r: r.invoked_at)
        best_stamp = None
        pointer = 0
        for read in reads_by_invocation:
            while (
                pointer < len(observations)
                and observations[pointer][0] < read.invoked_at
            ):
                candidate = observations[pointer][1].stamp
                if best_stamp is None or candidate > best_stamp:
                    best_stamp = candidate
                pointer += 1
            if best_stamp is not None and read.stamp < best_stamp:
                violations.append(
                    Violation(
                        kind="non-monotonic-read",
                        object_id=object_id,
                        description=(
                            f"read invoked at {read.invoked_at:.4f} returned "
                            f"stamp {read.stamp}, older than the stamp "
                            f"{best_stamp} observed by an earlier read of a "
                            "write that had already completed"
                        ),
                    )
                )

        # 4. Write-order consistency: the version-stamp total order on
        # writes must extend their real-time order.  A write's stamp is
        # only observable through the reads that returned its value, so
        # the check covers every pair of non-concurrent writes whose
        # values were both read at least once.
        violations.extend(
            self._check_write_order(object_id, reads, writes)
        )
        return violations

    def _check_write_order(
        self,
        object_id: ObjectId,
        reads: list[OperationRecord],
        writes: list[OperationRecord],
    ) -> list[Violation]:
        stamp_of: dict[bytes, VersionStamp] = {}
        for read in reads:
            if read.value is not None:
                stamp_of.setdefault(read.value, read.stamp)
        stamped = [
            w for w in writes if w.value in stamp_of
        ]
        violations: list[Violation] = []
        by_invocation = sorted(stamped, key=lambda w: w.invoked_at)
        by_completion = sorted(stamped, key=lambda w: w.completed_at)
        pointer = 0
        best_stamp = None
        best_write: Optional[OperationRecord] = None
        for write in by_invocation:
            while (
                pointer < len(by_completion)
                and by_completion[pointer].completed_at < write.invoked_at
            ):
                candidate = stamp_of[by_completion[pointer].value]
                if best_stamp is None or candidate > best_stamp:
                    best_stamp = candidate
                    best_write = by_completion[pointer]
                pointer += 1
            if (
                best_stamp is not None
                and best_write is not None
                and stamp_of[write.value] < best_stamp
            ):
                violations.append(
                    Violation(
                        kind="write-order-inversion",
                        object_id=object_id,
                        description=(
                            f"write invoked at {write.invoked_at:.4f} got "
                            f"stamp {stamp_of[write.value]}, older than "
                            f"stamp {best_stamp} of a write that completed "
                            "before it started — the stamp order "
                            "contradicts real time"
                        ),
                    )
                )
        return violations


# -- Wing–Gong linearizability ------------------------------------------------


@dataclass(frozen=True)
class _LinOp:
    """One operation in the per-key linearizability search."""

    index: int
    op_type: OpType
    invoked_at: float
    completed_at: float
    value: Optional[bytes]

    @property
    def pending(self) -> bool:
        return self.completed_at == float("inf")


class SearchBudgetExceeded(RuntimeError):
    """The state space of one chunk outgrew ``max_states``.

    Distinct from a violation: the history was neither proved nor
    refuted.  Raise the budget or reduce the history length.
    """


class LinearizabilityChecker:
    """Complete per-key linearizability check (Wing & Gong, 1993).

    The specification is an atomic register: at its linearization point
    a write installs its (globally unique) value and a read returns the
    value installed by the most recently linearized write (``None``
    before the first write).  The search explores every linearization
    consistent with the real-time partial order, memoizing on the state
    ``(set of linearized ops, last linearized write)`` — with unique
    write values this is exactly the information the future depends on,
    so the memoized reachability search is complete.

    Two scale levers keep the search tractable on long histories:

    * **Quiescence chunking** — at any instant where every earlier
      operation has completed, the history splits into independent
      chunks; only the set of *possible register values* crosses the
      boundary.
    * **State budget** — a hard cap on explored states per chunk
      (:class:`SearchBudgetExceeded` when exceeded, never a silent
      pass).

    Writes that never completed (in-flight at the end of the run) may
    linearize or not; reads are always required to linearize.
    """

    def __init__(self, max_states: int = 1_000_000) -> None:
        self._max_states = max_states

    # -- public API ---------------------------------------------------------

    def check(
        self, records: Sequence[OperationRecord]
    ) -> list[Violation]:
        """All linearizability violations over the record set."""
        by_object: dict[ObjectId, list[OperationRecord]] = {}
        for record in records:
            by_object.setdefault(record.object_id, []).append(record)
        violations: list[Violation] = []
        for object_id, history in by_object.items():
            violations.extend(self._check_object(object_id, history))
        return violations

    # -- per-object search --------------------------------------------------

    def _check_object(
        self, object_id: ObjectId, history: list[OperationRecord]
    ) -> list[Violation]:
        write_by_value: dict[bytes, OperationRecord] = {}
        for record in history:
            if record.op_type is not OpType.WRITE or record.value is None:
                continue
            existing = write_by_value.get(record.value)
            if existing is None or record.completed_at < existing.completed_at:
                write_by_value[record.value] = record

        ops: list[_LinOp] = []
        violations: list[Violation] = []
        for record in history:
            if record.op_type is OpType.READ:
                if (
                    record.value is not None
                    and record.value not in write_by_value
                ):
                    violations.append(
                        Violation(
                            kind="fabricated-value",
                            object_id=object_id,
                            description=(
                                f"read at {record.invoked_at:.4f} returned "
                                f"{record.value!r}, written by no recorded "
                                "write — excluded from the linearization "
                                "search"
                            ),
                        )
                    )
                    continue
                ops.append(
                    _LinOp(
                        index=len(ops),
                        op_type=OpType.READ,
                        invoked_at=record.invoked_at,
                        completed_at=record.completed_at,
                        value=record.value,
                    )
                )
        for record in write_by_value.values():
            ops.append(
                _LinOp(
                    index=len(ops),
                    op_type=OpType.WRITE,
                    invoked_at=record.invoked_at,
                    completed_at=record.completed_at,
                    value=record.value,
                )
            )

        possible_values: frozenset[Optional[bytes]] = frozenset({None})
        for chunk in self._chunks(ops):
            outcome = self._search_chunk(chunk, possible_values)
            if outcome is None:
                violations.append(
                    self._diagnose(object_id, chunk, possible_values)
                )
                # Restart from an unconstrained value so later chunks
                # still get checked instead of cascading failures.
                possible_values = frozenset(
                    {None} | {op.value for op in ops if op.op_type is OpType.WRITE}
                )
            else:
                possible_values = outcome
        return violations

    @staticmethod
    def _chunks(ops: list[_LinOp]) -> list[list[_LinOp]]:
        """Split at quiescent points (every earlier op strictly done)."""
        ordered = sorted(
            ops, key=lambda op: (op.invoked_at, op.completed_at, op.index)
        )
        chunks: list[list[_LinOp]] = []
        current: list[_LinOp] = []
        horizon = float("-inf")
        for op in ordered:
            if current and horizon < op.invoked_at:
                chunks.append(current)
                current = []
            current.append(op)
            horizon = max(horizon, op.completed_at)
        if current:
            chunks.append(current)
        return chunks

    def _search_chunk(
        self,
        chunk: list[_LinOp],
        initial_values: frozenset[Optional[bytes]],
    ) -> Optional[frozenset[Optional[bytes]]]:
        """Reachability over (done-mask, register value) states.

        Returns the set of possible register values after the chunk, or
        None when no linearization exists.
        """
        n = len(chunk)
        # pred[i]: mask of ops that must linearize before op i.
        pred = [0] * n
        for i, a in enumerate(chunk):
            for j, b in enumerate(chunk):
                if i != j and b.completed_at < a.invoked_at:
                    pred[i] |= 1 << j
        required = 0
        for i, op in enumerate(chunk):
            if not (op.pending and op.op_type is OpType.WRITE):
                required |= 1 << i

        start_states = {(0, value) for value in initial_values}
        seen: set[tuple[int, Optional[bytes]]] = set(start_states)
        stack = list(start_states)
        final_values: set[Optional[bytes]] = set()
        success = False
        while stack:
            done, value = stack.pop()
            if done & required == required:
                # Pending writes (completed_at = inf) keep the chunk
                # open to the end of the history, so any state covering
                # ``required`` is a complete linearization of the chunk.
                success = True
                final_values.add(value)
            for i in range(n):
                bit = 1 << i
                if done & bit or pred[i] & ~done:
                    continue
                op = chunk[i]
                if op.op_type is OpType.READ and op.value != value:
                    continue
                next_value = (
                    op.value if op.op_type is OpType.WRITE else value
                )
                state = (done | bit, next_value)
                if state not in seen:
                    if len(seen) >= self._max_states:
                        raise SearchBudgetExceeded(
                            f"linearizability search exceeded "
                            f"{self._max_states} states on a chunk of "
                            f"{n} operations"
                        )
                    seen.add(state)
                    stack.append(state)
        if not success:
            return None
        return frozenset(final_values)

    @staticmethod
    def _diagnose(
        object_id: ObjectId,
        chunk: list[_LinOp],
        initial_values: frozenset[Optional[bytes]],
    ) -> Violation:
        start = min(op.invoked_at for op in chunk)
        end = max(
            op.completed_at
            for op in chunk
            if op.completed_at != float("inf")
        )
        reads = sum(1 for op in chunk if op.op_type is OpType.READ)
        writes = len(chunk) - reads
        return Violation(
            kind="non-linearizable",
            object_id=object_id,
            description=(
                f"no linearization exists for the {len(chunk)} operations "
                f"({reads} reads, {writes} writes) in "
                f"[{start:.4f}, {end:.4f}] given possible initial "
                f"values {sorted(map(repr, initial_values))}"
            ),
        )
