"""History-based consistency checking.

The safety property Q-OPT preserves across reconfigurations is **Dynamic
Quorum Consistency** (Section 5): a read's quorum intersects the write
quorum of any concurrent write and, absent concurrent writes, of the
last completed write.  Together with the total order on writes this
yields regular-register semantics per object, strengthened to atomicity
between non-concurrent reads by the freshest-timestamp selection rule.

:class:`HistoryChecker` verifies both properties from client-observed
histories (:class:`~repro.sds.client.OperationRecord`), with no access
to server internals:

1. **Plausibility** — every read returns either the initial value or the
   value of a write that was invoked before the read completed.
2. **No stale reads** — a read never returns a value overwritten by a
   write that completed before the read was invoked (the interval-order
   formulation of the regular-register condition).
3. **Monotonic reads w.r.t. completed writes** — if an earlier,
   non-concurrent read returned version ``v`` and ``v``'s write had
   completed before the later read began, the later read returns a
   version at least as new.

Check 3 is deliberately *not* full atomicity: like the underlying
quorum stores the paper builds on (and as the paper notes, the
reconfiguration protocol is oblivious to "regular or atomic register"
semantics), reads concurrent with an in-flight write may observe
new-then-old across clients until that write completes.  Once a write
completes — i.e. its full write quorum acknowledged — every subsequent
read quorum intersects it and staleness is impossible, which is exactly
what checks 2 and 3 verify.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional

from repro.common.types import ObjectId, OpType
from repro.sds.client import OperationRecord


@dataclass(frozen=True)
class Violation:
    """One detected consistency violation."""

    kind: str
    object_id: ObjectId
    description: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.object_id}: {self.description}"


@dataclass
class HistoryChecker:
    """Collects operation records and checks register semantics."""

    records: list[OperationRecord] = field(default_factory=list)

    def record(self, record: OperationRecord) -> None:
        """Recorder callback — pass ``checker.record`` to the clients."""
        self.records.append(record)

    # -- checking -----------------------------------------------------------

    def check(self) -> list[Violation]:
        """Run all checks over the collected history."""
        violations: list[Violation] = []
        by_object: dict[ObjectId, list[OperationRecord]] = {}
        for record in self.records:
            by_object.setdefault(record.object_id, []).append(record)
        for object_id, history in by_object.items():
            violations.extend(self._check_object(object_id, history))
        return violations

    def assert_consistent(self) -> None:
        """Raise ``AssertionError`` listing any violations."""
        violations = self.check()
        if violations:
            summary = "\n".join(str(v) for v in violations[:10])
            raise AssertionError(
                f"{len(violations)} consistency violations, e.g.:\n{summary}"
            )

    # -- per-object logic ------------------------------------------------------

    def _check_object(
        self, object_id: ObjectId, history: list[OperationRecord]
    ) -> list[Violation]:
        violations: list[Violation] = []
        reads = [r for r in history if r.op_type is OpType.READ]
        # Clients record every write twice: at invocation (with an
        # infinite completion time) and at completion.  Keep one record
        # per value, preferring the completed one; a write that never
        # completed stays with completed_at = inf and can never make a
        # later read stale.
        write_by_value: dict[bytes, OperationRecord] = {}
        for record in history:
            if record.op_type is not OpType.WRITE or record.value is None:
                continue
            existing = write_by_value.get(record.value)
            if existing is None or record.completed_at < existing.completed_at:
                write_by_value[record.value] = record
        writes = list(write_by_value.values())

        # Precompute, over writes sorted by completion time, the running
        # maximum of invocation times: for a read invoked at t, the
        # largest write-invocation time among writes completed before t
        # tells us whether any completed write strictly follows a
        # candidate returned write in the interval order.
        writes_by_completion = sorted(writes, key=lambda w: w.completed_at)
        completion_times = [w.completed_at for w in writes_by_completion]
        prefix_max_invocation: list[float] = []
        running = float("-inf")
        for write in writes_by_completion:
            running = max(running, write.invoked_at)
            prefix_max_invocation.append(running)

        for read in reads:
            # 1. Plausibility.
            source: Optional[OperationRecord] = None
            if read.value is not None:
                source = write_by_value.get(read.value)
                if source is None:
                    violations.append(
                        Violation(
                            kind="fabricated-value",
                            object_id=object_id,
                            description=(
                                f"read at {read.invoked_at:.4f} returned "
                                f"{read.value!r}, written by no recorded write"
                            ),
                        )
                    )
                    continue
                if source.invoked_at >= read.completed_at:
                    violations.append(
                        Violation(
                            kind="future-read",
                            object_id=object_id,
                            description=(
                                f"read completed at {read.completed_at:.4f} "
                                "returned a value whose write started at "
                                f"{source.invoked_at:.4f}"
                            ),
                        )
                    )
                    continue

            # 2. Staleness: is there a write w' completed before this
            # read started, such that the returned write finished before
            # w' began?  (The returned write was then overwritten by a
            # non-concurrent, completed write.)
            index = bisect.bisect_left(completion_times, read.invoked_at)
            if index > 0:
                latest_follower_invocation = prefix_max_invocation[index - 1]
                source_completed = (
                    source.completed_at if source is not None else float("-inf")
                )
                if source_completed < latest_follower_invocation:
                    violations.append(
                        Violation(
                            kind="stale-read",
                            object_id=object_id,
                            description=(
                                f"read invoked at {read.invoked_at:.4f} "
                                "missed a write that completed earlier "
                                "and did not overlap the returned write"
                            ),
                        )
                    )

        # 3. Monotonic reads w.r.t. completed writes: an earlier read's
        # observation becomes binding once BOTH the read itself and the
        # write that produced its value have completed.  An observation's
        # "availability time" is therefore max(read completion, source
        # write completion); any read invoked after that must return a
        # stamp at least as new.
        observations: list[tuple[float, OperationRecord]] = []
        for read in reads:
            if read.value is None:
                continue
            source = write_by_value.get(read.value)
            if source is None:
                continue  # already reported as fabricated
            available_at = max(read.completed_at, source.completed_at)
            if available_at != float("inf"):
                observations.append((available_at, read))
        observations.sort(key=lambda pair: pair[0])
        reads_by_invocation = sorted(reads, key=lambda r: r.invoked_at)
        best_stamp = None
        pointer = 0
        for read in reads_by_invocation:
            while (
                pointer < len(observations)
                and observations[pointer][0] < read.invoked_at
            ):
                candidate = observations[pointer][1].stamp
                if best_stamp is None or candidate > best_stamp:
                    best_stamp = candidate
                pointer += 1
            if best_stamp is not None and read.stamp < best_stamp:
                violations.append(
                    Violation(
                        kind="non-monotonic-read",
                        object_id=object_id,
                        description=(
                            f"read invoked at {read.invoked_at:.4f} returned "
                            f"stamp {read.stamp}, older than the stamp "
                            f"{best_stamp} observed by an earlier read of a "
                            "write that had already completed"
                        ),
                    )
                )
        return violations
