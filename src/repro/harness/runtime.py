"""Full-stack experiment regenerators (E5-E8).

These run the complete Q-OPT system — cluster, Reconfiguration Manager,
Oracle and Autonomic Manager — on the discrete-event simulator:

* :func:`qopt_vs_static` — E5: Q-OPT's steady-state throughput against
  the best and worst static configurations (the paper's headline
  "only slightly lower than the optimal configuration").
* :func:`reconfiguration_overhead` — E6 (+ ablation A3): throughput
  timeline around a reconfiguration, for the non-blocking protocol and
  the stop-the-world baseline.
* :func:`dynamic_adaptation` — E7: reaction to a Dropbox-style workload
  switch (read-heavy office phase -> write-heavy home phase).
* :func:`per_object_vs_global` — E8 (+ ablation A2): multi-profile
  workload where per-object fine-grain tuning beats any single global
  configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.analysis.optimal import ConfigSweepResult, sweep_configurations
from repro.autonomic.qopt import QOptSystem, attach_qopt
from repro.common.config import AutonomicConfig, ClusterConfig
from repro.common.errors import ExperimentError
from repro.common.types import QuorumConfig
from repro.harness.tables import render_table
from repro.metrics.timeline import DipStatistics, Timeline
from repro.oracle.service import QuorumOracle
from repro.reconfig.blocking import attach_blocking_manager
from repro.reconfig.manager import attach_reconfiguration_manager
from repro.sds.cluster import SwiftCluster
from repro.workloads import ycsb
from repro.workloads.generator import (
    MixedWorkload,
    MixtureComponent,
    SyntheticWorkload,
    WorkloadSpec,
)
from repro.workloads.traces import Phase, PhasedWorkload

#: Control-loop settings compressed for simulation time scales; the
#: paper's production prototype uses 30 s windows, the simulation plays
#: the same loop at seconds granularity.
FAST_AUTONOMIC = AutonomicConfig(
    round_duration=2.0, quarantine=0.5, top_k=8, gamma=2, theta=0.02
)


# ---------------------------------------------------------------------------
# E5 — Q-OPT vs static configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QOptVsStaticRow:
    spec: WorkloadSpec
    static_sweep: ConfigSweepResult
    qopt_throughput: float

    @property
    def normalized_vs_best(self) -> float:
        best = self.static_sweep.best_throughput
        return self.qopt_throughput / best if best > 0 else 0.0

    @property
    def normalized_vs_worst(self) -> float:
        worst = self.static_sweep.worst_throughput
        return self.qopt_throughput / worst if worst > 0 else float("inf")


@dataclass(frozen=True)
class QOptVsStaticResult:
    rows: list[QOptVsStaticRow]

    @property
    def mean_normalized(self) -> float:
        return sum(r.normalized_vs_best for r in self.rows) / len(self.rows)

    @property
    def worst_normalized(self) -> float:
        return min(r.normalized_vs_best for r in self.rows)

    def render(self) -> str:
        rows = [
            (
                row.spec.label,
                f"W={row.static_sweep.best_write_quorum}",
                f"{row.static_sweep.best_throughput:.0f}",
                f"{row.qopt_throughput:.0f}",
                f"{row.normalized_vs_best:.2f}",
                f"{row.normalized_vs_worst:.2f}x",
            )
            for row in self.rows
        ]
        table = render_table(
            [
                "workload",
                "best static",
                "best ops/s",
                "q-opt ops/s",
                "q-opt/best",
                "q-opt/worst",
            ],
            rows,
            title="E5: Q-OPT vs static quorum configurations",
        )
        return (
            table
            + f"\nmean Q-OPT/optimal = {self.mean_normalized:.2f} "
            f"(worst {self.worst_normalized:.2f})"
        )


def qopt_vs_static(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    cluster_config: Optional[ClusterConfig] = None,
    autonomic_config: Optional[AutonomicConfig] = None,
    static_duration: float = 8.0,
    static_warmup: float = 2.0,
    qopt_duration: float = 24.0,
    measure_window: float = 6.0,
    seed: int = 0,
) -> QOptVsStaticResult:
    """Measure Q-OPT against every static configuration per workload."""
    base = cluster_config or ClusterConfig(num_proxies=2, clients_per_proxy=5)
    if specs is None:
        specs = [
            WorkloadSpec(write_ratio=0.05, object_size=64 * 1024, name="read-heavy"),
            WorkloadSpec(write_ratio=0.50, object_size=64 * 1024, name="mixed"),
            WorkloadSpec(write_ratio=0.95, object_size=64 * 1024, name="write-heavy"),
        ]
    oracle = QuorumOracle.trained_default(base)
    rows: list[QOptVsStaticRow] = []
    for spec in specs:
        sweep = sweep_configurations(
            spec,
            cluster_config=base,
            duration=static_duration,
            warmup=static_warmup,
            seed=seed,
        )
        cluster = SwiftCluster(base, seed=seed)
        attach_qopt(
            cluster,
            autonomic_config=autonomic_config or FAST_AUTONOMIC,
            oracle=oracle,
        )
        cluster.add_clients(SyntheticWorkload(spec, seed=seed + 1))
        cluster.run(qopt_duration)
        throughput = cluster.log.throughput(
            qopt_duration - measure_window, qopt_duration
        )
        rows.append(
            QOptVsStaticRow(
                spec=spec, static_sweep=sweep, qopt_throughput=throughput
            )
        )
    return QOptVsStaticResult(rows=rows)


# ---------------------------------------------------------------------------
# E6 — reconfiguration overhead (+ ablation A3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReconfigOverheadResult:
    nonblocking: DipStatistics
    blocking: DipStatistics
    blocking_pause_time: float
    timeline_nonblocking: Timeline
    timeline_blocking: Timeline

    def render(self) -> str:
        rows = [
            (
                "Q-OPT non-blocking",
                f"{self.nonblocking.before:.0f}",
                f"{self.nonblocking.during_min:.0f}",
                f"{self.nonblocking.after:.0f}",
                f"{self.nonblocking.relative_dip * 100:.1f}%",
            ),
            (
                "stop-the-world",
                f"{self.blocking.before:.0f}",
                f"{self.blocking.during_min:.0f}",
                f"{self.blocking.after:.0f}",
                f"{self.blocking.relative_dip * 100:.1f}%",
            ),
        ]
        table = render_table(
            ["protocol", "before ops/s", "min during", "after", "worst dip"],
            rows,
            title="E6 / A3: throughput around a global reconfiguration",
        )
        return (
            table
            + f"\nstop-the-world paused the data plane for "
            f"{self.blocking_pause_time * 1000:.0f} ms"
        )


def reconfiguration_overhead(
    spec: Optional[WorkloadSpec] = None,
    cluster_config: Optional[ClusterConfig] = None,
    from_write: int = 3,
    to_write: int = 2,
    reconfigure_at: float = 6.0,
    duration: float = 12.0,
    warmup: float = 2.0,
    bin_width: float = 0.25,
    settle: float = 2.0,
    seed: int = 0,
) -> ReconfigOverheadResult:
    """Throughput timelines around one reconfiguration, both protocols."""
    if not warmup < reconfigure_at < duration:
        raise ExperimentError("need warmup < reconfigure_at < duration")
    base = cluster_config or ClusterConfig(num_proxies=2, clients_per_proxy=5)
    spec = spec or ycsb.workload_a(object_size=64 * 1024, num_objects=128)
    degree = base.replication_degree
    start_quorum = QuorumConfig.from_write(from_write, degree)
    target_quorum = QuorumConfig.from_write(to_write, degree)

    def run(blocking: bool) -> tuple[Timeline, DipStatistics, float]:
        cluster = SwiftCluster(base.with_quorum(start_quorum), seed=seed)
        if blocking:
            manager = attach_blocking_manager(cluster)
        else:
            manager = attach_reconfiguration_manager(cluster)
        cluster.add_clients(SyntheticWorkload(spec, seed=seed + 1))
        cluster.run(reconfigure_at)
        manager.change_global(target_quorum)
        cluster.run(duration - reconfigure_at)
        timeline = Timeline(cluster.log, warmup, duration, bin_width)
        dip = timeline.dip_statistics(reconfigure_at, settle)
        pause = getattr(manager, "total_pause_time", 0.0)
        return timeline, dip, pause

    timeline_nb, dip_nb, _ = run(blocking=False)
    timeline_b, dip_b, pause = run(blocking=True)
    return ReconfigOverheadResult(
        nonblocking=dip_nb,
        blocking=dip_b,
        blocking_pause_time=pause,
        timeline_nonblocking=timeline_nb,
        timeline_blocking=timeline_b,
    )


# ---------------------------------------------------------------------------
# E7 — dynamic adaptation to a workload switch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynamicAdaptationResult:
    timeline_qopt: Timeline
    timeline_static: Timeline
    switch_time: float
    qopt_before: float
    qopt_after: float
    static_after: float
    adaptation_time: Optional[float]
    reconfigurations: int

    @property
    def improvement_over_static(self) -> float:
        if self.static_after <= 0:
            return float("inf")
        return self.qopt_after / self.static_after

    def render(self) -> str:
        adaptation = (
            f"{self.adaptation_time:.1f}s"
            if self.adaptation_time is not None
            else "n/a"
        )
        rows = [
            ("Q-OPT before switch (ops/s)", f"{self.qopt_before:.0f}"),
            ("Q-OPT after switch (ops/s)", f"{self.qopt_after:.0f}"),
            ("static after switch (ops/s)", f"{self.static_after:.0f}"),
            ("Q-OPT / static after switch", f"{self.improvement_over_static:.2f}x"),
            ("time to adapt", adaptation),
            ("reconfigurations triggered", str(self.reconfigurations)),
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title="E7: adaptation to a read-heavy -> write-heavy switch",
        )


def dynamic_adaptation(
    cluster_config: Optional[ClusterConfig] = None,
    autonomic_config: Optional[AutonomicConfig] = None,
    office_write_ratio: float = 0.05,
    home_write_ratio: float = 0.95,
    object_size: int = 64 * 1024,
    num_objects: int = 128,
    switch_time: float = 20.0,
    duration: float = 44.0,
    bin_width: float = 1.0,
    seed: int = 0,
) -> DynamicAdaptationResult:
    """Run the commute trace with Q-OPT and with a frozen configuration."""
    if switch_time >= duration:
        raise ExperimentError("switch_time must precede duration")
    base = cluster_config or ClusterConfig(num_proxies=2, clients_per_proxy=5)
    office = WorkloadSpec(
        write_ratio=office_write_ratio,
        object_size=object_size,
        num_objects=num_objects,
        skew=0.9,
        name="commute",
    )
    home = office.with_write_ratio(home_write_ratio)

    def build_workload(cluster: SwiftCluster) -> PhasedWorkload:
        return PhasedWorkload(
            phases=[
                Phase(start_time=0.0, spec=office),
                Phase(start_time=switch_time, spec=home),
            ],
            clock=lambda: cluster.sim.now,
            seed=seed + 1,
        )

    # Q-OPT run.
    cluster = SwiftCluster(base, seed=seed)
    system: QOptSystem = attach_qopt(
        cluster, autonomic_config=autonomic_config or FAST_AUTONOMIC
    )
    cluster.add_clients(build_workload(cluster))
    cluster.run(duration)
    timeline_qopt = Timeline(cluster.log, 2.0, duration, bin_width)
    qopt_before = timeline_qopt.mean_throughput(
        max(2.0, switch_time - 6.0), switch_time
    )
    qopt_after = timeline_qopt.mean_throughput(duration - 6.0, duration)
    adaptation_time: Optional[float] = None
    for point in timeline_qopt.points:
        if point.midpoint <= switch_time:
            continue
        if qopt_after > 0 and point.throughput >= 0.9 * qopt_after:
            adaptation_time = point.midpoint - switch_time
            break
    reconfigurations = (
        system.autonomic_manager.fine_reconfigurations
        + system.autonomic_manager.coarse_reconfigurations
    )

    # Static run: same workload, configuration frozen at the initial one.
    static_cluster = SwiftCluster(base, seed=seed)
    static_cluster.add_clients(build_workload(static_cluster))
    static_cluster.run(duration)
    timeline_static = Timeline(static_cluster.log, 2.0, duration, bin_width)
    static_after = timeline_static.mean_throughput(duration - 6.0, duration)

    return DynamicAdaptationResult(
        timeline_qopt=timeline_qopt,
        timeline_static=timeline_static,
        switch_time=switch_time,
        qopt_before=qopt_before,
        qopt_after=qopt_after,
        static_after=static_after,
        adaptation_time=adaptation_time,
        reconfigurations=reconfigurations,
    )


# ---------------------------------------------------------------------------
# E8 — per-object vs global tuning (+ ablation A2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerObjectResult:
    throughputs: dict[str, float]
    overrides_installed: int

    @property
    def fine_grain_gain(self) -> float:
        """Q-OPT full over the best global static configuration."""
        best_static = max(
            value
            for name, value in self.throughputs.items()
            if name.startswith("static")
        )
        if best_static <= 0:
            return float("inf")
        return self.throughputs["q-opt (per-object)"] / best_static

    def render(self) -> str:
        rows = [
            (name, f"{value:.0f}") for name, value in self.throughputs.items()
        ]
        table = render_table(
            ["system", "ops/s"],
            rows,
            title="E8 / A2: per-object tuning on a multi-profile workload",
        )
        return (
            table
            + f"\nper-object overrides installed: {self.overrides_installed}; "
            f"fine-grain gain over best global static: "
            f"{self.fine_grain_gain:.2f}x"
        )


def per_object_vs_global(
    cluster_config: Optional[ClusterConfig] = None,
    autonomic_config: Optional[AutonomicConfig] = None,
    hot_objects: int = 16,
    object_size: int = 64 * 1024,
    static_duration: float = 8.0,
    qopt_duration: float = 30.0,
    measure_window: float = 6.0,
    seed: int = 0,
) -> PerObjectResult:
    """Two hot object populations with opposite profiles plus a cold tail.

    Compares every global static configuration, Q-OPT restricted to the
    coarse tail step (ablation A2) and full per-object Q-OPT.
    """
    base = cluster_config or ClusterConfig(num_proxies=2, clients_per_proxy=5)

    def build_workload(seed_offset: int = 0) -> MixedWorkload:
        return MixedWorkload(
            [
                MixtureComponent(
                    WorkloadSpec(
                        write_ratio=0.02,
                        object_size=object_size,
                        num_objects=hot_objects,
                        skew=0.5,
                        name="hot-read",
                    ),
                    weight=0.45,
                ),
                MixtureComponent(
                    WorkloadSpec(
                        write_ratio=0.98,
                        object_size=object_size,
                        num_objects=hot_objects,
                        skew=0.5,
                        name="hot-write",
                    ),
                    weight=0.45,
                ),
                MixtureComponent(
                    WorkloadSpec(
                        write_ratio=0.50,
                        object_size=object_size,
                        num_objects=256,
                        name="cold-tail",
                    ),
                    weight=0.10,
                ),
            ],
            seed=seed + seed_offset,
        )

    throughputs: dict[str, float] = {}
    degree = base.replication_degree
    for write in range(1, degree + 1):
        quorum = QuorumConfig.from_write(write, degree)
        cluster = SwiftCluster(base.with_quorum(quorum), seed=seed)
        cluster.add_clients(build_workload())
        cluster.run(static_duration)
        throughputs[f"static {quorum}"] = cluster.log.throughput(
            static_duration - measure_window, static_duration
        )

    am_config = autonomic_config or replace(FAST_AUTONOMIC, top_k=16)
    oracle = QuorumOracle.trained_default(base)

    def run_qopt(name: str, config: AutonomicConfig) -> int:
        cluster = SwiftCluster(base, seed=seed)
        system = attach_qopt(cluster, autonomic_config=config, oracle=oracle)
        cluster.add_clients(build_workload())
        cluster.run(qopt_duration)
        throughputs[name] = cluster.log.throughput(
            qopt_duration - measure_window, qopt_duration
        )
        return len(system.autonomic_manager.installed_overrides)

    run_qopt("q-opt (tail only)", replace(am_config, enable_fine_grain=False))
    overrides = run_qopt("q-opt (per-object)", am_config)
    return PerObjectResult(
        throughputs=throughputs, overrides_installed=overrides
    )
