"""Aggregate benchmark results into one reproduction report.

``pytest benchmarks/ --benchmark-only`` leaves each experiment's rendered
table in ``benchmarks/results/``; :func:`build_report` stitches them into
a single markdown document (the machine-generated companion to the
hand-written EXPERIMENTS.md) so a reproduction run can be archived or
diffed in one file.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ExperimentError

#: Section order and titles for known experiment ids.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("e1_figure2", "E1 — Figure 2: throughput per quorum configuration"),
    ("e2_figure3", "E2 — Figure 3: optimal W vs write percentage"),
    ("e3_tuning_impact", "E3 — tuning impact (\"up to 5x\")"),
    ("e4_oracle_accuracy", "E4 — Oracle accuracy (ablation A1)"),
    ("e5_qopt_vs_static", "E5 — Q-OPT vs static configurations"),
    ("e6_reconfig_overhead", "E6 — reconfiguration overhead (ablation A3)"),
    ("e7_dynamic_adaptation", "E7 — adaptation to a workload switch"),
    ("e8_per_object", "E8 — per-object vs global tuning (ablation A2)"),
    ("e9_override_retuning", "E9 — override re-tuning (extension)"),
    ("a4_stop_rule", "A4 — stop-rule sensitivity (ablation)"),
)


@dataclass(frozen=True)
class ReproductionReport:
    """The assembled report plus bookkeeping about coverage."""

    text: str
    present: tuple[str, ...]
    missing: tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.missing


def build_report(
    results_dir: pathlib.Path | str,
    title: str = "Q-OPT reproduction report",
) -> ReproductionReport:
    """Assemble every known result file into one markdown document.

    Unknown extra files in the directory are appended under an
    "additional results" section rather than dropped.
    """
    directory = pathlib.Path(results_dir)
    if not directory.is_dir():
        raise ExperimentError(f"no results directory at {directory}")
    known = {name for name, _title in SECTIONS}
    present: list[str] = []
    missing: list[str] = []
    parts: list[str] = [f"# {title}", ""]
    for name, section_title in SECTIONS:
        path = directory / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        present.append(name)
        parts.append(f"## {section_title}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    extras = sorted(
        path
        for path in directory.glob("*.txt")
        if path.stem not in known
    )
    if extras:
        parts.append("## Additional results")
        parts.append("")
        for path in extras:
            parts.append(f"### {path.stem}")
            parts.append("")
            parts.append("```")
            parts.append(path.read_text().rstrip())
            parts.append("```")
            parts.append("")
    if missing:
        parts.append(
            "_Missing experiments (benchmarks not yet run): "
            + ", ".join(missing)
            + "_"
        )
        parts.append("")
    return ReproductionReport(
        text="\n".join(parts),
        present=tuple(present),
        missing=tuple(missing),
    )


def write_report(
    results_dir: pathlib.Path | str,
    output: Optional[pathlib.Path | str] = None,
) -> pathlib.Path:
    """Build the report and write it next to the results."""
    directory = pathlib.Path(results_dir)
    report = build_report(directory)
    path = (
        pathlib.Path(output)
        if output is not None
        else directory / "REPORT.md"
    )
    path.write_text(report.text)
    return path
