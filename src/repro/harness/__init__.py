"""Experiment harness: one regenerator per paper table/figure (E1-E8)."""

from repro.harness.figures import (
    Figure2Result,
    Figure3Result,
    OracleAccuracyResult,
    TuningImpactResult,
    figure2,
    figure3,
    oracle_accuracy,
    tuning_impact,
)
from repro.harness.runtime import (
    DynamicAdaptationResult,
    PerObjectResult,
    QOptVsStaticResult,
    ReconfigOverheadResult,
    dynamic_adaptation,
    per_object_vs_global,
    qopt_vs_static,
    reconfiguration_overhead,
)
from repro.harness.report import ReproductionReport, build_report, write_report
from repro.harness.replication import (
    ReplicatedChoice,
    ReplicatedScalar,
    replicate_choice,
    replicate_scalar,
)
from repro.harness.tables import render_series, render_table

__all__ = [
    "DynamicAdaptationResult",
    "Figure2Result",
    "Figure3Result",
    "OracleAccuracyResult",
    "PerObjectResult",
    "QOptVsStaticResult",
    "ReconfigOverheadResult",
    "ReplicatedChoice",
    "ReplicatedScalar",
    "ReproductionReport",
    "TuningImpactResult",
    "dynamic_adaptation",
    "figure2",
    "figure3",
    "oracle_accuracy",
    "per_object_vs_global",
    "qopt_vs_static",
    "reconfiguration_overhead",
    "render_series",
    "render_table",
    "replicate_choice",
    "replicate_scalar",
    "build_report",
    "tuning_impact",
    "write_report",
]
