"""Multi-seed replication of experiments.

One simulator run is one sample; conclusions like "W=1 is optimal for
this workload" should hold across seeds.  These helpers rerun a
measurement under several seeds and report mean/std (for scalar
metrics) or the modal answer with its support (for categorical ones,
e.g. the best write quorum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from repro.common.errors import ExperimentError

T = TypeVar("T")


@dataclass(frozen=True)
class ReplicatedScalar:
    """Mean/std summary of a scalar metric over several seeds."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self.values) / (
            len(self.values) - 1
        )
        return math.sqrt(variance)

    @property
    def relative_std(self) -> float:
        mean = self.mean
        return self.std / mean if mean else 0.0

    def __str__(self) -> str:
        return f"{self.mean:.1f} +- {self.std:.1f} (n={len(self.values)})"


@dataclass(frozen=True)
class ReplicatedChoice:
    """Modal categorical answer over several seeds."""

    answers: tuple

    @property
    def mode(self) -> Any:
        counts: dict = {}
        for answer in self.answers:
            counts[answer] = counts.get(answer, 0) + 1
        return max(counts.items(), key=lambda kv: kv[1])[0]

    @property
    def support(self) -> float:
        """Fraction of seeds agreeing with the modal answer."""
        mode = self.mode
        return sum(1 for a in self.answers if a == mode) / len(self.answers)

    @property
    def unanimous(self) -> bool:
        return len(set(self.answers)) == 1


def replicate_scalar(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> ReplicatedScalar:
    """Run ``measure(seed)`` for every seed; summarize the results."""
    if not seeds:
        raise ExperimentError("need at least one seed")
    return ReplicatedScalar(values=tuple(measure(seed) for seed in seeds))


def replicate_choice(
    choose: Callable[[int], T], seeds: Sequence[int]
) -> ReplicatedChoice:
    """Run ``choose(seed)`` for every seed; summarize the answers."""
    if not seeds:
        raise ExperimentError("need at least one seed")
    return ReplicatedChoice(answers=tuple(choose(seed) for seed in seeds))
