"""Plain-text table rendering for experiment reports.

Every experiment regenerator produces its rows through this module so
that benchmark output, EXPERIMENTS.md and the examples all share one
format.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ExperimentError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with a header rule, e.g.::

        workload | W=1  | W=2
        ---------+------+-----
        ycsb-a   | 1.00 | 0.97
    """
    if not headers:
        raise ExperimentError("table needs at least one column")
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        cells.append([str(value) for value in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        cells[0][c].ljust(widths[c]) for c in range(len(headers))
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * widths[c] for c in range(len(headers))))
    for row_cells in cells[1:]:
        lines.append(
            " | ".join(
                row_cells[c].ljust(widths[c]) for c in range(len(headers))
            )
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[float, float]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Two-column numeric series (a text stand-in for a line plot)."""
    rows = [
        (f"{x:.{precision}f}", f"{y:.{precision}f}") for x, y in points
    ]
    return render_table([x_label, y_label], rows, title=title)


def format_ratio(value: float) -> str:
    return f"{value:.2f}"


def format_percent(value: float) -> str:
    return f"{value * 100:.1f}%"
