"""Regenerators for the paper's motivating figures and the Oracle study.

* :func:`figure2` — E1: normalized throughput of Workloads A/B/C across
  the five strict quorum configurations (paper Figure 2), measured on
  the discrete-event simulator.
* :func:`figure3` — E2: optimal write quorum vs. write percentage over
  the ~170-workload sweep (paper Figure 3), including the linear-fit
  residual analysis that motivates the decision tree.
* :func:`tuning_impact` — E3: best/worst throughput ratio per workload
  (the paper's "up to 5x" claim).
* :func:`oracle_accuracy` — E4: cross-validated accuracy of the
  decision-tree Oracle against the linear/majority/static baselines
  (ablation A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.mva import MvaThroughputModel, WorkloadPoint
from repro.analysis.optimal import ConfigSweepResult, sweep_configurations
from repro.common.config import ClusterConfig
from repro.harness.tables import render_table
from repro.oracle.baselines import (
    FixedRuleBaseline,
    LinearBaseline,
    MajorityBaseline,
)
from repro.oracle.boosting import BoostedTreeClassifier
from repro.oracle.dataset import TrainingSet, generate_training_set
from repro.oracle.decision_tree import DecisionTreeClassifier
from repro.oracle.validation import ValidationReport, compare_models
from repro.workloads import ycsb
from repro.workloads.generator import WorkloadSpec, sweep_specs

# ---------------------------------------------------------------------------
# E1 — Figure 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Result:
    """Normalized throughput per (workload, write-quorum) cell."""

    sweeps: dict[str, ConfigSweepResult]

    def normalized(self) -> dict[str, dict[int, float]]:
        return {name: sweep.normalized() for name, sweep in self.sweeps.items()}

    def best_write_quorums(self) -> dict[str, int]:
        return {
            name: sweep.best_write_quorum
            for name, sweep in self.sweeps.items()
        }

    def render(self) -> str:
        quorums = sorted(next(iter(self.sweeps.values())).throughputs)
        headers = ["workload"] + [f"R={6 - w},W={w}" for w in quorums] + [
            "best W"
        ]
        rows = []
        for name, sweep in self.sweeps.items():
            normalized = sweep.normalized()
            rows.append(
                [name]
                + [f"{normalized[w]:.2f}" for w in quorums]
                + [sweep.best_write_quorum]
            )
        return render_table(
            headers,
            rows,
            title="E1 / Figure 2: normalized throughput per quorum config",
        )


def figure2(
    cluster_config: Optional[ClusterConfig] = None,
    object_size: int = 64 * 1024,
    num_objects: int = 128,
    duration: float = 8.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> Figure2Result:
    """Measure Workloads A, B and C across all configurations (DES)."""
    base = cluster_config or ClusterConfig(
        num_proxies=1, clients_per_proxy=10
    )
    sweeps: dict[str, ConfigSweepResult] = {}
    for spec in ycsb.figure2_workloads(
        object_size=object_size, num_objects=num_objects
    ):
        sweeps[spec.name] = sweep_configurations(
            spec,
            cluster_config=base,
            duration=duration,
            warmup=warmup,
            seed=seed,
        )
    return Figure2Result(sweeps=sweeps)


# ---------------------------------------------------------------------------
# E2 — Figure 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure3Result:
    """The optimal-W scatter and how badly a line fits it."""

    #: (write_percentage, object_size, optimal_write_quorum) triples.
    points: list[tuple[float, int, int]]
    #: Pearson correlation between write percentage and optimal W.
    pearson_r: float
    #: Coefficient of determination of the best linear fit W ~ write%.
    linear_r_squared: float
    #: Fraction of points the (rounded) linear fit misclassifies.
    linear_misclassification: float

    def distinct_optima_at(self, write_percentage: float) -> set[int]:
        """Optimal quorums observed at one write percentage (spread =>
        the same write ratio maps to different optima as size varies)."""
        return {
            w for pct, _size, w in self.points if abs(pct - write_percentage) < 1e-9
        }

    def render(self, sample: int = 20) -> str:
        step = max(1, len(self.points) // sample)
        rows = [
            (f"{pct:.0f}%", size, w)
            for pct, size, w in self.points[::step]
        ]
        table = render_table(
            ["write %", "object size (B)", "optimal W"],
            rows,
            title=(
                "E2 / Figure 3: optimal write quorum vs write percentage "
                f"({len(self.points)} workloads; showing every {step}th)"
            ),
        )
        summary = (
            f"\npearson r(write%, W*) = {self.pearson_r:.3f}; "
            f"linear fit R^2 = {self.linear_r_squared:.3f}; "
            f"linear rule misclassifies {self.linear_misclassification * 100:.1f}% "
            "of workloads -> no clean linear dependency (motivates the tree)"
        )
        return table + summary


def figure3(
    cluster_config: Optional[ClusterConfig] = None,
    specs: Optional[Sequence[WorkloadSpec]] = None,
    clients: Optional[int] = None,
) -> Figure3Result:
    """Label the sweep grid with optimal quorums (MVA companion model)."""
    model = MvaThroughputModel(cluster_config)
    specs = specs if specs is not None else sweep_specs()
    points: list[tuple[float, int, int]] = []
    for spec in specs:
        best = model.best_write_quorum(
            WorkloadPoint(
                write_ratio=spec.write_ratio, object_size=spec.object_size
            ),
            clients=clients,
        )
        points.append((spec.write_percentage, spec.object_size, best))
    percentages = np.array([p for p, _s, _w in points])
    optima = np.array([w for _p, _s, w in points], dtype=np.float64)
    if len(points) > 1 and percentages.std() > 0 and optima.std() > 0:
        pearson = float(np.corrcoef(percentages, optima)[0, 1])
    else:
        pearson = 0.0
    design = np.vstack([percentages, np.ones_like(percentages)]).T
    coef, *_ = np.linalg.lstsq(design, optima, rcond=None)
    fitted = design @ coef
    ss_res = float(((optima - fitted) ** 2).sum())
    ss_tot = float(((optima - optima.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    rounded = np.clip(np.round(fitted), optima.min(), optima.max())
    misclassified = float((rounded != optima).mean())
    return Figure3Result(
        points=points,
        pearson_r=pearson,
        linear_r_squared=r_squared,
        linear_misclassification=misclassified,
    )


# ---------------------------------------------------------------------------
# E3 — tuning impact ("up to 5x")
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TuningImpactResult:
    """Best/worst throughput ratios across the sweep."""

    #: (write_percentage, object_size, impact_ratio) per workload.
    impacts: list[tuple[float, int, float]]

    @property
    def max_impact(self) -> float:
        return max(ratio for _p, _s, ratio in self.impacts)

    @property
    def median_impact(self) -> float:
        ordered = sorted(ratio for _p, _s, ratio in self.impacts)
        return ordered[len(ordered) // 2]

    def fraction_above(self, threshold: float) -> float:
        above = sum(1 for _p, _s, r in self.impacts if r >= threshold)
        return above / len(self.impacts)

    def render(self) -> str:
        rows = [
            ("max impact (best/worst)", f"{self.max_impact:.2f}x"),
            ("median impact", f"{self.median_impact:.2f}x"),
            (">= 2x share", f"{self.fraction_above(2.0) * 100:.0f}%"),
            (">= 3x share", f"{self.fraction_above(3.0) * 100:.0f}%"),
            ("workloads", str(len(self.impacts))),
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title="E3: impact of quorum tuning across the sweep "
            '(paper: "up to 5x")',
        )


def tuning_impact(
    cluster_config: Optional[ClusterConfig] = None,
    specs: Optional[Sequence[WorkloadSpec]] = None,
    clients: Optional[int] = None,
) -> TuningImpactResult:
    """Best/worst throughput ratio per sweep workload (MVA model)."""
    model = MvaThroughputModel(cluster_config)
    specs = specs if specs is not None else sweep_specs()
    impacts: list[tuple[float, int, float]] = []
    for spec in specs:
        sweep = model.config_sweep(
            WorkloadPoint(
                write_ratio=spec.write_ratio, object_size=spec.object_size
            ),
            clients=clients,
        )
        best = max(sweep.values())
        worst = min(sweep.values())
        impacts.append(
            (
                spec.write_percentage,
                spec.object_size,
                best / worst if worst > 0 else float("inf"),
            )
        )
    return TuningImpactResult(impacts=impacts)


# ---------------------------------------------------------------------------
# E4 — Oracle accuracy (ablation A1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OracleAccuracyResult:
    """Cross-validation scores for the tree and its baselines."""

    reports: list[ValidationReport]
    label_distribution: dict[int, int]

    def report_for(self, model_name: str) -> ValidationReport:
        for report in self.reports:
            if report.model_name == model_name:
                return report
        raise KeyError(model_name)

    def render(self) -> str:
        rows = [report.row() for report in self.reports]
        table = render_table(
            ["model", "accuracy", "within-1", "mean norm. thr", "worst norm. thr"],
            rows,
            title="E4: Oracle prediction quality (10-fold CV over the sweep)",
        )
        return (
            table
            + "\nlabel distribution (optimal W -> #workloads): "
            + str(self.label_distribution)
        )


def oracle_accuracy(
    dataset: Optional[TrainingSet] = None,
    cluster_config: Optional[ClusterConfig] = None,
    folds: int = 10,
    seed: int = 0,
    include_boosted: bool = True,
) -> OracleAccuracyResult:
    """Score the C4.5 tree, the boosted (C5.0-style) ensemble and the
    baselines with k-fold cross-validation."""
    if dataset is None:
        dataset = generate_training_set(
            model=MvaThroughputModel(cluster_config)
        )
    factories = [("decision tree (C4.5)", lambda: DecisionTreeClassifier())]
    if include_boosted:
        factories.append(
            ("boosted trees (C5.0)", lambda: BoostedTreeClassifier(n_rounds=8))
        )
    factories.extend(
        [
            ("linear fit", lambda: LinearBaseline()),
            ("majority class", lambda: MajorityBaseline()),
            ("static W=3", lambda: FixedRuleBaseline(3)),
        ]
    )
    reports = compare_models(dataset, factories, folds=folds, seed=seed)
    return OracleAccuracyResult(
        reports=reports, label_distribution=dataset.label_distribution()
    )
