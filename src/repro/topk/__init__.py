"""Probabilistic top-k stream analysis and proxy workload monitoring."""

from repro.topk.space_saving import SpaceSaving, TopKEntry
from repro.topk.stats import ProxyStatsRecorder

__all__ = ["ProxyStatsRecorder", "SpaceSaving", "TopKEntry"]
