"""Space-Saving: approximate top-k tracking over a stream.

The paper identifies per-proxy hotspots with "a state of the art stream
analysis algorithm [28] that permits to track the top-k most frequent
items of a stream in an approximate, but very efficient manner" — the
Space-Saving algorithm of Metwally, Agrawal and El Abbadi.  This is a
from-scratch implementation with the algorithm's classic guarantees:

* at most ``capacity`` counters are kept, regardless of stream size;
* every estimated count *over*-estimates: ``true <= estimate``;
* the over-estimation error of any tracked item is at most
  ``n / capacity`` where ``n`` is the stream length;
* any item with true frequency above ``n / capacity`` is guaranteed to
  be tracked.

The min-counter needed on eviction is found through a lazy min-heap:
stale heap entries are skipped on pop, giving amortized O(log capacity)
updates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from repro.common.errors import ConfigurationError

ItemT = TypeVar("ItemT", bound=Hashable)


@dataclass
class _Counter:
    count: int
    error: int


@dataclass(frozen=True)
class TopKEntry(Generic[ItemT]):
    """One tracked item with its estimated count and error bound.

    The true count lies in ``[count - error, count]``.
    """

    item: ItemT
    count: int
    error: int

    @property
    def guaranteed_count(self) -> int:
        return self.count - self.error


class SpaceSaving(Generic[ItemT]):
    """Fixed-memory frequent-items sketch."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("SpaceSaving capacity must be >= 1")
        self._capacity = capacity
        self._counters: dict[ItemT, _Counter] = {}
        # Lazy min-heap of (count, tiebreak, item); entries may be stale.
        self._heap: list[tuple[int, int, ItemT]] = []
        self._tiebreak = itertools.count()
        self._total = 0

    # -- updates -----------------------------------------------------------

    def update(self, item: ItemT, weight: int = 1) -> None:
        """Observe ``weight`` occurrences of ``item``."""
        if weight < 1:
            raise ConfigurationError("weight must be >= 1")
        self._total += weight
        counter = self._counters.get(item)
        if counter is not None:
            counter.count += weight
        elif len(self._counters) < self._capacity:
            counter = _Counter(count=weight, error=0)
            self._counters[item] = counter
        else:
            evicted_count = self._evict_min()
            counter = _Counter(count=evicted_count + weight, error=evicted_count)
            self._counters[item] = counter
        heapq.heappush(
            self._heap, (counter.count, next(self._tiebreak), item)
        )

    def _evict_min(self) -> int:
        """Remove the minimum-count item; return its count."""
        while self._heap:
            count, _tiebreak, item = heapq.heappop(self._heap)
            counter = self._counters.get(item)
            if counter is not None and counter.count == count:
                del self._counters[item]
                return count
        raise AssertionError("heap drained while counters remain")

    # -- queries ------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total(self) -> int:
        """Total stream weight observed."""
        return self._total

    @property
    def tracked_count(self) -> int:
        return len(self._counters)

    def __contains__(self, item: ItemT) -> bool:
        return item in self._counters

    def estimate(self, item: ItemT) -> int:
        """Estimated count (0 if untracked); never underestimates."""
        counter = self._counters.get(item)
        return counter.count if counter is not None else 0

    def error_bound(self) -> int:
        """Maximum possible overestimation for any tracked item."""
        if self._capacity == 0:
            return 0
        return self._total // self._capacity

    def entries(self) -> list[TopKEntry[ItemT]]:
        """All tracked items, most frequent first."""
        ordered = sorted(
            self._counters.items(), key=lambda kv: kv[1].count, reverse=True
        )
        return [
            TopKEntry(item=item, count=counter.count, error=counter.error)
            for item, counter in ordered
        ]

    def top(self, k: int) -> list[TopKEntry[ItemT]]:
        """The ``k`` items with the highest estimated counts."""
        if k < 0:
            raise ConfigurationError("k must be >= 0")
        return self.entries()[:k]

    def clear(self) -> None:
        self._counters.clear()
        self._heap.clear()
        self._total = 0
