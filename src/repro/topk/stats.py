"""Proxy-side workload monitoring (the proxy half of Algorithm 1).

Each proxy records every client access with three granularities, keeping
the monitoring overhead independent of the object population — the
scalability requirement of Section 3:

* a bounded :class:`~repro.topk.space_saving.SpaceSaving` summary, used
  to nominate the next round's hotspot candidates (``topK_i^r``);
* exact read/write/size counters for the *monitored set* — the top-k
  objects the Autonomic Manager asked this proxy to profile during the
  current round (``statsTopK_i``);
* a single aggregate bucket for the tail — every access to an object
  that is neither monitored nor already individually optimized
  (``statsTail_i``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.types import ObjectId, OpType
from repro.sds.messages import AggregateStats, ObjectStats
from repro.topk.space_saving import SpaceSaving


@dataclass
class _AccessTally:
    """Mutable read/write/size tallies for one object or bucket."""

    reads: int = 0
    writes: int = 0
    size_sum: float = 0.0
    size_samples: int = 0

    def record(self, op_type: OpType, size: int) -> None:
        if op_type is OpType.WRITE:
            self.writes += 1
        else:
            self.reads += 1
        if size > 0:
            self.size_sum += size
            self.size_samples += 1

    def record_size(self, size: int) -> None:
        if size > 0:
            self.size_sum += size
            self.size_samples += 1

    @property
    def mean_size(self) -> float:
        if self.size_samples == 0:
            return 0.0
        return self.size_sum / self.size_samples

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.size_sum = 0.0
        self.size_samples = 0


@dataclass
class _MonitoredTally(_AccessTally):
    object_id: ObjectId = ""

    def to_stats(self) -> ObjectStats:
        return ObjectStats(
            object_id=self.object_id,
            reads=self.reads,
            writes=self.writes,
            mean_size=self.mean_size,
        )


class ProxyStatsRecorder:
    """Per-proxy access monitor feeding the Autonomic Manager."""

    def __init__(self, top_k: int, summary_capacity: int) -> None:
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        if summary_capacity < top_k:
            raise ConfigurationError("summary_capacity must be >= top_k")
        self._top_k = top_k
        self._summary: SpaceSaving[ObjectId] = SpaceSaving(summary_capacity)
        self._monitored: dict[ObjectId, _MonitoredTally] = {}
        self._optimized: frozenset[ObjectId] = frozenset()
        self._tail = _AccessTally()
        self._last_object: ObjectId = ""
        self._last_in_tail = False

    # -- recording (hot path, called once per client access) -----------------

    def record_access(
        self, object_id: ObjectId, op_type: OpType, size: int
    ) -> None:
        """Record one client access.

        For reads the size is unknown until the reply arrives; callers
        pass 0 and follow up with :meth:`record_access_size`.
        """
        self._summary.update(object_id)
        tally = self._monitored.get(object_id)
        self._last_object = object_id
        if tally is not None:
            tally.record(op_type, size)
            self._last_in_tail = False
        elif object_id in self._optimized:
            self._last_in_tail = False
        else:
            self._tail.record(op_type, size)
            self._last_in_tail = True

    def record_access_size(self, object_id: ObjectId, size: int) -> None:
        """Attach the observed size to the access just recorded."""
        if size <= 0 or object_id != self._last_object:
            return
        tally = self._monitored.get(object_id)
        if tally is not None:
            tally.record_size(size)
        elif self._last_in_tail:
            self._tail.record_size(size)

    # -- control-plane updates --------------------------------------------------

    def set_monitored(self, object_ids: frozenset[ObjectId]) -> None:
        """Install the monitored set for the next round (NEWTOPK)."""
        self._monitored = {
            object_id: _MonitoredTally(object_id=object_id)
            for object_id in object_ids
        }

    def set_optimized(self, object_ids: frozenset[ObjectId]) -> None:
        """Objects already holding per-object overrides (out of the tail)."""
        self._optimized = object_ids

    @property
    def monitored(self) -> frozenset[ObjectId]:
        return frozenset(self._monitored)

    # -- round snapshot (NEWROUND) -------------------------------------------------

    def snapshot_round(
        self, already_optimized: frozenset[ObjectId]
    ) -> tuple[dict[ObjectId, int], tuple[ObjectStats, ...], AggregateStats]:
        """Produce the proxy's ROUNDSTATS payload and reset round counters.

        Returns ``(top_k_candidates, monitored_stats, tail_stats)`` where
        candidates are the next hotspots that are neither already
        optimized nor currently monitored (Algorithm 1: "the (next) top-k
        objects that have not been optimized yet").
        """
        excluded = already_optimized | frozenset(self._monitored)
        candidates: dict[ObjectId, int] = {}
        for entry in self._summary.entries():
            if entry.item in excluded:
                continue
            candidates[entry.item] = entry.count
            if len(candidates) >= self._top_k:
                break
        monitored_stats = tuple(
            tally.to_stats() for tally in self._monitored.values()
        )
        tail_stats = AggregateStats(
            reads=self._tail.reads,
            writes=self._tail.writes,
            mean_size=self._tail.mean_size,
        )
        for tally in self._monitored.values():
            tally.reset()
        self._tail.reset()
        return candidates, monitored_stats, tail_stats
