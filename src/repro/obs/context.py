"""The Observability bundle the instrumented modules share.

One :class:`Observability` object carries a tracer, a metrics registry
and the pre-bound hot-path instruments, so instrumentation sites pay a
single attribute load plus (for histograms) one bucket increment — no
name lookups or label resolution per operation.  Passing ``obs=None``
(the default everywhere) disables instrumentation entirely; passing
``Observability(tracing=False)`` keeps the O(1) histograms but makes
every span call a no-op returning the shared null span.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class Observability:
    """Tracer + registry + the hot-path instruments, as one handle.

    Build it before the cluster, hand it to
    :class:`~repro.sds.cluster.SwiftCluster`; the cluster binds the
    simulated clock and wires every node, the network and the event
    timeline to it.
    """

    def __init__(
        self,
        tracing: bool = True,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(clock=clock, enabled=tracing)

        registry_ = self.registry
        # Per-phase latency histograms (the BENCH_obs.json phases).
        self.gather_p1 = registry_.histogram(
            "qopt_gather_seconds",
            help="quorum gather latency by phase",
            phase="p1",
        )
        self.gather_p2 = registry_.histogram(
            "qopt_gather_seconds", phase="p2"
        )
        self.stabilise = registry_.histogram(
            "qopt_stabilise_seconds",
            help="ABD phase-2 write-back latency",
        )
        self.reconfig_change = registry_.histogram(
            "qopt_reconfig_seconds",
            help="reconfiguration protocol latency by phase",
            phase="change",
        )
        self.reconfig_quarantine = registry_.histogram(
            "qopt_reconfig_seconds", phase="quarantine"
        )
        # End-to-end and per-tier operation latencies.
        self.client_read = registry_.histogram(
            "qopt_client_op_seconds",
            help="client-observed operation latency",
            op="read",
        )
        self.client_write = registry_.histogram(
            "qopt_client_op_seconds", op="write"
        )
        self.replica_read = registry_.histogram(
            "qopt_replica_op_seconds",
            help="storage-node service latency (queue + disk)",
            op="read",
        )
        self.replica_write = registry_.histogram(
            "qopt_replica_op_seconds", op="write"
        )
        self.net_delivery = registry_.histogram(
            "qopt_network_delivery_seconds",
            help="send-to-delivery latency of network messages",
        )
        # Degradation counters.
        self.client_retries = registry_.counter(
            "qopt_client_retries_total",
            help="client attempts beyond the first",
        )
        self.client_failures = registry_.counter(
            "qopt_client_failures_total",
            help="operations abandoned after exhausting retries",
        )
        self.gather_timeouts = registry_.counter(
            "qopt_gather_timeouts_total",
            help="quorum gathers that hit the proxy deadline",
        )
        self.faults = registry_.counter(
            "qopt_nemesis_faults_total",
            help="nemesis fault events bridged from the event timeline",
        )

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at the simulated clock."""
        self.tracer.bind_clock(clock)
