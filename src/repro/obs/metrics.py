"""Metrics primitives: counters, gauges and fixed-bucket histograms.

The histogram is HDR-style: bucket bounds are log-linear (nine linear
sub-buckets per decade), so relative quantile error is bounded by the
sub-bucket width (~11%) across the whole dynamic range while inserts
stay O(log buckets) — one :func:`bisect.bisect_left` into a fixed
bounds tuple plus an integer increment.  This replaces the ad-hoc
"append to a list of floats, sort at query time" accounting that the
hot paths used to pay for.

Snapshots are immutable and mergeable: per-scenario registries can be
folded into cross-run aggregates without touching the live series.

Everything here is deterministic — no wall clocks, no randomness — so
identical simulated runs produce identical snapshots and exports.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.common.errors import ConfigurationError

#: Canonical label form: sorted ``(key, value)`` pairs.
Labels = Tuple[Tuple[str, str], ...]


def default_latency_bounds() -> Tuple[float, ...]:
    """Log-linear bucket bounds from 1 µs to 90 s (nine per decade).

    Values above the last bound land in the overflow bucket; quantiles
    there are clamped to the observed maximum.
    """
    bounds: List[float] = []
    for exponent in range(-6, 2):
        scale = 10.0**exponent
        for mantissa in range(1, 10):
            bounds.append(mantissa * scale)
    return tuple(bounds)


_DEFAULT_BOUNDS = default_latency_bounds()


def _canonical_labels(labels: Mapping[str, str]) -> Labels:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable, mergeable view of a histogram's state."""

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    count: int
    total: float
    minimum: float
    maximum: float

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated quantile from the bucket counts."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"percentile fraction {fraction} out of range"
            )
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.maximum
                )
                low = max(low, self.minimum) if cumulative == 0 else low
                high = min(high, self.maximum)
                if high <= low:
                    return min(max(low, self.minimum), self.maximum)
                within = (target - cumulative) / bucket_count
                return low + within * (high - low)
            cumulative += bucket_count
        return self.maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts)
            ),
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (used by ``BENCH_obs.json``)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.maximum if self.count else 0.0,
        }


class Histogram:
    """Fixed-bucket latency histogram with O(log buckets) inserts."""

    __slots__ = ("bounds", "_counts", "count", "total", "_min", "_max")

    def __init__(self, bounds: Optional[Tuple[float, ...]] = None) -> None:
        chosen = bounds if bounds is not None else _DEFAULT_BOUNDS
        if len(chosen) < 1:
            raise ConfigurationError("histogram needs at least one bound")
        if any(b <= a for a, b in zip(chosen, chosen[1:])):
            raise ConfigurationError(
                "histogram bounds must be strictly increasing"
            )
        self.bounds = chosen
        # One bucket per bound (values <= bound) plus an overflow bucket.
        self._counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError("histograms record non-negative values")
        self._counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def percentile(self, fraction: float) -> float:
        return self.snapshot().percentile(fraction)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self._counts),
            count=self.count,
            total=self.total,
            minimum=self._min if self.count else 0.0,
            maximum=self._max if self.count else 0.0,
        )

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if self.bounds != other.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)


Metric = Union[Counter, Gauge, Histogram]


@dataclass
class _Family:
    """All series of one metric name (same kind, help and bounds)."""

    name: str
    kind: str
    help: str
    series: Dict[Labels, Metric]


class MetricsRegistry:
    """Named, labelled metric series with deterministic iteration.

    Re-requesting a (name, labels) pair returns the existing instrument;
    requesting an existing name with a different kind is an error.
    Collection order is sorted by (name, labels), so exports are stable
    regardless of creation order.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        metric = self._series(name, "counter", help, labels, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        metric = self._series(name, "gauge", help, labels, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Tuple[float, ...]] = None,
        **labels: str,
    ) -> Histogram:
        metric = self._series(
            name, "histogram", help, labels, lambda: Histogram(bounds)
        )
        assert isinstance(metric, Histogram)
        return metric

    def _series(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Mapping[str, str],
        factory: "type[Metric] | object",
    ) -> Metric:
        family = self._families.get(name)
        if family is None:
            family = _Family(name=name, kind=kind, help=help, series={})
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if help and not family.help:
            family.help = help
        key = _canonical_labels(labels)
        metric = family.series.get(key)
        if metric is None:
            metric = factory()  # type: ignore[operator]
            family.series[key] = metric
        return metric

    # -- iteration and snapshots --------------------------------------------

    def families(self) -> List[_Family]:
        """Families sorted by name (deterministic export order)."""
        return [
            self._families[name] for name in sorted(self._families)
        ]

    def collect(self) -> Iterator[Tuple[str, str, Labels, Metric]]:
        """Yield ``(name, kind, labels, metric)`` in sorted order."""
        for family in self.families():
            for labels in sorted(family.series):
                yield family.name, family.kind, labels, family.series[labels]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of every series (deterministic key order)."""
        out: Dict[str, object] = {}
        for name, kind, labels, metric in self.collect():
            label_text = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{label_text}}}" if label_text else name
            if isinstance(metric, Histogram):
                out[key] = dict(metric.snapshot().as_dict(), kind=kind)
            else:
                out[key] = {"kind": kind, "value": metric.value}
        return out
