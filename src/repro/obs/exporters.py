"""Deterministic exporters: Prometheus text, trace JSON, Chrome traces.

Every exporter sorts its output and serialises with a fixed float
format, so two runs with the same seed produce byte-identical files —
the property the exporter round-trip tests pin.

The Chrome export follows the ``trace_event`` format (the JSON array
flavour wrapped in ``{"traceEvents": [...]}``) that Perfetto and
``chrome://tracing`` open directly: spans become ``"X"`` (complete)
events with microsecond timestamps, annotations become ``"i"``
(instant) events, and ``"M"`` metadata events name the process (span
category) and thread (node) rows.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


def _format_value(value: float) -> str:
    """Float formatting that round-trips exactly through ``float()``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


# -- Prometheus text exposition format -------------------------------------


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    help_by_name = {
        family.name: family.help for family in registry.families()
    }
    previous_name = None
    for name, kind, labels, metric in registry.collect():
        if name != previous_name:
            if help_by_name.get(name):
                lines.append(f"# HELP {name} {help_by_name[name]}")
            lines.append(f"# TYPE {name} {kind}")
            previous_name = name
        if isinstance(metric, Histogram):
            snapshot = metric.snapshot()
            cumulative = 0
            for bound, count in zip(snapshot.bounds, snapshot.counts):
                cumulative += count
                bucket_labels = labels + (("le", _format_value(bound)),)
                lines.append(
                    f"{name}_bucket{_label_text(bucket_labels)} {cumulative}"
                )
            bucket_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{name}_bucket{_label_text(bucket_labels)} {snapshot.count}"
            )
            lines.append(
                f"{name}_sum{_label_text(labels)} "
                f"{_format_value(snapshot.total)}"
            )
            lines.append(f"{name}_count{_label_text(labels)} {snapshot.count}")
        else:
            lines.append(
                f"{name}{_label_text(labels)} {_format_value(metric.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition-format samples back into ``{sample_line: value}``.

    Only what :func:`to_prometheus_text` emits is supported — enough for
    the round-trip tests to compare every exported sample by value.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, value_text = line.rsplit(" ", 1)
        except ValueError as error:
            raise ConfigurationError(
                f"unparseable sample line: {line!r}"
            ) from error
        samples[series] = float(value_text)
    return samples


def registry_samples(registry: MetricsRegistry) -> Dict[str, float]:
    """The sample map :func:`to_prometheus_text` would export.

    Computed straight from the live metrics, for comparing against
    :func:`parse_prometheus_text` output.
    """
    return parse_prometheus_text(to_prometheus_text(registry))


# -- JSON exports ----------------------------------------------------------


def to_metrics_json(registry: MetricsRegistry) -> str:
    """Registry snapshot as deterministic (sorted, compact) JSON."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2)


def to_trace_json(tracer: Tracer) -> str:
    """Spans + annotations as deterministic JSON (our own schema)."""
    spans = [
        {
            "name": span.name,
            "category": span.category,
            "node": span.node,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start": span.start,
            "end": span.end,
            "status": span.status,
            "attributes": dict(sorted(span.attributes.items())),
        }
        for span in tracer.spans
    ]
    annotations = [
        {
            "time": annotation.time,
            "name": annotation.name,
            "category": annotation.category,
            "attributes": dict(annotation.attributes),
        }
        for annotation in tracer.annotations
    ]
    return json.dumps(
        {"spans": spans, "annotations": annotations},
        sort_keys=True,
        indent=2,
    )


# -- Chrome trace_event format ---------------------------------------------

#: Microseconds per simulated second (Chrome ``ts`` is in microseconds).
_US = 1e6


def to_chrome_trace(tracer: Tracer) -> List[Dict[str, object]]:
    """Span/annotation events in Chrome ``trace_event`` dict form.

    Process ids map span categories, thread ids map nodes, so Perfetto
    renders one swimlane per simulated process.  Events are sorted by
    timestamp (ties broken by span id) so ``ts`` is monotonic.
    """
    categories: Dict[str, int] = {}
    threads: Dict[Tuple[str, str], int] = {}

    def process_id(category: str) -> int:
        if category not in categories:
            categories[category] = len(categories) + 1
        return categories[category]

    def thread_id(category: str, node: str) -> int:
        key = (category, node)
        if key not in threads:
            threads[key] = len(threads) + 1
        return threads[key]

    timed: List[Tuple[float, int, Dict[str, object]]] = []
    for span in tracer.spans:
        if not span.finished:
            continue
        pid = process_id(span.category)
        tid = thread_id(span.category, span.node)
        args: Dict[str, object] = dict(sorted(span.attributes.items()))
        args["status"] = span.status
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        timed.append(
            (
                span.start,
                span.span_id,
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": span.duration * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                },
            )
        )
    for index, annotation in enumerate(tracer.annotations):
        pid = process_id(annotation.category)
        tid = thread_id(annotation.category, "events")
        timed.append(
            (
                annotation.time,
                # Annotations sort after any span starting at the same
                # instant (span ids start at 1).
                1_000_000_000 + index,
                {
                    "name": annotation.name,
                    "cat": annotation.category,
                    "ph": "i",
                    "s": "g",
                    "ts": annotation.time * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(annotation.attributes),
                },
            )
        )
    timed.sort(key=lambda item: (item[0], item[1]))

    metadata: List[Dict[str, object]] = []
    for category in sorted(categories):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": categories[category],
                "tid": 0,
                "ts": 0,
                "args": {"name": category},
            }
        )
    for category, node in sorted(threads):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": categories[category],
                "tid": threads[(category, node)],
                "ts": 0,
                "args": {"name": node or category},
            }
        )
    return metadata + [event for _ts, _tie, event in timed]


def to_chrome_trace_json(tracer: Tracer) -> str:
    """Chrome ``trace_event`` JSON, deterministic byte-for-byte."""
    return json.dumps(
        {"traceEvents": to_chrome_trace(tracer), "displayTimeUnit": "ms"},
        sort_keys=True,
        indent=2,
    )
