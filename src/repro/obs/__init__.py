"""Observability: tracing, metrics and the perf-regression harness.

The subsystem has three legs (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` in *simulated*
  time, with context propagation through the full operation path
  (client attempt → proxy → quorum gathers → per-replica RPC →
  stabilise write-back → reconfiguration epochs) and deterministic
  exports (JSON and Chrome ``trace_event`` for Perfetto);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  HDR-style latency histograms with mergeable snapshots, replacing
  ad-hoc list-of-floats accounting with O(1) inserts;
* :mod:`repro.obs.bench` — the ``python -m repro bench`` scenario
  matrix that writes ``BENCH_obs.json`` (imported lazily; it pulls in
  the whole simulator).

:class:`Observability` bundles one tracer and one registry with the
pre-bound hot-path instruments the instrumented modules use.  Every
instrumentation hook is behind an ``if obs is not None`` guard and the
default is ``None``, so the uninstrumented fast path stays
allocation-free.
"""

from repro.obs.context import Observability
from repro.obs.exporters import (
    parse_prometheus_text,
    to_chrome_trace,
    to_chrome_trace_json,
    to_prometheus_text,
    to_trace_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    default_latency_bounds,
)
from repro.obs.trace import NULL_SPAN, Annotation, Span, SpanContext, Tracer

__all__ = [
    "Annotation",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "SpanContext",
    "Tracer",
    "default_latency_bounds",
    "parse_prometheus_text",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_prometheus_text",
    "to_trace_json",
]
