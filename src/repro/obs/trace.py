"""Tracing in simulated time: spans, annotations, context propagation.

A :class:`Span` is one timed stage of an operation (a client attempt, a
proxy-side quorum gather, a replica RPC, a reconfiguration phase).
Spans form trees: a child created with ``parent=span.context()`` shares
the parent's trace id and records the parent's span id, and the context
tuple is small and picklable so it can ride on a network
:class:`~repro.sim.network.Envelope` across simulated processes.

An :class:`Annotation` is an instant event — nemesis faults bridge into
traces this way (via :meth:`repro.metrics.timeline.EventTimeline
.bind_tracer`), so a Perfetto view shows each fault overlapping the
client-retry spans it caused.

All timestamps come from the simulator clock, never the wall clock, and
trace/span ids are sequential counters: a fixed seed reproduces the
exact same trace, byte for byte after export.  A disabled tracer hands
out the shared :data:`NULL_SPAN` whose methods are no-ops, keeping
instrumented hot paths allocation-free when tracing is off.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

#: ``(trace_id, parent_span_id)`` — what crosses process boundaries.
SpanContext = Tuple[int, int]

#: Span/annotation attribute values (JSON-scalar only, for export).
AttrValue = Union[str, int, float, bool]

def _zero_clock() -> float:
    """Placeholder clock for tracers built before the simulator exists."""
    return 0.0


@dataclass(frozen=True)
class Annotation:
    """One instant event on the trace timeline (e.g. a nemesis fault)."""

    time: float
    name: str
    category: str
    attributes: Tuple[Tuple[str, AttrValue], ...] = ()


class Span:
    """One timed stage of an operation, linked into a trace tree."""

    __slots__ = (
        "name",
        "category",
        "node",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "attributes",
        "_clock",
    )

    def __init__(
        self,
        name: str,
        category: str,
        node: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        clock: Callable[[], float],
        attributes: Dict[str, AttrValue],
    ) -> None:
        self.name = name
        self.category = category
        self.node = node
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes = attributes
        self._clock = clock

    def context(self) -> Optional[SpanContext]:
        """The propagation handle children (local or remote) parent on."""
        return (self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: AttrValue) -> None:
        self.attributes[key] = value

    def finish(self, status: str = "ok", **attributes: AttrValue) -> None:
        """Close the span at the current simulated time.  Idempotent."""
        if self.end is not None:
            return
        self.end = self._clock()
        self.status = status
        if attributes:
            self.attributes.update(attributes)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None


class _NullSpan(Span):
    """Shared no-op span handed out by disabled tracers."""

    def __init__(self) -> None:
        super().__init__(
            name="",
            category="",
            node="",
            trace_id=0,
            span_id=0,
            parent_id=None,
            start=0.0,
            clock=_zero_clock,
            attributes={},
        )

    def context(self) -> Optional[SpanContext]:
        return None

    def set_attribute(self, key: str, value: AttrValue) -> None:
        pass

    def finish(self, status: str = "ok", **attributes: AttrValue) -> None:
        pass


#: The span a disabled tracer returns: one shared, inert instance.
NULL_SPAN: Span = _NullSpan()


class Tracer:
    """Creates and retains spans/annotations against the simulated clock.

    ``enabled=False`` makes every call a no-op returning
    :data:`NULL_SPAN` — the instrumented modules can hold a tracer
    unconditionally without paying for span objects they never use.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self._clock: Callable[[], float] = clock or _zero_clock
        self.enabled = enabled
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.spans: List[Span] = []
        self.annotations: List[Annotation] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Late-bind the simulated clock (set once the simulator exists)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    def start_span(
        self,
        name: str,
        category: str,
        node: str = "",
        parent: Optional[SpanContext] = None,
        **attributes: AttrValue,
    ) -> Span:
        """Open a span; without ``parent`` it roots a new trace."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            trace_id = next(self._trace_ids)
            parent_id: Optional[int] = None
        else:
            trace_id, parent_id = parent
        span = Span(
            name=name,
            category=category,
            node=node,
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            start=self._clock(),
            clock=self.now,
            attributes=dict(attributes),
        )
        self.spans.append(span)
        return span

    def annotate(
        self,
        name: str,
        category: str,
        at: Optional[float] = None,
        **attributes: AttrValue,
    ) -> None:
        """Record an instant event (``at`` defaults to the current time)."""
        if not self.enabled:
            return
        self.annotations.append(
            Annotation(
                time=self._clock() if at is None else at,
                name=name,
                category=category,
                attributes=tuple(sorted(attributes.items())),
            )
        )

    # -- queries (tests and exporters) --------------------------------------

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.finished]

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [
            candidate
            for candidate in self.spans
            if candidate.trace_id == span.trace_id
            and candidate.parent_id == span.span_id
        ]


@dataclass
class TraceQuery:
    """Small helpers over a finished tracer (overlap analysis)."""

    tracer: Tracer
    #: Categories counted as fault annotations by :meth:`fault_overlaps`.
    fault_categories: Tuple[str, ...] = ("nemesis",)
    _spans: List[Span] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._spans = list(self.tracer.spans)

    def fault_annotations(self) -> List[Annotation]:
        return [
            annotation
            for annotation in self.tracer.annotations
            if annotation.category in self.fault_categories
        ]

    def spans_overlapping(self, time: float) -> List[Span]:
        """Finished spans whose ``[start, end]`` interval contains ``time``."""
        return [
            span
            for span in self._spans
            if span.finished
            and span.start <= time <= (span.end or span.start)
        ]

    def fault_overlaps(self, span_name: str) -> List[Tuple[Annotation, Span]]:
        """(fault, span) pairs where the fault fired inside the span.

        The chaos acceptance check: every retry a fault causes shows up
        as a ``span_name`` span whose interval contains the fault time.
        """
        pairs: List[Tuple[Annotation, Span]] = []
        for annotation in self.fault_annotations():
            for span in self.spans_overlapping(annotation.time):
                if span.name == span_name:
                    pairs.append((annotation, span))
        return pairs
