"""Perf-regression harness: a pinned scenario matrix with invariants.

``python -m repro bench`` runs a fixed matrix of small simulated
scenarios — YCSB-style workloads under different quorum configurations,
a chaos run with an injected partition, and a self-tuning
reconfiguration run — with the full observability stack enabled, then
writes ``BENCH_obs.json``.

Two kinds of numbers come out, and they must not be confused:

* **Simulated** metrics (throughput, per-phase latency percentiles,
  retry/fault counts) are deterministic for a fixed seed: a rerun must
  reproduce them exactly, and the harness's invariants assert on them.
* **Wall-clock** metrics (seconds per scenario, simulator-kernel events
  processed per wall second) measure the implementation itself and vary
  run to run; CI compares events/sec against a committed baseline to
  catch performance regressions in the hot paths.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.autonomic.qopt import attach_qopt
from repro.common.config import (
    AutonomicConfig,
    ClientConfig,
    ClusterConfig,
    ProxyConfig,
    QuorumConfig,
)
from repro.common.errors import ReproError
from repro.common.types import NodeId
from repro.obs.context import Observability
from repro.obs.exporters import to_chrome_trace_json
from repro.obs.metrics import HistogramSnapshot
from repro.obs.trace import TraceQuery
from repro.oracle.service import QuorumOracle
from repro.sds.cluster import SwiftCluster
from repro.sim.nemesis import Nemesis
from repro.workloads import ycsb

#: Schema tag written into every BENCH_obs.json.
SCHEMA = "qopt-bench/1"

#: CI gate: fail when kernel events/sec drops below this fraction of
#: the committed baseline (generous, to absorb shared-runner noise).
BASELINE_FLOOR = 0.7

#: The per-phase histograms surfaced in the report, in output order.
PHASES: Tuple[Tuple[str, str], ...] = (
    ("gather-p1", "gather_p1"),
    ("gather-p2", "gather_p2"),
    ("stabilise", "stabilise"),
    ("reconfig-change", "reconfig_change"),
    ("reconfig-quarantine", "reconfig_quarantine"),
)


class BenchInvariantError(ReproError):
    """A scenario violated one of the harness's pinned invariants."""


@dataclass(frozen=True)
class Scenario:
    """One pinned cell of the benchmark matrix."""

    name: str
    #: ``"workload"`` (plain YCSB run), ``"chaos"`` (partition nemesis)
    #: or ``"reconfig"`` (self-tuning control plane attached).
    kind: str
    #: YCSB workload letter: ``"a"``, ``"b"`` or ``"c"``.
    workload: str
    #: Initial (read, write) quorum sizes.
    quorum: Tuple[int, int]
    #: Simulated duration in seconds.
    duration: float


#: Always-on scenarios (the ``--quick`` matrix).  The chaos and
#: reconfig scenarios double as the acceptance checks for trace/fault
#: correlation and reconfiguration phase metrics.
QUICK_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("ycsb-a-r3w3", "workload", "a", (3, 3), 2.0),
    Scenario("chaos-partition", "chaos", "a", (3, 3), 2.4),
    Scenario("reconfig-qopt", "reconfig", "a", (3, 3), 4.0),
)

#: Extra cells for the full matrix (``--quick`` omitted).
FULL_EXTRA_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("ycsb-a-r2w4", "workload", "a", (2, 4), 2.0),
    Scenario("ycsb-b-r3w3", "workload", "b", (3, 3), 2.0),
    Scenario("ycsb-b-r2w4", "workload", "b", (2, 4), 2.0),
    Scenario("ycsb-c-r3w3", "workload", "c", (3, 3), 2.0),
    Scenario("ycsb-c-r2w4", "workload", "c", (2, 4), 2.0),
)


class _FixedWriteModel:
    """Oracle stub that always predicts the same write-quorum size.

    Satisfies the duck type :class:`~repro.oracle.service.QuorumOracle`
    expects (``fitted`` flag plus ``predict_one``), without the offline
    training sweep — the bench only needs the control plane to *move*,
    deterministically, not to be smart.
    """

    fitted = True

    def __init__(self, write_quorum: int) -> None:
        self._write_quorum = write_quorum

    def predict_one(self, features: Any) -> int:
        return self._write_quorum


def _workload_source(letter: str, seed: int) -> Any:
    builders = {
        "a": ycsb.workload_a,
        "b": ycsb.workload_b,
        "c": ycsb.workload_c_paper,
    }
    spec = builders[letter](object_size=4096, num_objects=32)
    return ycsb.build(spec, seed=seed + 1)


def _cluster_config(scenario: Scenario) -> ClusterConfig:
    """The pinned small test-bed: 5 storage nodes, 2 proxies."""
    extras: Dict[str, Any] = {}
    if scenario.kind == "chaos":
        # Short deadlines so timeouts/retries fit inside the scenario:
        # with 3 of 5 storage nodes isolated neither quorum of 3 is
        # reachable, so gathers must time out quickly and clients must
        # get several retry attempts before the partition heals.
        extras["proxy"] = ProxyConfig(
            fallback_timeout=0.08,
            gather_deadline=0.2,
            max_gather_attempts=2,
        )
        extras["client"] = ClientConfig(
            attempt_timeout=0.5,
            max_attempts=6,
            backoff_base=0.04,
            backoff_cap=0.2,
        )
    return ClusterConfig(
        num_storage_nodes=5,
        num_proxies=2,
        clients_per_proxy=3,
        replication_degree=5,
        initial_quorum=QuorumConfig(
            read=scenario.quorum[0], write=scenario.quorum[1]
        ),
        **extras,
    )


def _run_scenario(
    scenario: Scenario, seed: int
) -> Tuple[Dict[str, Any], Observability, SwiftCluster, float]:
    """Run one cell; returns (sim-metrics, obs, cluster, wall seconds)."""
    obs = Observability(tracing=True)
    cluster = SwiftCluster(
        config=_cluster_config(scenario), seed=seed, obs=obs
    )
    cluster.add_clients(_workload_source(scenario.workload, seed))

    if scenario.kind == "chaos":
        nemesis = Nemesis.for_cluster(cluster, seed=seed)
        nemesis.schedule_isolation(
            at=0.8,
            duration=0.6,
            nodes=[NodeId.storage(index) for index in (0, 1, 2)],
        )
    elif scenario.kind == "reconfig":
        # A fixed oracle that always wants W=4 while the cluster starts
        # at (R=3, W=3) guarantees at least one fine- and one
        # coarse-grained reconfiguration, exercising the epoch-change
        # and quarantine phases; the post-change reads of versions
        # written under the old configuration then trigger p2 repair
        # gathers.
        attach_qopt(
            cluster,
            autonomic_config=AutonomicConfig(
                top_k=4,
                summary_capacity=64,
                round_duration=0.6,
                gamma=1,
                theta=0.0,
                quarantine=0.25,
            ),
            oracle=QuorumOracle(
                replication_degree=cluster.config.replication_degree,
                model=_FixedWriteModel(4),
            ),
        )

    wall_start = time.perf_counter()
    cluster.run(scenario.duration)
    wall_seconds = time.perf_counter() - wall_start

    read_summary = obs.client_read.snapshot().as_dict()
    write_summary = obs.client_write.snapshot().as_dict()
    sim: Dict[str, Any] = {
        "duration": scenario.duration,
        "throughput_ops_per_sec": round(
            cluster.log.total_operations / scenario.duration, 6
        ),
        "completed_ops": cluster.log.total_operations,
        "client_retries": obs.client_retries.value,
        "client_failures": obs.client_failures.value,
        "gather_timeouts": obs.gather_timeouts.value,
        "nemesis_faults": obs.faults.value,
        "client_read": read_summary,
        "client_write": write_summary,
    }
    return sim, obs, cluster, wall_seconds


def _check_invariants(
    scenario: Scenario, sim: Dict[str, Any], obs: Observability
) -> None:
    """Assert the pinned per-scenario invariants (simulated data only)."""
    if scenario.kind == "workload" and sim["throughput_ops_per_sec"] <= 0:
        raise BenchInvariantError(
            f"{scenario.name}: no completed operations"
        )
    if scenario.kind == "chaos":
        if sim["client_retries"] <= 0:
            raise BenchInvariantError(
                f"{scenario.name}: partition caused no client retries"
            )
        if sim["nemesis_faults"] <= 0:
            raise BenchInvariantError(
                f"{scenario.name}: nemesis recorded no faults"
            )
        overlaps = TraceQuery(obs.tracer).fault_overlaps("client.attempt")
        if not overlaps:
            raise BenchInvariantError(
                f"{scenario.name}: no nemesis fault annotation overlaps "
                "a client.attempt span"
            )
    if scenario.kind == "reconfig":
        if obs.reconfig_change.count < 1:
            raise BenchInvariantError(
                f"{scenario.name}: no reconfiguration completed"
            )
        if obs.reconfig_quarantine.count < 1:
            raise BenchInvariantError(
                f"{scenario.name}: no quarantine period observed"
            )
        if obs.gather_p2.count < 1:
            raise BenchInvariantError(
                f"{scenario.name}: no repair (p2) gathers after the "
                "quorum change"
            )


def _check_phase_ordering(phases: Dict[str, Dict[str, Any]]) -> None:
    for name, summary in phases.items():
        if summary["count"] == 0:
            continue
        if not (
            summary["p50"] <= summary["p95"] <= summary["p99"]
        ):
            raise BenchInvariantError(
                f"phase {name}: percentiles not monotone: {summary}"
            )


def run_bench(
    quick: bool = False,
    seed: int = 0,
    trace_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the scenario matrix and return the BENCH_obs report dict."""
    scenarios: List[Scenario] = list(QUICK_SCENARIOS)
    if not quick:
        scenarios.extend(FULL_EXTRA_SCENARIOS)

    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "scenarios": {},
        "phases": {},
        "kernel": {},
    }
    merged_phases: Dict[str, Optional[HistogramSnapshot]] = {
        name: None for name, _ in PHASES
    }
    total_events = 0
    total_wall = 0.0

    for scenario in scenarios:
        sim, obs, cluster, wall_seconds = _run_scenario(scenario, seed)
        _check_invariants(scenario, sim, obs)
        events = cluster.sim.events_processed
        total_events += events
        total_wall += wall_seconds
        report["scenarios"][scenario.name] = {
            "kind": scenario.kind,
            "sim": sim,
            "wall": {
                "seconds": round(wall_seconds, 4),
                "events": events,
                "events_per_second": round(events / wall_seconds, 1)
                if wall_seconds > 0
                else 0.0,
            },
        }
        for name, attr in PHASES:
            snapshot = getattr(obs, attr).snapshot()
            previous = merged_phases[name]
            merged_phases[name] = (
                snapshot if previous is None else previous.merged(snapshot)
            )
        if trace_path and scenario.kind == "chaos":
            with open(trace_path, "w", encoding="utf-8") as handle:
                handle.write(to_chrome_trace_json(obs.tracer))

    report["phases"] = {
        name: snapshot.as_dict()
        for name, snapshot in merged_phases.items()
        if snapshot is not None
    }
    _check_phase_ordering(report["phases"])
    report["kernel"] = {
        "events": total_events,
        "wall_seconds": round(total_wall, 4),
        "events_per_second": round(total_events / total_wall, 1)
        if total_wall > 0
        else 0.0,
    }
    return report


def check_baseline(report: Dict[str, Any], baseline_path: str) -> str:
    """Compare kernel events/sec against a committed baseline report."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base_rate = float(baseline["kernel"]["events_per_second"])
    rate = float(report["kernel"]["events_per_second"])
    if base_rate > 0 and rate < BASELINE_FLOOR * base_rate:
        raise BenchInvariantError(
            f"kernel events/sec regressed: {rate:.0f} < "
            f"{BASELINE_FLOOR:.0%} of baseline {base_rate:.0f}"
        )
    return (
        f"kernel {rate:.0f} events/s vs baseline {base_rate:.0f} "
        f"({rate / base_rate:.0%})"
        if base_rate > 0
        else f"kernel {rate:.0f} events/s (baseline had no rate)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the pinned observability benchmark matrix and write "
            "BENCH_obs.json"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the three core scenarios (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_obs.json",
        help="report path (default BENCH_obs.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline BENCH_obs.json to gate kernel events/sec against "
            f"(fails below {BASELINE_FLOOR:.0%})".replace("%", "%%")
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        help=(
            "also export the chaos scenario's Chrome trace_event JSON "
            "to this path (open in Perfetto)"
        ),
    )
    parser.add_argument(
        "--codec",
        action="store_true",
        help=(
            "run the codec microbenchmark (encode/decode ns/op per wire "
            "message type) instead of the scenario matrix; writes "
            "BENCH_codec.json unless --output is given"
        ),
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help=(
            "run under cProfile, write the pstats table to PATH and "
            "print the top-3 hot functions (adds overhead: do not "
            "combine with --baseline gating)"
        ),
    )
    return parser


def _write_profile(profiler: cProfile.Profile, path: str) -> None:
    """Dump the pstats table to ``path`` and print the top-3 by tottime."""
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(40)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(stream.getvalue())
    hottest = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][2],
        reverse=True,
    )[:3]
    print("top-3 hot functions (tottime):")
    for (filename, lineno, funcname), row in hottest:
        calls, tottime = row[1], row[2]
        print(
            f"  {funcname} ({filename}:{lineno}) "
            f"{tottime:.3f}s over {calls} calls"
        )
    print(f"wrote profile {path}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profiler: Optional[cProfile.Profile] = None
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()

    if args.codec:
        from repro.net.codec_bench import run_codec_bench

        report = run_codec_bench()
        output = (
            args.output if args.output != "BENCH_obs.json"
            else "BENCH_codec.json"
        )
    else:
        report = run_bench(
            quick=args.quick, seed=args.seed, trace_path=args.trace
        )
        output = args.output

    if profiler is not None:
        profiler.disable()

    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if args.codec:
        for name, cell in report["messages"].items():
            print(
                f"{name}: encode {cell['encode_ns']:.0f} ns/op, "
                f"decode {cell['decode_ns']:.0f} ns/op "
                f"({cell['frame_bytes']} B frame)"
            )
    else:
        for name, cell in report["scenarios"].items():
            sim = cell["sim"]
            wall = cell["wall"]
            print(
                f"{name}: {sim['throughput_ops_per_sec']:.1f} ops/s sim, "
                f"{wall['events_per_second']:.0f} kernel events/s wall"
            )
        print(
            f"kernel total: {report['kernel']['events']} events in "
            f"{report['kernel']['wall_seconds']}s wall "
            f"({report['kernel']['events_per_second']:.0f}/s)"
        )
        if args.baseline:
            print(check_baseline(report, args.baseline))
    print(f"wrote {output}")
    if profiler is not None:
        _write_profile(profiler, args.profile)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
