"""``python -m repro.qlint`` — run the protocol-invariant linters.

Exit code 0 when clean (or warnings only), 1 when any error-severity
finding is present, 2 on usage errors.  ``--format json`` emits a
machine-readable report for CI; ``--format github`` emits workflow
annotation commands that surface inline on PR diffs.  ``--stats``
prints the suppression-debt summary instead of findings (optionally to
``--output``), and ``--cache DIR`` enables the whole-run result cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.qlint.findings import (
    exit_code,
    render_github,
    render_json,
    render_text,
)
from repro.qlint.runner import (
    ALL_RULES,
    RULE_SUMMARIES,
    collect_stats,
    run_suite_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qlint",
        description=(
            "Static analysis for Q-OPT protocol invariants: determinism "
            "of the simulator, strict quorum intersection at every "
            "configuration site, interleaving safety across suspension "
            "points, and wire-registry exhaustiveness."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=(
            "files or directories to analyze (default: the repro "
            "protocol packages)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only report these rule ids (repeatable, e.g. --select QD001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id with a one-line summary and exit",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="baseline file of accepted findings "
        "(default: <repo>/qlint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report accepted findings too",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the findings/suppression summary as JSON and exit "
        "(non-gating: exit code reflects findings as usual)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        metavar="FILE",
        help="write the report/stats to FILE as well as stdout",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        metavar="DIR",
        help="cache whole-run results in DIR keyed on file hashes "
        "(cross-file rules make per-file caching unsound)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ("QL000", "QL001") + tuple(ALL_RULES):
            print(f"{rule}  {RULE_SUMMARIES[rule]}")
        return 0
    if args.select:
        unknown = set(args.select) - set(RULE_SUMMARIES)
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    for path in args.paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2
    if args.baseline is not None and not args.baseline.exists():
        print(f"no such baseline file: {args.baseline}", file=sys.stderr)
        return 2

    try:
        report = run_suite_report(
            paths=args.paths or None,
            baseline_path=args.baseline,
            use_baseline=not args.no_baseline,
            cache_dir=args.cache,
        )
    except ValueError as exc:  # malformed baseline
        print(f"qlint: {exc}", file=sys.stderr)
        return 2

    findings = report.findings
    if args.select:
        wanted = set(args.select)
        findings = [f for f in findings if f.rule in wanted]

    if args.stats:
        rendered = json.dumps(
            collect_stats(report), indent=2, sort_keys=True
        )
    elif args.format == "json":
        rendered = render_json(findings)
    elif args.format == "github":
        rendered = render_github(findings)
    else:
        rendered = render_text(findings)

    print(rendered)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    return exit_code(findings)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
