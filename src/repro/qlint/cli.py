"""``python -m repro.qlint`` — run the protocol-invariant linters.

Exit code 0 when clean (or warnings only), 1 when any error-severity
finding is present, 2 on usage errors.  ``--format json`` emits a
machine-readable report for CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.qlint.findings import exit_code, render_json, render_text
from repro.qlint.runner import ALL_RULES, RULE_SUMMARIES, run_suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qlint",
        description=(
            "Static analysis for Q-OPT protocol invariants: determinism "
            "of the simulator and strict quorum intersection at every "
            "configuration site."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=(
            "files or directories to analyze (default: the repro "
            "protocol packages)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only report these rule ids (repeatable, e.g. --select QD001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id with a one-line summary and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ("QL000",) + tuple(ALL_RULES):
            print(f"{rule}  {RULE_SUMMARIES[rule]}")
        return 0
    if args.select:
        unknown = set(args.select) - set(RULE_SUMMARIES)
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    for path in args.paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2
    findings = run_suite(
        paths=args.paths or None, select=args.select or None
    )
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return exit_code(findings)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
