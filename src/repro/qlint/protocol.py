"""Protocol linters (rules QP001-QP002).

QP001  wire-registry-exhaustiveness
    Every top-level ``@dataclass`` in a ``messages.py`` module must (a)
    appear in a ``WIRE_TYPES`` registry somewhere in the analyzed file
    set and (b) have a ``register_handler(Class, ...)`` call somewhere —
    unless it is *embedded*, i.e. referenced from another message's field
    annotations (value types like ``ObjectStats`` ride inside
    ``RoundStats`` and never get their own handler).  The codec registry
    is positional and append-only: for the canonical codec module the
    registry must start with the golden name sequence below — inserting,
    removing, or reordering entries is a silent wire-format break.

QP002  symbolic-strict-quorum-arithmetic
    ``QuorumConfig(read=..., write=...)`` construction sites are checked
    symbolically: read/write expressions are reduced to linear forms over
    opaque variables (with interval slack for floor division), the
    replication degree ``N`` is identified by variable name, and
    ``R + W > N`` is evaluated.  Only *provable* violations are reported
    (e.g. ``read=n - w``, or the classic ``n//2``/``n//2`` split);
    provably-strict and undecidable sites stay silent.  This is the
    machine check that survives the generalized ``QuorumSystem``
    refactor, where quorum sizes stop being the single ``R = N-W+1``
    rule.
"""

from __future__ import annotations

import ast
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.qlint.astutils import (
    SourceFile,
    dotted_name,
    relative_to_repro,
    walk_functions,
)
from repro.qlint.findings import Finding, Severity

#: Golden prefix of the codec's ``WIRE_TYPES`` registry.  Positional
#: codes are the wire format; this pin makes "append-only" machine
#: checked.  Extending the protocol appends names here in the same PR
#: that appends to the registry.
WIRE_REGISTRY_GOLDEN: Tuple[str, ...] = (
    "NodeId",
    "QuorumConfig",
    "VersionStamp",
    "VectorStamp",
    "Version",
    "QuorumPlan",
    "ClientRead",
    "ClientWrite",
    "ClientReadReply",
    "ClientWriteReply",
    "ClientOperationFailed",
    "ReplicaRead",
    "ReplicaReadReply",
    "ReplicaWrite",
    "ReplicaWriteReply",
    "ReplicaSync",
    "EpochNack",
    "NewQuorum",
    "AckNewQuorum",
    "Confirm",
    "AckConfirm",
    "PauseProxy",
    "AckPause",
    "ResumeProxy",
    "NewEpoch",
    "AckNewEpoch",
    "NewRound",
    "ObjectStats",
    "AggregateStats",
    "RoundStats",
    "NewTopK",
    "NewStats",
    "NewQuorums",
    "TailStats",
    "TailQuorum",
    "FineRec",
    "CoarseRec",
    "AckRec",
    "SyncRequest",
    "SyncReply",
    "LeaseRequest",
    "LeaseGrant",
    "LeaseRead",
    "LeaseReadReply",
    "LeaseNack",
)

#: Variable names (final dotted segment) accepted as the replication
#: degree ``N`` in QP002.
_N_NAMES = frozenset(
    {
        "n",
        "degree",
        "replication_degree",
        "replicas",
        "num_replicas",
        "n_replicas",
        "nodes",
        "num_nodes",
    }
)


# ---------------------------------------------------------------------------
# QP002: linear symbolic arithmetic with floor-division slack
# ---------------------------------------------------------------------------


class _Linear:
    """``sum(coeff * var) + const + slack`` with ``slack in [lo, hi]``.

    Floor division by a positive literal ``k`` keeps the form linear at
    the cost of widening slack: ``e // k`` lies in
    ``[e/k - (k-1)/k, e/k]``.
    """

    def __init__(
        self,
        coeffs: Optional[Dict[str, Fraction]] = None,
        const: Fraction = Fraction(0),
        lo: Fraction = Fraction(0),
        hi: Fraction = Fraction(0),
    ) -> None:
        self.coeffs = {k: v for k, v in (coeffs or {}).items() if v != 0}
        self.const = const
        self.lo = lo
        self.hi = hi

    @staticmethod
    def var(name: str) -> "_Linear":
        return _Linear({name: Fraction(1)})

    @staticmethod
    def num(value: int) -> "_Linear":
        return _Linear(const=Fraction(value))

    def add(self, other: "_Linear", sign: int = 1) -> "_Linear":
        coeffs = dict(self.coeffs)
        for name, coeff in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + sign * coeff
        if sign > 0:
            lo, hi = self.lo + other.lo, self.hi + other.hi
        else:
            lo, hi = self.lo - other.hi, self.hi - other.lo
        return _Linear(
            coeffs, self.const + sign * other.const, lo, hi
        )

    def scale(self, factor: Fraction) -> "_Linear":
        coeffs = {k: v * factor for k, v in self.coeffs.items()}
        if factor >= 0:
            lo, hi = self.lo * factor, self.hi * factor
        else:
            lo, hi = self.hi * factor, self.lo * factor
        return _Linear(coeffs, self.const * factor, lo, hi)

    def floordiv(self, k: int) -> "_Linear":
        scaled = self.scale(Fraction(1, k))
        return _Linear(
            scaled.coeffs,
            scaled.const,
            scaled.lo - Fraction(k - 1, k),
            scaled.hi,
        )


def _linearize(node: ast.expr) -> Optional[_Linear]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return _Linear.num(node.value)
    dotted = dotted_name(node)
    if dotted is not None:
        return _Linear.var(dotted)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _linearize(node.operand)
        return inner.scale(Fraction(-1)) if inner is not None else None
    if isinstance(node, ast.BinOp):
        left = _linearize(node.left)
        right = _linearize(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left.add(right)
        if isinstance(node.op, ast.Sub):
            return left.add(right, sign=-1)
        if isinstance(node.op, ast.Mult):
            if not right.coeffs and right.lo == right.hi == 0:
                return left.scale(right.const)
            if not left.coeffs and left.lo == left.hi == 0:
                return right.scale(left.const)
            return None
        if isinstance(node.op, ast.FloorDiv):
            if (
                not right.coeffs
                and right.lo == right.hi == 0
                and right.const > 0
                and right.const.denominator == 1
            ):
                return left.floordiv(int(right.const))
            return None
        return None
    return None


def _quorum_margin(
    read: ast.expr, write: ast.expr
) -> Optional[Tuple[Fraction, Fraction]]:
    """Bounds of ``R + W - N`` if decidable, else None.

    Strict intersection requires the margin to be >= 1 everywhere; a
    certain violation has an upper bound <= 0.
    """
    read_form = _linearize(read)
    write_form = _linearize(write)
    if read_form is None or write_form is None:
        return None
    total = read_form.add(write_form)
    candidates = sorted(
        name
        for name in total.coeffs
        if name.rsplit(".", 1)[-1] in _N_NAMES
    )
    if len(candidates) != 1:
        return None
    margin = total.add(_Linear.var(candidates[0]), sign=-1)
    if margin.coeffs:
        return None
    return margin.const + margin.lo, margin.const + margin.hi


# ---------------------------------------------------------------------------
# the linter
# ---------------------------------------------------------------------------


class ProtocolLinter:
    """Cross-file wire/arithmetic checks (QP001, QP002).

    Like :class:`~repro.qlint.quorum_safety.QuorumSafetyLinter`, call
    :meth:`prepare` with every source in scope before :meth:`run` — the
    message census, registry entries, and handler registrations are
    global facts.
    """

    rules = ("QP001", "QP002")

    def __init__(
        self, golden: Optional[Sequence[str]] = WIRE_REGISTRY_GOLDEN
    ) -> None:
        self._golden = tuple(golden) if golden else ()
        #: message name -> (source path, ClassDef) from messages modules.
        self._messages: Dict[str, Tuple[str, ast.ClassDef]] = {}
        #: message names referenced from other messages' annotations.
        self._embedded: set[str] = set()
        #: union of every WIRE_TYPES registry's entry names.
        self._registered: set[str] = set()
        #: class names passed to ``register_handler``.
        self._handled: set[str] = set()

    # -- cross-file census ---------------------------------------------------

    def prepare(self, sources: Sequence[SourceFile]) -> None:
        self._messages.clear()
        self._embedded.clear()
        self._registered.clear()
        self._handled.clear()
        for source in sources:
            if source.path.name == "messages.py":
                self._collect_messages(source)
            for entries in self._iter_registries(source.tree):
                self._registered.update(entries)
            self._collect_handlers(source.tree)
        annotations: set[str] = set()
        for _name, (_path, node) in sorted(self._messages.items()):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign):
                    for child in ast.walk(stmt.annotation):
                        if isinstance(child, ast.Name):
                            annotations.add(child.id)
                        elif isinstance(child, ast.Attribute):
                            annotations.add(child.attr)
                        elif isinstance(child, ast.Constant) and isinstance(
                            child.value, str
                        ):
                            annotations.add(child.value.strip("'\""))
        self._embedded = annotations & set(self._messages)

    def _collect_messages(self, source: SourceFile) -> None:
        for stmt in source.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            is_dataclass = any(
                (isinstance(dec, ast.Name) and dec.id == "dataclass")
                or (
                    isinstance(dec, ast.Call)
                    and isinstance(dec.func, ast.Name)
                    and dec.func.id == "dataclass"
                )
                or (
                    isinstance(dec, ast.Attribute)
                    and dec.attr == "dataclass"
                )
                for dec in stmt.decorator_list
            )
            if is_dataclass:
                self._messages[stmt.name] = (str(source.path), stmt)

    @staticmethod
    def _iter_registries(tree: ast.Module) -> Iterator[List[str]]:
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not isinstance(value, (ast.Tuple, ast.List)):
                continue
            named = any(
                isinstance(t, ast.Name) and t.id == "WIRE_TYPES"
                for t in targets
            )
            if not named:
                continue
            entries: list[str] = []
            for element in value.elts:
                dotted = dotted_name(element)
                if dotted is not None:
                    entries.append(dotted.rsplit(".", 1)[-1])
            yield entries

    def _collect_handlers(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or not dotted.endswith("register_handler"):
                continue
            if not node.args:
                continue
            target = dotted_name(node.args[0])
            if target is not None:
                self._handled.add(target.rsplit(".", 1)[-1])

    # -- per-file run --------------------------------------------------------

    def run(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        if source.path.name == "messages.py":
            findings.extend(self._check_exhaustiveness(source))
        findings.extend(self._check_registry_order(source))
        findings.extend(self._check_quorum_arithmetic(source))
        return [
            finding
            for finding in findings
            if not source.suppressed(finding.line, finding.rule)
        ]

    def _check_exhaustiveness(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        if not self._registered:
            # No registry in scope (e.g. a fixture linting messages.py
            # alone) — exhaustiveness is undecidable, stay silent.
            return findings
        path = str(source.path)
        for name, (owner_path, node) in sorted(self._messages.items()):
            if owner_path != path:
                continue
            if name not in self._registered:
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QP001",
                        f"message dataclass `{name}` is not registered "
                        "in the codec's WIRE_TYPES — it cannot cross "
                        "the wire; append it to the registry",
                        name,
                    )
                )
            if name not in self._handled and name not in self._embedded:
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QP001",
                        f"message dataclass `{name}` has no "
                        "`register_handler(...)` anywhere in scope and "
                        "is not embedded in another message — it would "
                        "be silently dropped on delivery",
                        name,
                    )
                )
        return findings

    def _check_registry_order(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        if not self._golden:
            return findings
        relative = relative_to_repro(source.path)
        if not relative.endswith("net/codec.py"):
            return findings
        for stmt in source.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            for entries in self._iter_registries_of(stmt):
                prefix = tuple(entries[: len(self._golden)])
                if prefix != self._golden:
                    divergence = next(
                        (
                            i
                            for i, (have, want) in enumerate(
                                zip(prefix, self._golden)
                            )
                            if have != want
                        ),
                        len(prefix),
                    )
                    findings.append(
                        self._finding(
                            source,
                            stmt,
                            "QP001",
                            "WIRE_TYPES diverges from the golden "
                            f"append-only order at position {divergence} "
                            f"(expected `{self._golden[divergence] if divergence < len(self._golden) else '<end>'}`) "
                            "— codes are positional; never insert, "
                            "remove, or reorder, only append",
                            "WIRE_TYPES",
                        )
                    )
        return findings

    def _iter_registries_of(self, stmt: ast.stmt) -> Iterator[List[str]]:
        module = ast.Module(body=[stmt], type_ignores=[])
        yield from self._iter_registries(module)

    def _check_quorum_arithmetic(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        symbol_of: Dict[int, str] = {}
        for func, owner in walk_functions(source.tree):
            name = getattr(func, "name", "<lambda>")
            symbol = f"{owner}.{name}" if owner else name
            for child in ast.walk(func):
                symbol_of.setdefault(id(child), symbol)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or dotted.rsplit(".", 1)[-1] != "QuorumConfig":
                continue
            read, write = self._quorum_args(node)
            if read is None or write is None:
                continue
            margin = _quorum_margin(read, write)
            if margin is None:
                continue
            lo, hi = margin
            if hi <= 0:
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QP002",
                        "quorum arithmetic provably violates strict "
                        f"intersection: R + W - N <= {hi} here, but "
                        "R + W > N is required (read and write quorums "
                        "must overlap; see QuorumConfig.is_strict)",
                        symbol_of.get(id(node), ""),
                    )
                )
        return findings

    @staticmethod
    def _quorum_args(
        node: ast.Call,
    ) -> Tuple[Optional[ast.expr], Optional[ast.expr]]:
        read: Optional[ast.expr] = None
        write: Optional[ast.expr] = None
        if len(node.args) >= 1:
            read = node.args[0]
        if len(node.args) >= 2:
            write = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "read":
                read = keyword.value
            elif keyword.arg == "write":
                write = keyword.value
        return read, write

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _finding(
        source: SourceFile,
        node: ast.AST,
        rule: str,
        message: str,
        symbol: str,
    ) -> Finding:
        return Finding(
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            severity=Severity.ERROR,
            symbol=symbol,
        )


__all__ = ["ProtocolLinter", "WIRE_REGISTRY_GOLDEN"]
