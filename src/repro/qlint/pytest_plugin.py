"""pytest plugin: run qlint as part of the test session.

Registered from ``tests/conftest.py`` (``pytest_plugins``), so the
tier-1 command — ``PYTHONPATH=src python -m pytest`` — gates on the
protocol invariants without any extra CI step.  The suite appears as a
single synthetic test item named ``qlint::protocol-invariants``.

Options:

``--no-qlint``
    Skip the linters (e.g. for quick local red/green loops).
``--qlint-paths PATH``
    Analyze these paths instead of the installed ``repro`` package —
    used by qlint's own tests to point the plugin at fixture trees.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

import pytest

from repro.qlint.findings import render_text
from repro.qlint.runner import run_suite


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("qlint")
    group.addoption(
        "--no-qlint",
        action="store_true",
        default=False,
        help="skip the protocol-invariant static analysis suite",
    )
    group.addoption(
        "--qlint-paths",
        action="append",
        default=None,
        metavar="PATH",
        help="analyze these paths instead of the repro package",
    )


class QlintError(Exception):
    """Raised (and rendered) when the analyzers report errors."""


class QlintItem(pytest.Item):
    """One synthetic test item running the whole analysis suite."""

    def __init__(
        self, *, paths: Optional[List[Path]], **kwargs: Any
    ) -> None:
        super().__init__(**kwargs)
        self._paths = paths

    def runtest(self) -> None:
        findings = run_suite(paths=self._paths)
        gating = [f for f in findings if f.severity.fails_build]
        if gating:
            raise QlintError(render_text(findings))

    def repr_failure(  # noqa: D102 - pytest hook
        self,
        excinfo: pytest.ExceptionInfo[BaseException],
        style: Optional[str] = None,
    ) -> Any:
        if isinstance(excinfo.value, QlintError):
            return str(excinfo.value)
        return super().repr_failure(excinfo)

    def reportinfo(self) -> Tuple[Path, Optional[int], str]:
        return self.path, None, "qlint: protocol invariants"


class QlintCollector(pytest.Collector):
    """Parent node so the item shows up under a stable ``qlint`` group."""

    def collect(self) -> Iterator[pytest.Item]:
        paths = self.config.getoption("--qlint-paths")
        resolved = [Path(p) for p in paths] if paths else None
        yield QlintItem.from_parent(
            self, name="protocol-invariants", paths=resolved
        )


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(
    session: pytest.Session,
    config: pytest.Config,
    items: List[pytest.Item],
) -> None:
    if config.getoption("--no-qlint"):
        return
    # Only gate full-suite runs: a targeted run (node ids / -k / file
    # selection) should execute exactly what the user asked for.
    if config.args and any("::" in str(arg) for arg in config.args):
        return
    collector = QlintCollector.from_parent(session, name="qlint")
    items.extend(collector.collect())
