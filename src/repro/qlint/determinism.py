"""Determinism linters (rules QD001-QD004).

The simulator's contract is bit-for-bit reproducibility for a given
seed: Figures 2/3 and the 170-workload training sweep must come out
identical run-to-run.  Every stochastic draw therefore goes through
``repro.common.rng`` substreams and every ordering that feeds message
dispatch must be defined by the code, not by hash randomization.  These
AST rules mechanically enforce that contract:

QD001  unseeded-randomness
    Module-level calls into ``random`` / ``numpy.random`` (or other
    entropy sources: ``os.urandom``, ``uuid.uuid4``, ``secrets``)
    outside ``common/rng.py``.  Seeded constructions —
    ``random.Random(seed)``, ``numpy.random.default_rng(seed)`` — are
    allowed; their zero-argument forms (OS-entropy seeded) are not.

QD002  wall-clock-access
    ``time.time()``, ``time.monotonic()``, ``datetime.now()`` and
    friends.  Simulated components must read ``sim.now``.

QD003  unordered-iteration
    Iterating a ``set``/``frozenset`` expression (literal, comprehension,
    constructor call, set algebra, or a local variable bound to one) in a
    ``for`` loop or comprehension.  String hashing is randomized per
    process, so set order is not reproducible; iterate ``sorted(...)``.

QD004  mutable-default-argument
    A ``list``/``dict``/``set`` default is shared across calls — state
    leaks between simulation runs in the same process.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Sequence

from repro.qlint.astutils import ImportMap, SourceFile
from repro.qlint.findings import Finding, Severity

#: Files allowed to touch raw entropy: the seed-derivation module itself.
RNG_SANCTUARY = ("common/rng.py",)

#: Seeded-stream constructors: fine with arguments, flagged bare.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
    }
)

#: Call prefixes that consume ambient (process-global) entropy.
_ENTROPY_PREFIXES = ("random.", "numpy.random.", "secrets.")
_ENTROPY_EXACT = frozenset(
    {"os.urandom", "os.getrandom", "uuid.uuid4", "uuid.uuid1"}
)

#: Wall-clock reads; simulated code must use ``sim.now``.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Wrappers that preserve their argument's iteration order.
_ORDER_PRESERVING = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})


def _in_sanctuary(path: Path) -> bool:
    text = str(path).replace("\\", "/")
    return any(text.endswith(suffix) for suffix in RNG_SANCTUARY)


def _relative_to_repro(path: Path) -> str:
    """Path relative to the ``repro`` package root, ``/``-separated."""
    root = Path(__file__).resolve().parent.parent
    try:
        relative = path.resolve().relative_to(root)
    except ValueError:
        return str(path).replace("\\", "/")
    return str(relative).replace("\\", "/")


class DeterminismLinter:
    """AST walker producing QD001-QD004 findings for one file.

    ``nondeterminism_allowed`` is a list of package-relative path
    prefixes (e.g. ``net/``, configured under ``[tool.qlint]`` in
    pyproject) whose files may legitimately read ambient entropy and the
    wall clock — the live runtime *is* nondeterministic by nature.  The
    allowlist suppresses exactly :data:`ALLOWLIST_RULES`; set-iteration
    order (QD003) and shared mutable defaults (QD004) remain bugs in
    live code too and are still enforced there.
    """

    rules = ("QD001", "QD002", "QD003", "QD004")

    #: The rules an allowlist entry waives — never QD003/QD004.
    ALLOWLIST_RULES = frozenset({"QD001", "QD002"})

    def __init__(
        self, nondeterminism_allowed: Sequence[str] = ()
    ) -> None:
        self._allowed = tuple(nondeterminism_allowed)

    def _waived(self, path: Path) -> bool:
        relative = _relative_to_repro(path)
        return any(relative.startswith(prefix) for prefix in self._allowed)

    def run(self, source: SourceFile) -> list[Finding]:
        imports = ImportMap(source.tree)
        findings: list[Finding] = []
        findings.extend(self._check_entropy_and_clock(source, imports))
        findings.extend(self._check_set_iteration(source))
        findings.extend(self._check_mutable_defaults(source))
        if self._allowed and self._waived(source.path):
            findings = [
                finding
                for finding in findings
                if finding.rule not in self.ALLOWLIST_RULES
            ]
        return [
            finding
            for finding in findings
            if not source.suppressed(finding.line, finding.rule)
        ]

    # -- QD001 / QD002 -----------------------------------------------------

    def _check_entropy_and_clock(
        self, source: SourceFile, imports: ImportMap
    ) -> list[Finding]:
        findings: list[Finding] = []
        sanctuary = _in_sanctuary(source.path)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved is None:
                continue
            if resolved in _WALL_CLOCK:
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QD002",
                        f"wall-clock access `{resolved}()` — simulated "
                        "components must read `sim.now`",
                    )
                )
                continue
            if sanctuary:
                continue
            if resolved in _SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    findings.append(
                        self._finding(
                            source,
                            node,
                            "QD001",
                            f"`{resolved}()` without a seed draws OS "
                            "entropy — pass a seed derived via "
                            "`repro.common.rng`",
                        )
                    )
                continue
            if resolved in _ENTROPY_EXACT or resolved.startswith(
                _ENTROPY_PREFIXES
            ):
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QD001",
                        f"unseeded randomness `{resolved}()` — draw from "
                        "a `repro.common.rng` substream instead",
                    )
                )
        return findings

    # -- QD003 -------------------------------------------------------------

    def _check_set_iteration(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        set_vars = _set_valued_names(source.tree)
        for node in ast.walk(source.tree):
            iterables: list[ast.expr] = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if _is_set_expr(iterable, set_vars):
                    findings.append(
                        self._finding(
                            source,
                            iterable,
                            "QD003",
                            "iteration over an unordered set — hash "
                            "randomization makes the order "
                            "irreproducible; iterate `sorted(...)`",
                        )
                    )
        return findings

    # -- QD004 -------------------------------------------------------------

    def _check_mutable_defaults(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    findings.append(
                        self._finding(
                            source,
                            default,
                            "QD004",
                            "mutable default argument is shared across "
                            "calls — default to None (or use "
                            "`dataclasses.field(default_factory=...)`)",
                        )
                    )
        return findings

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _finding(
        source: SourceFile, node: ast.AST, rule: str, message: str
    ) -> Finding:
        return Finding(
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            severity=Severity.ERROR,
        )


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"}
    return False


def _set_valued_names(tree: ast.Module) -> set[str]:
    """Names assigned a set-typed expression anywhere in the file.

    A coarse (flow-insensitive) approximation: good enough to catch
    ``pending = set(...) ... for x in pending`` while never flagging
    names that are only ever bound to ordered collections.  A name also
    counts when annotated ``x: set[...] = ...``.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            annotation = node.annotation
            base = annotation
            if isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name) and base.id in {
                "set",
                "frozenset",
                "Set",
                "FrozenSet",
            }:
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            continue
        if value is None or not _is_set_expr(value, names):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(node: ast.expr, set_vars: set[str]) -> bool:
    """Is this expression (recursively) an unordered set value?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
            if node.func.id in _ORDER_PRESERVING and node.args:
                return _is_set_expr(node.args[0], set_vars)
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return _is_set_expr(node.func.value, set_vars)
    return False


__all__ = ["DeterminismLinter", "RNG_SANCTUARY"]
