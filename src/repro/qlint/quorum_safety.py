"""Quorum-safety static analysis (rules QS001-QS003).

Strong consistency in Q-OPT rests on one algebraic invariant: every
installed (R, W) pair is *strict* for the replication degree N —
``R + W > N`` and ``max(R, W) <= N`` — at every construction and
(re)configuration site (Section 2.1; write/write ordering needs no
``2W > N`` because writes carry globally ordered timestamps).  The
runtime enforcement point is ``validate_strict``; this analyzer proves,
file-set wide, that no quorum value can reach the data plane without
passing through it:

QS001  unvalidated-quorum-construction
    A ``QuorumConfig``/``QuorumPlan`` construction (or plan-algebra
    builder call: ``uniform``, ``with_overrides``, ``with_default``)
    whose result neither flows into ``validate_strict``/``is_strict``
    nor escapes to a caller (return value / lambda body — in which case
    the *installation* site is checked instead, see QS002).  Calls to
    the trusted strict-by-construction producers ``from_write``,
    ``all_strict_minimal`` and ``transition_with`` are exempt: the first
    two emit ``(N - W + 1, W)`` pairs with ``R + W = N + 1 > N``, and
    the pairwise max of two strict configurations is strict.

QS002  unvalidated-reconfiguration-site
    A function that broadcasts a ``NewQuorum``/``Confirm`` protocol
    message, or a reconfiguration entry point (``change_*`` /
    ``_reconfigure``), must validate — directly, or by delegating to a
    function that (transitively) calls ``validate_strict``.

QS003  provably-broken-intersection
    Wherever R, W and N are all integer literals (a construction with a
    chained ``validate_strict(n)``, an ``initial_quorum=`` inside a
    ``ClusterConfig(...)`` call, or ``from_write(w, n)``), check the
    arithmetic at lint time and report configurations that *cannot* be
    strict — these would only fail at runtime on the path that installs
    them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.qlint.astutils import (
    SourceFile,
    call_name,
    dotted_name,
    int_literal,
)
from repro.qlint.findings import Finding, Severity

#: Final call-name segments that produce a quorum value to be checked.
_CONSTRUCTORS = frozenset({"QuorumConfig", "QuorumPlan"})
_PLAN_BUILDERS = frozenset({"with_overrides", "with_default"})

#: Strict-by-construction producers (proof in the module docstring).
_TRUSTED_PRODUCERS = frozenset(
    {"from_write", "all_strict_minimal", "transition_with"}
)

#: Method names that constitute validation of their receiver.
_VALIDATING_ATTRS = frozenset({"validate_strict", "is_strict"})

#: Protocol messages whose construction marks an installation site.
_INSTALL_MESSAGES = frozenset({"NewQuorum", "Confirm"})

#: Containers the analyzer walks through when following a value to a
#: ``return`` statement.
_TRANSPARENT = (
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.IfExp,
    ast.BoolOp,
    ast.Starred,
    ast.ListComp,
    ast.GeneratorExp,
)


def _final_segment(name: Optional[str]) -> Optional[str]:
    return name.rsplit(".", 1)[-1] if name else None


def _is_plan_producing(node: ast.Call) -> bool:
    name = call_name(node)
    final = _final_segment(name)
    if final in _CONSTRUCTORS or final in _PLAN_BUILDERS:
        return True
    # ``uniform`` is too generic a method name (``rng.uniform``!): only
    # the classmethod spelled through the QuorumPlan class counts.
    return name == "QuorumPlan.uniform" or (
        name is not None and name.endswith(".QuorumPlan.uniform")
    )


class QuorumSafetyLinter:
    """File-set aware analyzer for QS001-QS003.

    ``prepare`` must run over the whole file set first: it computes the
    transitive set of *validating* function names (those that call
    ``validate_strict``, directly or through a callee) and the
    dataclass fields that are validated by their owning class (e.g.
    ``ClusterConfig.initial_quorum``), so that cross-file delegation is
    recognized.
    """

    rules = ("QS001", "QS002", "QS003")

    def __init__(self) -> None:
        self.validating_names: set[str] = set(_VALIDATING_ATTRS)
        #: class name -> field names some method validates via
        #: ``self.<field>.validate_strict(...)``.
        self.validated_fields: dict[str, set[str]] = {}
        #: Statically known default replication degree (from the
        #: ``ClusterConfig`` dataclass, when it is in the file set).
        self.default_replication_degree: Optional[int] = None

    # -- cross-file context ------------------------------------------------

    def prepare(self, sources: Iterable[SourceFile]) -> None:
        calls_in: dict[str, set[str]] = {}
        for source in sources:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self._scan_class(node)
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                called = {
                    segment
                    for segment in (
                        _final_segment(call_name(call))
                        for call in ast.walk(node)
                        if isinstance(call, ast.Call)
                    )
                    if segment
                }
                calls_in.setdefault(node.name, set()).update(called)
        # Fixpoint: a function is validating if it calls a validating
        # name.  Name-based (not call-graph exact) — deliberately
        # conservative in the "considers validating" direction only for
        # names that do validate somewhere in the file set.
        changed = True
        while changed:
            changed = False
            for name, called in calls_in.items():
                if name not in self.validating_names and (
                    called & self.validating_names
                ):
                    self.validating_names.add(name)
                    changed = True

    def _scan_class(self, node: ast.ClassDef) -> None:
        fields: set[str] = set()
        for item in ast.walk(node):
            if not isinstance(item, ast.Call):
                continue
            name = dotted_name(item.func)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[0] == "self"
                and parts[2] in _VALIDATING_ATTRS
            ):
                fields.add(parts[1])
        if fields:
            self.validated_fields.setdefault(node.name, set()).update(fields)
        if node.name == "ClusterConfig":
            for item in node.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.target.id == "replication_degree"
                    and item.value is not None
                ):
                    self.default_replication_degree = int_literal(item.value)

    # -- per-file analysis -------------------------------------------------

    def run(self, source: SourceFile) -> list[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        enclosing: dict[ast.AST, Optional[ast.AST]] = {}

        def index(node: ast.AST, func: Optional[ast.AST]) -> None:
            for child in ast.iter_child_nodes(node):
                parents[child] = node
                child_func = func
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    child_func = node
                enclosing[child] = child_func
                index(child, child_func)

        index(source.tree, None)

        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_literals(source, node))
            if _is_plan_producing(node):
                findings.extend(
                    self._check_construction(
                        source, node, parents, enclosing.get(node)
                    )
                )
            if isinstance(
                node, (ast.Call,)
            ) and _final_segment(call_name(node)) in _INSTALL_MESSAGES:
                findings.extend(
                    self._check_install_site(source, enclosing.get(node), node)
                )
        findings.extend(self._check_entry_points(source))
        deduped = sorted(set(findings))
        return [
            finding
            for finding in deduped
            if not source.suppressed(finding.line, finding.rule)
        ]

    # -- QS001 -------------------------------------------------------------

    def _check_construction(
        self,
        source: SourceFile,
        node: ast.Call,
        parents: dict[ast.AST, ast.AST],
        func: Optional[ast.AST],
    ) -> list[Finding]:
        if _final_segment(call_name(node)) in _TRUSTED_PRODUCERS:
            return []
        if self._value_is_discharged(node, parents, func):
            return []
        return [
            self._finding(
                source,
                node,
                "QS001",
                f"`{call_name(node)}(...)` result never reaches "
                "`validate_strict` in this scope and does not escape to "
                "a caller — quorum values must be validated before use",
            )
        ]

    def _value_is_discharged(
        self,
        node: ast.expr,
        parents: dict[ast.AST, ast.AST],
        func: Optional[ast.AST],
    ) -> bool:
        """Does this expression's value provably reach validation (or a
        caller who is responsible for it)?"""
        parent = parents.get(node)
        # Walk up through transparent containers toward the real use.
        while isinstance(parent, _TRANSPARENT):
            node = parent  # type: ignore[assignment]
            parent = parents.get(parent)
        if parent is None:
            return False
        if isinstance(parent, ast.Return):
            return True
        if isinstance(parent, ast.Lambda) and parent.body is node:
            return True
        if isinstance(parent, ast.Attribute):
            outer = parents.get(parent)
            if isinstance(outer, ast.Call) and outer.func is parent:
                if parent.attr in _VALIDATING_ATTRS:
                    return True
                if _is_plan_producing(outer):
                    # e.g. ``QuorumPlan.uniform(...).with_overrides(...)``
                    # — the outer builder is itself checked.
                    return True
            return False
        if isinstance(parent, ast.keyword):
            outer = parents.get(parent)
            if isinstance(outer, ast.Call):
                return self._argument_is_discharged(
                    outer, keyword=parent.arg
                )
            return False
        if isinstance(parent, ast.Call) and node in parent.args:
            return self._argument_is_discharged(parent, keyword=None)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                return False
            return any(
                self._name_is_discharged(name, func) for name in names
            )
        return False

    def _argument_is_discharged(
        self, call: ast.Call, keyword: Optional[str]
    ) -> bool:
        name = call_name(call)
        final = _final_segment(name)
        if final in self.validating_names:
            return True
        if _is_plan_producing(call):
            return True
        if keyword is not None and final in self.validated_fields:
            return keyword in self.validated_fields[final]
        return False

    def _name_is_discharged(
        self, name: str, func: Optional[ast.AST]
    ) -> bool:
        if func is None:
            return False
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target is not None:
                    parts = target.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] == name
                        and parts[1] in _VALIDATING_ATTRS
                    ):
                        return True
                if _final_segment(target) in self.validating_names:
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        if isinstance(arg, ast.Name) and arg.id == name:
                            return True
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id == name:
                    return True
        return False

    # -- QS002 -------------------------------------------------------------

    def _check_install_site(
        self,
        source: SourceFile,
        func: Optional[ast.AST],
        message: ast.Call,
    ) -> list[Finding]:
        if func is None or not isinstance(
            func, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return []
        if self._function_validates(func):
            return []
        return [
            self._finding(
                source,
                message,
                "QS002",
                f"`{func.name}` broadcasts "
                f"`{_final_segment(call_name(message))}` without calling "
                "`validate_strict` (directly or via a validating callee) "
                "— an unvalidated plan could be installed cluster-wide",
            )
        ]

    def _check_entry_points(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            is_entry = node.name.startswith("change_") or (
                node.name == "_reconfigure"
            )
            if not is_entry:
                continue
            if not self._function_validates(node):
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QS002",
                        f"reconfiguration entry point `{node.name}` "
                        "neither validates its plan nor delegates to a "
                        "validating function",
                    )
                )
        return findings

    def _function_validates(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if _final_segment(call_name(node)) in self.validating_names:
                    return True
        return False

    # -- QS003 -------------------------------------------------------------

    def _check_literals(
        self, source: SourceFile, node: ast.Call
    ) -> list[Finding]:
        name = call_name(node)
        final = _final_segment(name)
        if final is None and isinstance(node.func, ast.Attribute):
            # Chains rooted at a call — ``QuorumConfig(...).validate_strict``
            # — have no dotted name; dispatch on the attribute itself.
            final = node.func.attr
        if final == "from_write":
            return self._check_from_write_literals(source, node)
        if final == "validate_strict" or final == "is_strict":
            return self._check_validate_literals(source, node)
        if final == "ClusterConfig":
            return self._check_cluster_literals(source, node)
        return []

    @staticmethod
    def _quorum_literals(
        node: ast.expr,
    ) -> Optional[tuple[int, int]]:
        """(read, write) when ``node`` is a QuorumConfig literal ctor."""
        if not isinstance(node, ast.Call):
            return None
        if _final_segment(call_name(node)) != "QuorumConfig":
            return None
        read = write = None
        positional = [int_literal(arg) for arg in node.args]
        if len(positional) >= 1:
            read = positional[0]
        if len(positional) >= 2:
            write = positional[1]
        for kw in node.keywords:
            if kw.arg == "read":
                read = int_literal(kw.value)
            elif kw.arg == "write":
                write = int_literal(kw.value)
        if read is None or write is None:
            return None
        return read, write

    def _strictness_findings(
        self,
        source: SourceFile,
        node: ast.AST,
        read: int,
        write: int,
        degree: int,
    ) -> list[Finding]:
        problems: list[str] = []
        if min(read, write) < 1:
            problems.append("quorum sizes must be >= 1")
        if read + write <= degree:
            problems.append(
                f"R + W = {read + write} does not exceed N = {degree} — "
                "read and write quorums may fail to intersect"
            )
        if max(read, write) > degree:
            problems.append(
                f"max(R, W) = {max(read, write)} exceeds N = {degree}"
            )
        return [
            self._finding(
                source,
                node,
                "QS003",
                f"R={read}, W={write} provably violates strict quorum "
                f"intersection: {problem}",
            )
            for problem in problems
        ]

    def _check_validate_literals(
        self, source: SourceFile, node: ast.Call
    ) -> list[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return []
        pair = self._quorum_literals(node.func.value)
        if pair is None or not node.args:
            return []
        degree = int_literal(node.args[0])
        if degree is None:
            return []
        return self._strictness_findings(source, node, *pair, degree)

    def _check_cluster_literals(
        self, source: SourceFile, node: ast.Call
    ) -> list[Finding]:
        degree: Optional[int] = None
        quorum: Optional[tuple[int, int]] = None
        quorum_node: Optional[ast.expr] = None
        if len(node.args) >= 4:
            degree = int_literal(node.args[3])
        for kw in node.keywords:
            if kw.arg == "replication_degree":
                degree = int_literal(kw.value)
            elif kw.arg == "initial_quorum":
                quorum = self._quorum_literals(kw.value)
                quorum_node = kw.value
        if quorum is None or quorum_node is None:
            return []
        if degree is None:
            degree = self.default_replication_degree
        if degree is None:
            return []
        return self._strictness_findings(
            source, quorum_node, *quorum, degree
        )

    def _check_from_write_literals(
        self, source: SourceFile, node: ast.Call
    ) -> list[Finding]:
        write = degree = None
        positional = [int_literal(arg) for arg in node.args]
        if len(positional) >= 1:
            write = positional[0]
        if len(positional) >= 2:
            degree = positional[1]
        for kw in node.keywords:
            if kw.arg == "write":
                write = int_literal(kw.value)
            elif kw.arg == "replication_degree":
                degree = int_literal(kw.value)
        if write is None or degree is None:
            return []
        if not 1 <= write <= degree:
            return [
                self._finding(
                    source,
                    node,
                    "QS003",
                    f"from_write({write}, {degree}): write quorum outside "
                    f"[1, {degree}] can never be strict",
                )
            ]
        return []

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _finding(
        source: SourceFile, node: ast.AST, rule: str, message: str
    ) -> Finding:
        return Finding(
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            severity=Severity.ERROR,
        )
