"""Entry point for ``python -m repro.qlint``."""

import sys

from repro.qlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
