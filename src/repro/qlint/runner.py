"""Orchestrates the analyzers over a file set.

Default scope (when no paths are given): the protocol packages named in
the determinism contract — ``sim``, ``sds``, ``autonomic``, ``reconfig``
— plus ``common`` for the determinism rules, and all of ``src/repro``
for the quorum-safety rules.  Explicit paths run every analyzer over
exactly those paths (that is what the fixture tests and CI do).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.qlint.astutils import SourceFile, iter_python_files
from repro.qlint.determinism import DeterminismLinter
from repro.qlint.findings import Finding, Severity
from repro.qlint.quorum_safety import QuorumSafetyLinter

#: Packages the determinism rules walk by default, relative to the
#: ``repro`` package root.  ``net`` (the live runtime) is in scope too:
#: its wall-clock/entropy use is waived file-by-file via the
#: ``[tool.qlint] nondeterminism_allowed`` prefixes, while QD003/QD004
#: stay enforced there — a blanket skip would lose those.
DETERMINISM_PACKAGES = (
    "sim", "sds", "autonomic", "reconfig", "common", "net"
)

ALL_RULES = tuple(DeterminismLinter.rules) + tuple(QuorumSafetyLinter.rules)

RULE_SUMMARIES = {
    "QL000": "file cannot be parsed",
    "QD001": "unseeded randomness outside common/rng.py",
    "QD002": "wall-clock access in simulated code",
    "QD003": "iteration over an unordered set",
    "QD004": "mutable default argument",
    "QS001": "quorum construction never validated",
    "QS002": "reconfiguration site installs an unvalidated plan",
    "QS003": "statically provable strict-quorum violation",
}


def repro_root() -> Path:
    """The installed ``repro`` package directory (i.e. ``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def load_nondeterminism_allowlist(
    pyproject: Optional[Path] = None,
) -> tuple[str, ...]:
    """``[tool.qlint] nondeterminism_allowed`` path prefixes.

    Read from the repo's ``pyproject.toml`` (or an explicit path, for
    tests).  Uses :mod:`tomllib` where available (3.11+) and a minimal
    line parser on older interpreters — the repo supports 3.9 and must
    not grow a toml dependency for one key.
    """
    path = pyproject
    if path is None:
        path = repro_root().parent.parent / "pyproject.toml"
    if not path.exists():
        return ()
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:
        return _parse_allowlist_fallback(text)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return ()
    entries = (
        data.get("tool", {}).get("qlint", {}).get("nondeterminism_allowed")
    )
    if not isinstance(entries, list):
        return ()
    return tuple(str(entry) for entry in entries)


def _parse_allowlist_fallback(text: str) -> tuple[str, ...]:
    """Extract the one array we need without a toml parser."""
    in_section = False
    fragments: list[str] = []
    collecting = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if line.startswith("["):
            if collecting:
                break
            in_section = line == "[tool.qlint]"
            continue
        if not in_section:
            continue
        if collecting:
            fragments.append(line)
            if "]" in line:
                break
            continue
        if line.startswith("nondeterminism_allowed"):
            _key, _eq, rest = line.partition("=")
            fragments.append(rest.strip())
            if "]" in rest:
                break
            collecting = True
    joined = " ".join(fragments)
    if "[" not in joined or "]" not in joined:
        return ()
    inner = joined[joined.index("[") + 1: joined.index("]")]
    return tuple(
        part.strip().strip("'\"")
        for part in inner.split(",")
        if part.strip().strip("'\"")
    )


def _parse(
    paths: Sequence[Path],
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every python file; unparseable files become QL000 findings."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in iter_python_files(list(paths)):
        try:
            sources.append(SourceFile.parse(path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(
                Finding(
                    path=str(path),
                    line=getattr(exc, "lineno", 1) or 1,
                    column=1,
                    rule="QL000",
                    message=f"cannot parse file: {exc}",
                    severity=Severity.ERROR,
                )
            )
    return sources, errors


def run_suite(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Sequence[str]] = None,
    nondeterminism_allowed: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Run every analyzer; return the combined, filtered finding list.

    ``paths=None`` selects the default scope described in the module
    docstring.  ``select`` restricts output to the given rule ids.
    ``nondeterminism_allowed`` overrides the pyproject allowlist (pass
    ``()`` to disable it).
    """
    if nondeterminism_allowed is None:
        nondeterminism_allowed = load_nondeterminism_allowlist()
    if paths is None:
        root = repro_root()
        determinism_paths = [
            root / package
            for package in DETERMINISM_PACKAGES
            if (root / package).exists()
        ]
        quorum_paths: Sequence[Path] = [root]
    else:
        determinism_paths = list(paths)
        quorum_paths = list(paths)

    determinism_sources, determinism_errors = _parse(determinism_paths)
    quorum_sources, quorum_errors = _parse(quorum_paths)

    findings: list[Finding] = list(determinism_errors) + list(quorum_errors)

    determinism_linter = DeterminismLinter(
        nondeterminism_allowed=nondeterminism_allowed
    )
    for source in determinism_sources:
        findings.extend(determinism_linter.run(source))

    quorum_linter = QuorumSafetyLinter()
    quorum_linter.prepare(quorum_sources)
    for source in quorum_sources:
        findings.extend(quorum_linter.run(source))

    unique = sorted(set(findings))
    if select:
        wanted = set(select)
        unique = [f for f in unique if f.rule in wanted]
    return unique
