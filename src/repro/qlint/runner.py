"""Orchestrates the analyzers over a file set.

Default scope (when no paths are given): the protocol packages named in
the determinism contract — ``sim``, ``sds``, ``autonomic``, ``reconfig``
— plus ``common`` for the determinism rules, and all of ``src/repro``
for the quorum-safety rules.  Explicit paths run every analyzer over
exactly those paths (that is what the fixture tests and CI do).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.qlint.astutils import SourceFile, iter_python_files
from repro.qlint.determinism import DeterminismLinter
from repro.qlint.findings import Finding, Severity
from repro.qlint.quorum_safety import QuorumSafetyLinter

#: Packages the determinism rules walk by default, relative to the
#: ``repro`` package root.
DETERMINISM_PACKAGES = ("sim", "sds", "autonomic", "reconfig", "common")

ALL_RULES = tuple(DeterminismLinter.rules) + tuple(QuorumSafetyLinter.rules)

RULE_SUMMARIES = {
    "QL000": "file cannot be parsed",
    "QD001": "unseeded randomness outside common/rng.py",
    "QD002": "wall-clock access in simulated code",
    "QD003": "iteration over an unordered set",
    "QD004": "mutable default argument",
    "QS001": "quorum construction never validated",
    "QS002": "reconfiguration site installs an unvalidated plan",
    "QS003": "statically provable strict-quorum violation",
}


def repro_root() -> Path:
    """The installed ``repro`` package directory (i.e. ``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def _parse(
    paths: Sequence[Path],
) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every python file; unparseable files become QL000 findings."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in iter_python_files(list(paths)):
        try:
            sources.append(SourceFile.parse(path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(
                Finding(
                    path=str(path),
                    line=getattr(exc, "lineno", 1) or 1,
                    column=1,
                    rule="QL000",
                    message=f"cannot parse file: {exc}",
                    severity=Severity.ERROR,
                )
            )
    return sources, errors


def run_suite(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Run every analyzer; return the combined, filtered finding list.

    ``paths=None`` selects the default scope described in the module
    docstring.  ``select`` restricts output to the given rule ids.
    """
    if paths is None:
        root = repro_root()
        determinism_paths = [
            root / package
            for package in DETERMINISM_PACKAGES
            if (root / package).exists()
        ]
        quorum_paths: Sequence[Path] = [root]
    else:
        determinism_paths = list(paths)
        quorum_paths = list(paths)

    determinism_sources, determinism_errors = _parse(determinism_paths)
    quorum_sources, quorum_errors = _parse(quorum_paths)

    findings: list[Finding] = list(determinism_errors) + list(quorum_errors)

    determinism_linter = DeterminismLinter()
    for source in determinism_sources:
        findings.extend(determinism_linter.run(source))

    quorum_linter = QuorumSafetyLinter()
    quorum_linter.prepare(quorum_sources)
    for source in quorum_sources:
        findings.extend(quorum_linter.run(source))

    unique = sorted(set(findings))
    if select:
        wanted = set(select)
        unique = [f for f in unique if f.rule in wanted]
    return unique
