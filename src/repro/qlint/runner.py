"""Orchestrates the analyzers over a file set.

Default scope (when no paths are given): the protocol packages named in
the determinism contract — ``sim``, ``sds``, ``autonomic``, ``reconfig``
— plus ``common`` and ``net`` for the determinism and concurrency rules,
and all of ``src/repro`` for the cross-file quorum-safety and protocol
rules.  Explicit paths run every analyzer over exactly those paths (that
is what the fixture tests and CI do).

Suppression layers, outermost first:

* ``[tool.qlint] nondeterminism_allowed`` — path prefixes whose QD001/2
  findings are waived (the live runtime is nondeterministic by nature);
* ``[tool.qlint.allow]`` — per-rule path-prefix waivers
  (``QC003 = ["harness/"]``), for rules that do not apply to a package;
* ``qlint-baseline.json`` — individually reviewed, justified findings
  (see :mod:`repro.qlint.baseline`); stale entries become ``QL001``
  warnings;
* ``# qlint: ok RULE`` line pragmas, handled inside each linter.

A whole-run result cache (``--cache DIR``) keys on the sha256 of every
analyzed file plus the suppression configuration — the cross-file rules
make per-file caching unsound, but a clean CI re-run on identical
sources is a single digest lookup.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.qlint import baseline as baseline_mod
from repro.qlint.astutils import (
    SourceFile,
    _pragma_lines,
    iter_python_files,
    relative_to_repro,
)
from repro.qlint.baseline import BaselineEntry
from repro.qlint.concurrency import ConcurrencyLinter
from repro.qlint.determinism import DeterminismLinter
from repro.qlint.findings import Finding, Severity
from repro.qlint.protocol import ProtocolLinter
from repro.qlint.quorum_safety import QuorumSafetyLinter

#: Packages the determinism and concurrency rules walk by default,
#: relative to the ``repro`` package root.  ``net`` (the live runtime)
#: is in scope too: its wall-clock/entropy use is waived file-by-file
#: via the ``[tool.qlint] nondeterminism_allowed`` prefixes, while
#: QD003/QD004 and the QC rules stay enforced there — a blanket skip
#: would lose those.
DETERMINISM_PACKAGES = (
    "sim", "sds", "autonomic", "reconfig", "common", "net"
)

#: Bump when rule semantics change — invalidates result caches.
RULESET_VERSION = "2"

ALL_RULES = (
    tuple(DeterminismLinter.rules)
    + tuple(QuorumSafetyLinter.rules)
    + tuple(ConcurrencyLinter.rules)
    + tuple(ProtocolLinter.rules)
)

RULE_SUMMARIES = {
    "QL000": "file cannot be parsed",
    "QL001": "stale baseline entry (warning)",
    "QD001": "unseeded randomness outside common/rng.py",
    "QD002": "wall-clock access in simulated code",
    "QD003": "iteration over an unordered set",
    "QD004": "mutable default argument",
    "QS001": "quorum construction never validated",
    "QS002": "reconfiguration site installs an unvalidated plan",
    "QS003": "statically provable strict-quorum violation",
    "QC001": "shared-state check-then-act across a suspension point",
    "QC002": "shared-container iteration with a suspension in the body",
    "QC003": "captured epoch/cfg/plan/ring value stale after suspension",
    "QC004": "captured lease/grant/expiry value stale after suspension",
    "QP001": "wire-registry exhaustiveness / append-only order",
    "QP002": "provable R+W>N violation in quorum arithmetic",
}


def repro_root() -> Path:
    """The installed ``repro`` package directory (i.e. ``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def _pyproject_path(pyproject: Optional[Path]) -> Path:
    if pyproject is not None:
        return pyproject
    return repro_root().parent.parent / "pyproject.toml"


def _load_toml_tool_qlint(path: Path) -> Optional[dict]:
    """``[tool.qlint]`` as a dict via tomllib, or None if unavailable."""
    if not path.exists():
        return {}
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:
        return None
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return {}
    section = data.get("tool", {}).get("qlint", {})
    return section if isinstance(section, dict) else {}


def load_nondeterminism_allowlist(
    pyproject: Optional[Path] = None,
) -> tuple[str, ...]:
    """``[tool.qlint] nondeterminism_allowed`` path prefixes.

    Read from the repo's ``pyproject.toml`` (or an explicit path, for
    tests).  Uses :mod:`tomllib` where available (3.11+) and a minimal
    line parser on older interpreters — the repo supports 3.9 and must
    not grow a toml dependency for one key.
    """
    path = _pyproject_path(pyproject)
    section = _load_toml_tool_qlint(path)
    if section is None:
        return _parse_allowlist_fallback(
            path.read_text(encoding="utf-8")
        )
    entries = section.get("nondeterminism_allowed")
    if not isinstance(entries, list):
        return ()
    return tuple(str(entry) for entry in entries)


def load_rule_allowlists(
    pyproject: Optional[Path] = None,
) -> Dict[str, Tuple[str, ...]]:
    """Per-rule path-prefix waivers from ``[tool.qlint.allow]``.

    Maps rule id -> package-relative path prefixes whose findings for
    that rule are waived (reported in ``--stats`` as suppression debt,
    dropped from the gating output).
    """
    path = _pyproject_path(pyproject)
    section = _load_toml_tool_qlint(path)
    if section is None:
        return _parse_section_arrays_fallback(
            path.read_text(encoding="utf-8"), "[tool.qlint.allow]"
        )
    allow = section.get("allow")
    if not isinstance(allow, dict):
        return {}
    return {
        str(rule): tuple(str(prefix) for prefix in prefixes)
        for rule, prefixes in allow.items()
        if isinstance(prefixes, list)
    }


def _parse_section_arrays_fallback(
    text: str, header: str
) -> Dict[str, Tuple[str, ...]]:
    """Every ``key = [ ... ]`` string array in one toml section,
    without a toml parser (3.9/3.10 fallback)."""
    in_section = False
    arrays: Dict[str, Tuple[str, ...]] = {}
    key: Optional[str] = None
    fragments: list[str] = []

    def flush() -> None:
        nonlocal key, fragments
        if key is None:
            return
        joined = " ".join(fragments)
        if "[" in joined and "]" in joined:
            inner = joined[joined.index("[") + 1: joined.index("]")]
            values = tuple(
                part.strip().strip("'\"")
                for part in inner.split(",")
                if part.strip().strip("'\"")
            )
            arrays[key] = values
        key = None
        fragments = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if line.startswith("["):
            flush()
            if in_section:
                break
            in_section = line == header
            continue
        if not in_section or not line:
            continue
        if key is not None:
            fragments.append(line)
            if "]" in line:
                flush()
            continue
        name, eq, rest = line.partition("=")
        if not eq:
            continue
        key = name.strip()
        fragments = [rest.strip()]
        if "]" in rest:
            flush()
    flush()
    return arrays


def _parse_allowlist_fallback(text: str) -> tuple[str, ...]:
    """Extract the one array we need without a toml parser."""
    arrays = _parse_section_arrays_fallback(text, "[tool.qlint]")
    return arrays.get("nondeterminism_allowed", ())


# ---------------------------------------------------------------------------
# suite execution
# ---------------------------------------------------------------------------


@dataclass
class SuiteReport:
    """Everything one suite run produced, including what was waived."""

    findings: list[Finding] = field(default_factory=list)
    waived: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    files: int = 0
    pragma_rule_counts: Dict[str, int] = field(default_factory=dict)
    baseline_entry_count: int = 0

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "symbol": e.symbol,
                    "justification": e.justification,
                }
                for e in self.stale_entries
            ],
            "files": self.files,
            "pragma_rule_counts": dict(
                sorted(self.pragma_rule_counts.items())
            ),
            "baseline_entry_count": self.baseline_entry_count,
        }

    @staticmethod
    def from_dict(data: dict) -> "SuiteReport":
        def findings_of(key: str) -> list[Finding]:
            return [
                Finding(
                    path=raw["path"],
                    line=raw["line"],
                    column=raw["column"],
                    rule=raw["rule"],
                    message=raw["message"],
                    severity=Severity(raw["severity"]),
                    symbol=raw.get("symbol", ""),
                )
                for raw in data.get(key, [])
            ]

        return SuiteReport(
            findings=findings_of("findings"),
            waived=findings_of("waived"),
            baselined=findings_of("baselined"),
            stale_entries=[
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    symbol=raw["symbol"],
                    justification=raw["justification"],
                )
                for raw in data.get("stale_entries", [])
            ],
            files=data.get("files", 0),
            pragma_rule_counts=dict(data.get("pragma_rule_counts", {})),
            baseline_entry_count=data.get("baseline_entry_count", 0),
        )


def _read_files(
    paths: Sequence[Path],
) -> list[tuple[Path, Optional[str]]]:
    """Read every python file's text (None for undecodable files)."""
    out: list[tuple[Path, Optional[str]]] = []
    for path in iter_python_files(list(paths)):
        try:
            out.append((path, path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            out.append((path, None))
    return out


def _parse_texts(
    files: Iterable[tuple[Path, Optional[str]]],
) -> tuple[list[SourceFile], list[Finding]]:
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path, text in files:
        if text is None:
            errors.append(
                Finding(
                    path=str(path),
                    line=1,
                    column=1,
                    rule="QL000",
                    message="cannot read file as utf-8",
                    severity=Severity.ERROR,
                )
            )
            continue
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=str(path),
                    line=getattr(exc, "lineno", 1) or 1,
                    column=1,
                    rule="QL000",
                    message=f"cannot parse file: {exc}",
                    severity=Severity.ERROR,
                )
            )
            continue
        sources.append(
            SourceFile(
                path=path,
                source=text,
                tree=tree,
                pragmas=_pragma_lines(text),
            )
        )
    return sources, errors


def _cache_digest(
    files: Sequence[tuple[Path, Optional[str]]],
    nondeterminism_allowed: Sequence[str],
    rule_allow: Mapping[str, Sequence[str]],
    baseline_entries: Sequence[BaselineEntry],
) -> str:
    hasher = hashlib.sha256()
    hasher.update(RULESET_VERSION.encode())
    hasher.update(repr(tuple(nondeterminism_allowed)).encode())
    hasher.update(
        repr(sorted((k, tuple(v)) for k, v in rule_allow.items())).encode()
    )
    hasher.update(
        repr(
            sorted(
                (e.rule, e.path, e.symbol, e.justification)
                for e in baseline_entries
            )
        ).encode()
    )
    for path, text in sorted(
        files, key=lambda item: relative_to_repro(item[0])
    ):
        hasher.update(relative_to_repro(path).encode())
        hasher.update(b"\x00")
        hasher.update((text or "").encode())
        hasher.update(b"\x01")
    return hasher.hexdigest()


def run_suite_report(
    paths: Optional[Sequence[Path]] = None,
    nondeterminism_allowed: Optional[Sequence[str]] = None,
    rule_allow: Optional[Mapping[str, Sequence[str]]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    cache_dir: Optional[Path] = None,
) -> SuiteReport:
    """Run every analyzer and report findings plus everything waived."""
    if nondeterminism_allowed is None:
        nondeterminism_allowed = load_nondeterminism_allowlist()
    if rule_allow is None:
        rule_allow = load_rule_allowlists()

    baseline_entries: Tuple[BaselineEntry, ...] = ()
    resolved_baseline = baseline_path
    if use_baseline:
        if resolved_baseline is None:
            resolved_baseline = baseline_mod.default_baseline_path()
        if resolved_baseline.exists():
            baseline_entries = baseline_mod.load_baseline(resolved_baseline)

    if paths is None:
        root = repro_root()
        scoped_packages = tuple(
            package
            for package in DETERMINISM_PACKAGES
            if (root / package).exists()
        )
        files = _read_files([root])

        def in_determinism_scope(path: Path) -> bool:
            relative = relative_to_repro(path)
            return any(
                relative.startswith(package + "/")
                for package in scoped_packages
            )

    else:
        files = _read_files(list(paths))

        def in_determinism_scope(path: Path) -> bool:
            return True

    if cache_dir is not None:
        digest = _cache_digest(
            files, nondeterminism_allowed, rule_allow, baseline_entries
        )
        cache_file = Path(cache_dir) / f"qlint-{digest}.json"
        if cache_file.exists():
            try:
                return SuiteReport.from_dict(
                    json.loads(cache_file.read_text(encoding="utf-8"))
                )
            except (ValueError, KeyError):
                pass

    sources, parse_errors = _parse_texts(files)
    raw: list[Finding] = list(parse_errors)

    determinism_linter = DeterminismLinter(
        nondeterminism_allowed=nondeterminism_allowed
    )
    concurrency_linter = ConcurrencyLinter()
    for source in sources:
        if in_determinism_scope(source.path):
            raw.extend(determinism_linter.run(source))
            raw.extend(concurrency_linter.run(source))

    quorum_linter = QuorumSafetyLinter()
    quorum_linter.prepare(sources)
    protocol_linter = ProtocolLinter()
    protocol_linter.prepare(sources)
    for source in sources:
        raw.extend(quorum_linter.run(source))
        raw.extend(protocol_linter.run(source))

    raw = sorted(set(raw))

    # Per-rule allowlist waivers.
    kept: list[Finding] = []
    waived: list[Finding] = []
    for finding in raw:
        prefixes = rule_allow.get(finding.rule, ())
        relative = relative_to_repro(Path(finding.path))
        if any(relative.startswith(prefix) for prefix in prefixes):
            waived.append(finding)
        else:
            kept.append(finding)

    # Baseline.  An entry is *stale* only when its file was actually
    # analyzed and produced no matching finding; entries whose files are
    # outside this run's scope (fixture trees, partial paths) are simply
    # inapplicable, not stale.
    stale: list[BaselineEntry] = []
    baselined: list[Finding] = []
    if baseline_entries:
        kept, baselined, stale = baseline_mod.apply_baseline(
            kept, baseline_entries
        )
        analyzed = {relative_to_repro(path) for path, _text in files}
        stale = [entry for entry in stale if entry.path in analyzed]
        assert resolved_baseline is not None
        kept.extend(
            baseline_mod.stale_entry_findings(stale, resolved_baseline)
        )
        kept.sort()

    pragma_rule_counts: Dict[str, int] = {}
    for source in sources:
        for rules in source.pragmas.values():
            for rule in rules:
                pragma_rule_counts[rule] = (
                    pragma_rule_counts.get(rule, 0) + 1
                )

    report = SuiteReport(
        findings=kept,
        waived=waived,
        baselined=baselined,
        stale_entries=stale,
        files=len(files),
        pragma_rule_counts=pragma_rule_counts,
        baseline_entry_count=len(baseline_entries),
    )

    if cache_dir is not None:
        cache_path = Path(cache_dir)
        cache_path.mkdir(parents=True, exist_ok=True)
        cache_file = cache_path / f"qlint-{digest}.json"
        cache_file.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True),
            encoding="utf-8",
        )

    return report


def run_suite(
    paths: Optional[Sequence[Path]] = None,
    select: Optional[Sequence[str]] = None,
    nondeterminism_allowed: Optional[Sequence[str]] = None,
    rule_allow: Optional[Mapping[str, Sequence[str]]] = None,
    baseline_path: Optional[Path] = None,
    use_baseline: bool = True,
    cache_dir: Optional[Path] = None,
) -> list[Finding]:
    """Run every analyzer; return the combined, filtered finding list.

    ``paths=None`` selects the default scope described in the module
    docstring.  ``select`` restricts output to the given rule ids.
    ``nondeterminism_allowed`` overrides the pyproject allowlist (pass
    ``()`` to disable it); ``rule_allow`` likewise overrides
    ``[tool.qlint.allow]``.  The checked-in baseline applies unless
    ``use_baseline=False``.
    """
    report = run_suite_report(
        paths=paths,
        nondeterminism_allowed=nondeterminism_allowed,
        rule_allow=rule_allow,
        baseline_path=baseline_path,
        use_baseline=use_baseline,
        cache_dir=cache_dir,
    )
    findings = report.findings
    if select:
        wanted = set(select)
        findings = [f for f in findings if f.rule in wanted]
    return findings


def collect_stats(report: SuiteReport) -> dict:
    """The ``--stats`` payload: findings + suppression debt, by rule
    and package, deterministic key order for committing snapshots."""

    def by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def by_package(findings: Sequence[Finding]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in findings:
            relative = relative_to_repro(Path(finding.path))
            package = relative.split("/", 1)[0] if "/" in relative else "."
            counts[package] = counts.get(package, 0) + 1
        return dict(sorted(counts.items()))

    return {
        "schema": "qlint-stats/1",
        "ruleset_version": RULESET_VERSION,
        "files": report.files,
        "findings": {
            "total": len(report.findings),
            "errors": sum(
                1 for f in report.findings if f.severity.fails_build
            ),
            "warnings": sum(
                1 for f in report.findings if not f.severity.fails_build
            ),
            "by_rule": by_rule(report.findings),
            "by_package": by_package(report.findings),
        },
        "suppressions": {
            "pragma_mentions_by_rule": dict(
                sorted(report.pragma_rule_counts.items())
            ),
            "baseline_entries": report.baseline_entry_count,
            "baseline_matched_findings": len(report.baselined),
            "baseline_matched_by_rule": by_rule(report.baselined),
            "baseline_stale_entries": len(report.stale_entries),
            "allowlist_waived": len(report.waived),
            "allowlist_waived_by_rule": by_rule(report.waived),
        },
    }
