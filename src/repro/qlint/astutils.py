"""Shared AST plumbing for the qlint analyzers.

The analyzers are plain ``ast`` walkers (no third-party dependency).
This module centralizes the pieces they share:

* :class:`SourceFile` — one parsed file with its pragma table;
* ``# qlint: ok RULE`` / ``# qlint: disable=RULE1,RULE2`` suppression
  pragmas, resolved per physical line;
* import resolution (which local names refer to which modules), so that
  ``random.random()`` is distinguished from ``self._rng.random()``;
* dotted-name rendering of call targets.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

_PRAGMA = re.compile(
    r"#\s*qlint:\s*(?:ok|disable=?)\s*([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*|all)?"
)


def _pragma_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed on that line.

    The sentinel rule id ``"all"`` suppresses every rule on the line.
    Pragmas are read from real comment tokens (not string literals).
    """
    pragmas: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            spec = match.group(1) or "all"
            rules = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
            pragmas[token.start[0]] = rules
    except tokenize.TokenError:  # pragma: no cover - broken source
        pass
    return pragmas


@dataclass
class SourceFile:
    """One file under analysis: path, source, AST, pragma table."""

    path: Path
    source: str
    tree: ast.Module
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @staticmethod
    def parse(path: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return SourceFile(
            path=path,
            source=source,
            tree=tree,
            pragmas=_pragma_lines(source),
        )

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.pragmas.get(line)
        return rules is not None and (rule in rules or "all" in rules)


class ImportMap:
    """Which local names are bound to which modules/objects.

    Tracks both plain module imports (``import random``,
    ``import numpy as np``) and from-imports (``from time import time``),
    mapping the *local* name to the fully qualified origin, e.g.::

        import numpy as np        ->  {"np": "numpy"}
        from random import choice ->  {"choice": "random.choice"}
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.objects: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self.modules[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import — not a stdlib module
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.objects[local] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Fully qualified name of a call target, or None.

        ``random.random`` resolves through a module import;
        ``np.random.default_rng`` through the dotted chain; a bare name
        resolves through from-imports.  Attribute chains rooted at
        anything else (``self._rng.random``) resolve to None — they are
        instance calls, not module-level calls.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if rest:
            module = self.modules.get(head)
            if module is not None:
                return f"{module}.{rest}"
            origin = self.objects.get(head)
            if origin is not None:
                return f"{origin}.{rest}"
            return None
        return self.objects.get(head, None)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The syntactic (unresolved) dotted name of a call target."""
    return dotted_name(node.func)


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, Optional[str]]]:
    """Yield ``(function_node, enclosing_class_name)`` pairs."""
    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: list[tuple[ast.AST, Optional[str]]] = []
            self._class: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._class.append(node.name)
            self.generic_visit(node)
            self._class.pop()

        def _visit_func(self, node: ast.AST) -> None:
            owner = self._class[-1] if self._class else None
            self.found.append((node, owner))
            self.generic_visit(node)

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

    visitor = _Visitor()
    visitor.visit(tree)
    yield from visitor.found


def iter_python_files(paths: list[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def int_literal(node: ast.expr) -> Optional[int]:
    """The value of an integer literal expression, else None."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = int_literal(node.operand)
        return -inner if inner is not None else None
    return None
