"""Shared AST plumbing for the qlint analyzers.

The analyzers are plain ``ast`` walkers (no third-party dependency).
This module centralizes the pieces they share:

* :class:`SourceFile` — one parsed file with its pragma table;
* ``# qlint: ok RULE`` / ``# qlint: disable=RULE1,RULE2`` suppression
  pragmas, resolved per physical line;
* import resolution (which local names refer to which modules), so that
  ``random.random()`` is distinguished from ``self._rng.random()``;
* dotted-name rendering of call targets.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

_PRAGMA = re.compile(
    r"#\s*qlint:\s*(?:ok|disable=?)\s*([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*|all)?"
)


def _pragma_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed on that line.

    The sentinel rule id ``"all"`` suppresses every rule on the line.
    Pragmas are read from real comment tokens (not string literals).
    """
    pragmas: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            spec = match.group(1) or "all"
            rules = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
            pragmas[token.start[0]] = rules
    except tokenize.TokenError:  # pragma: no cover - broken source
        pass
    return pragmas


@dataclass
class SourceFile:
    """One file under analysis: path, source, AST, pragma table."""

    path: Path
    source: str
    tree: ast.Module
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @staticmethod
    def parse(path: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return SourceFile(
            path=path,
            source=source,
            tree=tree,
            pragmas=_pragma_lines(source),
        )

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.pragmas.get(line)
        return rules is not None and (rule in rules or "all" in rules)


class ImportMap:
    """Which local names are bound to which modules/objects.

    Tracks both plain module imports (``import random``,
    ``import numpy as np``) and from-imports (``from time import time``),
    mapping the *local* name to the fully qualified origin, e.g.::

        import numpy as np        ->  {"np": "numpy"}
        from random import choice ->  {"choice": "random.choice"}
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.objects: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self.modules[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import — not a stdlib module
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.objects[local] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Fully qualified name of a call target, or None.

        ``random.random`` resolves through a module import;
        ``np.random.default_rng`` through the dotted chain; a bare name
        resolves through from-imports.  Attribute chains rooted at
        anything else (``self._rng.random``) resolve to None — they are
        instance calls, not module-level calls.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if rest:
            module = self.modules.get(head)
            if module is not None:
                return f"{module}.{rest}"
            origin = self.objects.get(head)
            if origin is not None:
                return f"{origin}.{rest}"
            return None
        return self.objects.get(head, None)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The syntactic (unresolved) dotted name of a call target."""
    return dotted_name(node.func)


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, Optional[str]]]:
    """Yield ``(function_node, enclosing_class_name)`` pairs."""
    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: list[tuple[ast.AST, Optional[str]]] = []
            self._class: list[str] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._class.append(node.name)
            self.generic_visit(node)
            self._class.pop()

        def _visit_func(self, node: ast.AST) -> None:
            owner = self._class[-1] if self._class else None
            self.found.append((node, owner))
            self.generic_visit(node)

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

    visitor = _Visitor()
    visitor.visit(tree)
    yield from visitor.found


def iter_python_files(paths: list[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def int_literal(node: ast.expr) -> Optional[int]:
    """The value of an integer literal expression, else None."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = int_literal(node.operand)
        return -inner if inner is not None else None
    return None


# ---------------------------------------------------------------------------
# Control-flow graph + suspension points (shared by the QC analyzers)
# ---------------------------------------------------------------------------

#: Function nodes the concurrency analyses walk.
FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Call-name suffixes whose yielded result suspends a protocol coroutine.
#: The simulator's processes are plain generators: they ``yield`` futures
#: and waitables (``sim.sleep(...)``, ``resource.use(...)``,
#: ``gate.wait()``, ``mutex.acquire()``, ``any_of(...)``) and the kernel
#: resumes them later — exactly an ``await``.  A generator containing at
#: least one such yield is classified as a *protocol coroutine* and every
#: one of its yields is then treated as a suspension point.
WAITABLE_CALL_NAMES = frozenset(
    {
        "sleep",
        "use",
        "wait",
        "wait_drained",
        "acquire",
        "future",
        "any_of",
        "all_of",
        "gather",
        "spawn",
    }
)


def walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` pruned at nested function/lambda scopes.

    Yields ``node`` itself and its descendants, but never descends into a
    nested ``def``/``async def``/``lambda`` body — those run in their own
    frame, on their own schedule, and must be analyzed separately.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def own_expressions(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a CFG node evaluates *itself*.

    Compound statements contribute only their header expression (an
    ``if``/``while`` test, a ``for`` iterable, a ``with`` context); their
    bodies are separate CFG nodes.  Simple statements contribute the whole
    statement.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, getattr(ast, "AsyncFor", ast.For))):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, getattr(ast, "AsyncWith", ast.With))):
        return [item.context_expr for item in stmt.items]
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def contains_suspension(node: ast.AST, include_yields: bool) -> bool:
    """Does this (own-scope) subtree suspend the enclosing coroutine?"""
    kinds: tuple = (ast.Await,)
    if include_yields:
        kinds = (ast.Await, ast.Yield, ast.YieldFrom)
    return any(isinstance(child, kinds) for child in walk_own(node))


class CFG:
    """Statement-level control-flow graph of one function body.

    ``stmts[i]`` is the i-th statement node; ``succ[i]`` its control-flow
    successors.  Exception edges are over-approximated: every statement
    inside a ``try`` body may jump to each handler (and to ``finally``).
    """

    def __init__(self) -> None:
        self.stmts: list[ast.stmt] = []
        self.succ: list[list[int]] = []
        #: (loop-head index, break-exit list) stack during construction.
        self._loops: list[tuple[int, list[int]]] = []

    # -- construction --------------------------------------------------------

    def _add(self, stmt: ast.stmt) -> int:
        self.stmts.append(stmt)
        self.succ.append([])
        return len(self.stmts) - 1

    def _link(self, sources: list[int], target: int) -> None:
        for source in sources:
            if target not in self.succ[source]:
                self.succ[source].append(target)

    def _sequence(self, body: list[ast.stmt], preds: list[int]) -> list[int]:
        for stmt in body:
            index = self._add(stmt)
            self._link(preds, index)
            preds = self._statement(stmt, index)
        return preds

    def _statement(self, stmt: ast.stmt, index: int) -> list[int]:
        if isinstance(stmt, ast.If):
            body_exits = self._sequence(stmt.body, [index])
            if stmt.orelse:
                else_exits = self._sequence(stmt.orelse, [index])
            else:
                else_exits = [index]
            return body_exits + else_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loops.append((index, []))
            body_exits = self._sequence(stmt.body, [index])
            self._link(body_exits, index)
            _head, breaks = self._loops.pop()
            if stmt.orelse:
                exits = self._sequence(stmt.orelse, [index])
            else:
                exits = [index]
            return exits + breaks
        if isinstance(stmt, ast.Try):
            first_body = len(self.stmts)
            body_exits = self._sequence(stmt.body, [index])
            body_nodes = list(range(first_body, len(self.stmts))) or [index]
            handler_exits: list[int] = []
            for handler in stmt.handlers:
                handler_exits.extend(
                    self._sequence(handler.body, list(body_nodes))
                )
            if stmt.orelse:
                body_exits = self._sequence(stmt.orelse, body_exits)
            all_exits = body_exits + handler_exits
            if stmt.finalbody:
                # ``finally`` runs on the normal paths *and* on exception
                # paths that no handler caught.
                return self._sequence(
                    stmt.finalbody, all_exits + list(body_nodes)
                )
            return all_exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._sequence(stmt.body, [index])
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append(index)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._link([index], self._loops[-1][0])
            return []
        match_type = getattr(ast, "Match", None)
        if match_type is not None and isinstance(stmt, match_type):
            exits: list[int] = [index]
            for case in stmt.cases:
                exits.extend(self._sequence(case.body, [index]))
            return exits
        return [index]

    @staticmethod
    def build(func: ast.AST) -> "CFG":
        cfg = CFG()
        cfg._sequence(list(getattr(func, "body", [])), [])
        return cfg


def classify_coroutines(tree: ast.Module) -> "set[ast.AST]":
    """The function nodes whose yields/awaits are suspension points.

    * every ``async def`` qualifies;
    * a generator qualifies when it yields a waitable-producing call
      (:data:`WAITABLE_CALL_NAMES`) — the simulator-process idiom;
    * classification propagates through ``yield from self.method(...)``
      and ``yield from function(...)`` delegation chains (fixpoint over
      the same class / same module), so e.g. a read path built from
      nested ``yield from`` layers is fully covered.
    """
    functions = list(walk_functions(tree))
    classified: set[ast.AST] = set()
    #: (class, name) -> node, for delegation resolution.
    by_name: dict[tuple[Optional[str], str], ast.AST] = {}
    #: node -> delegation targets (class-qualified and module-level).
    delegates: dict[ast.AST, list[tuple[Optional[str], str]]] = {}

    for node, owner in functions:
        name = getattr(node, "name", None)
        if name is not None:
            by_name[(owner, name)] = node
        if isinstance(node, ast.AsyncFunctionDef):
            classified.add(node)
            continue
        targets: list[tuple[Optional[str], str]] = []
        for child in walk_own(node):
            value: Optional[ast.expr] = None
            if isinstance(child, ast.Yield):
                value = child.value
            elif isinstance(child, ast.YieldFrom):
                value = child.value
            if value is None:
                continue
            if isinstance(value, ast.Call):
                dotted = dotted_name(value.func)
                final = dotted.rsplit(".", 1)[-1] if dotted else None
                if final in WAITABLE_CALL_NAMES:
                    classified.add(node)
                if dotted is not None and isinstance(child, ast.YieldFrom):
                    parts = dotted.split(".")
                    if len(parts) == 2 and parts[0] == "self":
                        targets.append((owner, parts[1]))
                    elif len(parts) == 1:
                        targets.append((None, parts[0]))
        if targets:
            delegates[node] = targets

    changed = True
    while changed:
        changed = False
        for node, targets in delegates.items():
            if node in classified:
                continue
            for key in targets:
                target = by_name.get(key)
                if target is not None and target in classified:
                    classified.add(node)
                    changed = True
                    break
    return classified


def relative_to_repro(path: Path) -> str:
    """Path relative to the installed ``repro`` package root."""
    root = Path(__file__).resolve().parent.parent
    try:
        relative = path.resolve().relative_to(root)
    except ValueError:
        return str(path).replace("\\", "/")
    return str(relative).replace("\\", "/")
