"""Finding model shared by all qlint analyzers.

A :class:`Finding` is one rule violation at one source location.  The
model is deliberately flat — rule id, severity, location, message — so
that it serializes to JSON losslessly (for CI) and renders to a compact
one-line form (for humans) without any analyzer-specific logic.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are protocol-safety or reproducibility hazards and
    fail the build; ``WARNING`` findings are suspicious constructs that
    deserve a look but do not gate CI (exit code stays 0).
    """

    ERROR = "error"
    WARNING = "warning"

    @property
    def fails_build(self) -> bool:
        return self is Severity.ERROR


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``symbol`` is the enclosing ``Class.function`` (best effort, may be
    empty).  Baseline entries match on ``(rule, path, symbol)`` rather
    than line numbers, so unrelated edits to a file do not invalidate
    accepted findings.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    symbol: str = ""

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in sorted(findings)]
    errors = sum(1 for f in findings if f.severity.fails_build)
    warnings = len(findings) - errors
    lines.append(
        f"qlint: {errors} error(s), {warnings} warning(s)"
        if findings
        else "qlint: clean"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [f.to_dict() for f in sorted(findings)],
        "errors": sum(1 for f in findings if f.severity.fails_build),
        "warnings": sum(
            1 for f in findings if not f.severity.fails_build
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow-command annotations, one per finding.

    ``::error file=...,line=...,col=...,title=RULE::message`` lines show
    up inline on the PR diff; non-command lines are passed through as
    plain log output, so the human summary rides along.
    """
    lines = []
    for finding in sorted(findings):
        level = "error" if finding.severity.fails_build else "warning"
        message = finding.message.replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.column},title={finding.rule}::{message}"
        )
    errors = sum(1 for f in findings if f.severity.fails_build)
    warnings = len(findings) - errors
    lines.append(
        f"qlint: {errors} error(s), {warnings} warning(s)"
        if findings
        else "qlint: clean"
    )
    return "\n".join(lines)


def exit_code(findings: Iterable[Finding]) -> int:
    """Non-zero iff any finding gates the build."""
    return 1 if any(f.severity.fails_build for f in findings) else 0
