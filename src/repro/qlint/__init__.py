"""qlint — static analysis for Q-OPT's protocol invariants.

Four analyzer families over the ``repro`` source tree:

* **Determinism linters** (QD001-QD004): the discrete-event simulator
  must be bit-for-bit reproducible per seed, so unseeded randomness,
  wall-clock reads, unordered-set iteration and mutable default
  arguments are errors in protocol code.
* **Quorum-safety analyzer** (QS001-QS003): every ``QuorumConfig`` /
  ``QuorumPlan`` that can reach the data plane must pass through
  ``validate_strict`` (R + W > N, max(R, W) <= N), and statically
  decidable violations are reported at lint time.
* **Concurrency analyzer** (QC001-QC004): CFG-based interleaving checks
  across suspension points (``await`` / simulator ``yield``) —
  check-then-act races, shared-container iteration, and stale
  epoch/cfg/plan/ring captures.
* **Protocol analyzer** (QP001-QP002): wire-registry exhaustiveness and
  append-only ordering, plus symbolic ``R + W > N`` verification at
  quorum-arithmetic sites.

Run via ``python -m repro.qlint`` or through the bundled pytest plugin
(``repro.qlint.pytest_plugin``), which tier-1 test runs load.  See
``docs/QLINT.md`` for the rule catalog, baseline/allowlist workflow,
and CI integration.
"""

from repro.qlint.baseline import BaselineEntry, load_baseline
from repro.qlint.concurrency import ConcurrencyLinter
from repro.qlint.determinism import DeterminismLinter
from repro.qlint.findings import (
    Finding,
    Severity,
    exit_code,
    render_github,
    render_json,
    render_text,
)
from repro.qlint.protocol import ProtocolLinter, WIRE_REGISTRY_GOLDEN
from repro.qlint.quorum_safety import QuorumSafetyLinter
from repro.qlint.runner import (
    ALL_RULES,
    RULE_SUMMARIES,
    SuiteReport,
    collect_stats,
    run_suite,
    run_suite_report,
)

__all__ = [
    "ALL_RULES",
    "RULE_SUMMARIES",
    "BaselineEntry",
    "ConcurrencyLinter",
    "DeterminismLinter",
    "Finding",
    "ProtocolLinter",
    "QuorumSafetyLinter",
    "Severity",
    "SuiteReport",
    "WIRE_REGISTRY_GOLDEN",
    "collect_stats",
    "exit_code",
    "load_baseline",
    "render_github",
    "render_json",
    "render_text",
    "run_suite",
    "run_suite_report",
]
