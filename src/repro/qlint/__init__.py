"""qlint — static analysis for Q-OPT's protocol invariants.

Two analyzer families over the ``repro`` source tree:

* **Determinism linters** (QD001-QD004): the discrete-event simulator
  must be bit-for-bit reproducible per seed, so unseeded randomness,
  wall-clock reads, unordered-set iteration and mutable default
  arguments are errors in protocol code.
* **Quorum-safety analyzer** (QS001-QS003): every ``QuorumConfig`` /
  ``QuorumPlan`` that can reach the data plane must pass through
  ``validate_strict`` (R + W > N, max(R, W) <= N), and statically
  decidable violations are reported at lint time.

Run via ``python -m repro.qlint`` or through the bundled pytest plugin
(``repro.qlint.pytest_plugin``), which tier-1 test runs load.
"""

from repro.qlint.determinism import DeterminismLinter
from repro.qlint.findings import (
    Finding,
    Severity,
    exit_code,
    render_json,
    render_text,
)
from repro.qlint.quorum_safety import QuorumSafetyLinter
from repro.qlint.runner import ALL_RULES, RULE_SUMMARIES, run_suite

__all__ = [
    "ALL_RULES",
    "RULE_SUMMARIES",
    "DeterminismLinter",
    "Finding",
    "QuorumSafetyLinter",
    "Severity",
    "exit_code",
    "render_json",
    "render_text",
    "run_suite",
]
