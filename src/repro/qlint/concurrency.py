"""Concurrency linters (rules QC001-QC004).

Q-OPT's proxies, replicas, and reconfiguration managers are cooperative
coroutines: simulator processes (generators yielding waitables) and the
live asyncio runtime.  Between two suspension points a handler runs
atomically; *across* one, any other handler may run and mutate shared
state.  These rules flag the three interleaving bug classes that quorum
pipelining and non-blocking reconfiguration actually produce:

QC001  check-then-act-across-suspension
    A guard reads shared state (``self.attr`` or a module global), the
    coroutine suspends, and the guarded write happens after resumption.
    The classic TOCTOU: two handlers both pass the check, both act.
    Re-validate after the suspension point.  The monotonic-update idiom
    ``self.x = max(self.x, v)`` is exempt — it re-establishes its
    invariant regardless of the guard.

QC002  shared-iteration-across-suspension
    ``for item in self.container`` (or ``.items()/.keys()/.values()``)
    with a suspension point inside the loop body.  Another handler may
    mutate the container mid-iteration; snapshot with ``list(...)``.

QC003  stale-captured-protocol-value
    Two forms of the bug class that epoch fencing exists to prevent:
    (a) a local captured from epoch/cfg/plan/ring state on ``self`` is
    used after a suspension point without re-reading it; (b) an
    epoch/cfg guard is checked, the coroutine suspends, and a reply is
    sent without re-validating — the fencing decision is stale by the
    time it is acted on (paper Sec. 5.3: replicas must not serve
    operations from superseded epochs).

QC004  stale-captured-lease-value
    The lease analogue of QC003 form (a): a local captured from lease
    state on ``self`` (grant tables, held leases, expiry deadlines) is
    used after a suspension point without re-reading it.  Leases are
    invalidated *between* handler steps — by a foreign write, an epoch
    change, or plain expiry — so a grant or expiry captured before a
    suspension says nothing about validity after it (invariant I7:
    the primary must re-validate the grant after every wait).

Suspension points are ``await`` expressions and — in classified
*protocol coroutines* (see :func:`repro.qlint.astutils.classify_coroutines`)
— every ``yield`` / ``yield from``.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from repro.qlint.astutils import (
    CFG,
    SourceFile,
    classify_coroutines,
    contains_suspension,
    dotted_name,
    own_expressions,
    walk_functions,
    walk_own,
)
from repro.qlint.findings import Finding, Severity

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "put_nowait",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Identifier tokens that mark protocol-configuration state (QC003).
#: Deliberately narrow: ``epoch``/``cfg``/``plan``/``ring`` are the
#: fenced quantities in Q-OPT; ``config`` (tuning knobs) is not.
#: ``recovering``/``quarantined`` joined with the I6 rejoin protocol: a
#: recovery coroutine that captures the quarantine flag (or a sync-reply
#: tally) across a suspension can mis-admit a replica to read quorums,
#: exactly the stale-capture shape QC003 exists to catch.
_PROTOCOL_TOKENS = frozenset(
    {"epoch", "cfg", "plan", "ring", "recovering", "quarantined"}
)

#: QC003 form (b) only tracks the fenced counters themselves.
_FENCE_TOKENS = frozenset({"epoch", "cfg"})

#: Identifier tokens that mark per-object lease state (QC004).  A grant
#: table, a held lease, or an expiry deadline captured before a
#: suspension is stale after it: writes and epoch changes revoke leases
#: between handler steps.
_LEASE_TOKENS = frozenset({"lease", "leases", "expiry", "grant", "grants"})

# Dataflow lattice values (join = max).
_ABSENT, _GUARDED, _STALE = 0, 1, 2
_FRESH = 1  # alias for the QC003 capture lattice


def _tokens(identifier: str) -> frozenset[str]:
    return frozenset(part for part in identifier.split("_") if part)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` attribute access -> key ``"self.X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _shared_base(node: ast.AST, module_globals: frozenset[str]) -> Optional[str]:
    """Resolve a write target / receiver down to its shared base key.

    ``self.X``, ``self.X[k]``, ``self.X[k][j]`` -> ``self.X``; a bare
    name that is a module global -> that name; anything else -> None.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    key = _self_attr(node)
    if key is not None:
        return key
    if isinstance(node, ast.Name) and node.id in module_globals:
        return node.id
    return None


def _rooted_in_self(node: ast.AST) -> bool:
    """Does this attribute/call/subscript chain bottom out at ``self``?"""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    return isinstance(node, ast.Name) and node.id == "self"


def _is_monotonic_update(stmt: ast.stmt, key: str) -> bool:
    """``self.x = max(self.x, ...)`` / ``min`` — safe regardless of guards."""
    if not isinstance(stmt, ast.Assign):
        return False
    value = stmt.value
    if not (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in {"max", "min"}
    ):
        return False
    return any(_self_attr(arg) == key for arg in value.args)


def _module_globals(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


class _NodeFacts:
    """Per-CFG-node event summary, in intra-statement evaluation order:
    guard reads / loads / sends happen before the suspension, writes and
    assignments take effect after it."""

    def __init__(self) -> None:
        self.suspends = False
        self.guard_reads: set[str] = set()
        self.writes: list[tuple[str, ast.AST, bool]] = []  # (key, node, exempt)
        self.fence_loads: set[str] = set()
        self.fence_guards: set[str] = set()
        self.sends: list[ast.AST] = []
        self.capture_assigns: list[tuple[str, ast.AST]] = []  # (name, node)
        self.lease_capture_assigns: list[tuple[str, ast.AST]] = []
        self.kills: set[str] = set()
        self.uses: list[tuple[str, ast.AST]] = []  # (name, node)


#: Emit callback shared by the three dataflow passes:
#: (source, symbol, in_state, facts, findings, reported) -> None.
_EmitFn = Callable[
    [SourceFile, str, "dict[str, int]", _NodeFacts, "list[Finding]", "set[str]"],
    None,
]


class ConcurrencyLinter:
    """CFG-based interleaving checks for one file (QC001-QC004)."""

    rules = ("QC001", "QC002", "QC003", "QC004")

    def run(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        module_globals = _module_globals(source.tree)
        coroutines = classify_coroutines(source.tree)
        for func, owner in walk_functions(source.tree):
            if func not in coroutines:
                continue
            name = getattr(func, "name", "<lambda>")
            symbol = f"{owner}.{name}" if owner else name
            findings.extend(
                self._check_function(source, func, symbol, module_globals)
            )
        return [
            finding
            for finding in findings
            if not source.suppressed(finding.line, finding.rule)
        ]

    # -- per-function analysis ---------------------------------------------

    def _check_function(
        self,
        source: SourceFile,
        func: ast.AST,
        symbol: str,
        module_globals: frozenset[str],
    ) -> list[Finding]:
        include_yields = not isinstance(func, ast.AsyncFunctionDef)
        cfg = CFG.build(func)
        if not cfg.stmts:
            return []
        facts = [
            self._node_facts(stmt, include_yields, module_globals)
            for stmt in cfg.stmts
        ]
        preds: list[list[int]] = [[] for _ in cfg.stmts]
        for index, succs in enumerate(cfg.succ):
            for succ in succs:
                preds[succ].append(index)

        findings: list[Finding] = []
        findings.extend(
            self._iteration_check(source, symbol, cfg, include_yields)
        )
        findings.extend(
            self._dataflow(
                source,
                symbol,
                cfg,
                facts,
                preds,
                self._guard_transfer,
                self._guard_emit,
            )
        )
        findings.extend(
            self._dataflow(
                source,
                symbol,
                cfg,
                facts,
                preds,
                self._capture_transfer,
                self._capture_emit,
            )
        )
        findings.extend(
            self._dataflow(
                source,
                symbol,
                cfg,
                facts,
                preds,
                self._lease_transfer,
                self._lease_emit,
            )
        )
        self._ever_guarded = frozenset(
            key for node_facts in facts for key in node_facts.fence_guards
        )
        findings.extend(
            self._dataflow(
                source,
                symbol,
                cfg,
                facts,
                preds,
                self._fence_transfer,
                self._fence_emit,
            )
        )
        return findings

    def _node_facts(
        self,
        stmt: ast.stmt,
        include_yields: bool,
        module_globals: frozenset[str],
    ) -> _NodeFacts:
        facts = _NodeFacts()
        exprs = own_expressions(stmt)
        facts.suspends = any(
            contains_suspension(expr, include_yields) for expr in exprs
        )

        # Guard reads: the tests of branch/loop headers, asserts, and
        # conditional expressions evaluated by this node.
        guard_exprs: list[ast.AST] = []
        if isinstance(stmt, (ast.If, ast.While)):
            guard_exprs.append(stmt.test)
        elif isinstance(stmt, ast.Assert):
            guard_exprs.append(stmt.test)
        for expr in exprs:
            for child in walk_own(expr):
                if isinstance(child, ast.IfExp):
                    guard_exprs.append(child.test)
        for guard in guard_exprs:
            for child in walk_own(guard):
                key = _self_attr(child)
                if key is None and (
                    isinstance(child, ast.Name)
                    and isinstance(child.ctx, ast.Load)
                    and child.id in module_globals
                ):
                    key = child.id
                if key is not None:
                    facts.guard_reads.add(key)
                    if isinstance(child, ast.Attribute) and (
                        _tokens(child.attr) & _FENCE_TOKENS
                    ):
                        facts.fence_guards.add(key)

        # Writes: assignment / deletion / in-place mutation of shared state.
        self._collect_writes(stmt, facts, module_globals)

        # Fence loads, sends, captures, and uses from the node's own exprs.
        tracked_parent: dict[int, ast.AST] = {}
        for expr in exprs:
            for child in walk_own(expr):
                for grandchild in ast.iter_child_nodes(child):
                    tracked_parent[id(grandchild)] = child
                if isinstance(child, ast.Attribute) and isinstance(
                    child.ctx, ast.Load
                ):
                    key = _self_attr(child)
                    if key is not None and (
                        _tokens(child.attr) & _FENCE_TOKENS
                    ):
                        facts.fence_loads.add(key)
                if isinstance(child, ast.Call):
                    if dotted_name(child.func) == "self.send":
                        facts.sends.append(child)
                if (
                    isinstance(child, ast.Name)
                    and isinstance(child.ctx, ast.Load)
                    and not self._is_key_position(child, tracked_parent, stmt)
                ):
                    facts.uses.append((child.id, child))

        # Captures and kills.
        self._collect_bindings(stmt, facts)
        return facts

    @staticmethod
    def _is_key_position(
        node: ast.AST, parents: dict[int, ast.AST], stmt: ast.stmt
    ) -> bool:
        """Is this name only used as a subscript key / delete target?

        ``del self.acks[epoch_no]`` and ``self.acks[epoch_no]`` key usage
        is the dominant *intentional* snapshot idiom — keying a table by
        the value a round started with — and is not reported.
        """
        if isinstance(stmt, ast.Delete):
            return True
        parent = parents.get(id(node))
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            return True
        return False

    def _collect_writes(
        self,
        stmt: ast.stmt,
        facts: _NodeFacts,
        module_globals: frozenset[str],
    ) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        flattened: list[ast.expr] = []
        while targets:
            target = targets.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
            else:
                flattened.append(target)
        for target in flattened:
            key = _shared_base(target, module_globals)
            if key is None:
                continue
            exempt = _is_monotonic_update(stmt, key)
            facts.writes.append((key, target, exempt))
        # In-place mutation through a method call.
        for expr in own_expressions(stmt):
            for child in walk_own(expr):
                if not (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in _MUTATORS
                ):
                    continue
                key = _shared_base(child.func.value, module_globals)
                if key is not None:
                    facts.writes.append((key, child, False))

    def _collect_bindings(self, stmt: ast.stmt, facts: _NodeFacts) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                # A name can capture protocol state, lease state, both
                # (e.g. an epoch-stamped grant), or neither.  Each
                # capture pass re-kills names claimed only by the other
                # kind, so the classification here just records both.
                protocol = self._captures_protocol_value(stmt.value)
                lease = self._captures_lease_value(stmt.value)
                if protocol:
                    facts.capture_assigns.append((target.id, target))
                if lease:
                    facts.lease_capture_assigns.append((target.id, target))
                if not (protocol or lease):
                    facts.kills.add(target.id)
                return
        # Every other binding of a plain name kills tracking for it.
        for expr in own_expressions(stmt):
            for child in walk_own(expr):
                if isinstance(child, ast.Name) and isinstance(
                    child.ctx, ast.Store
                ):
                    facts.kills.add(child.id)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            for child in ast.walk(stmt.target):
                if isinstance(child, ast.Name):
                    facts.kills.add(child.id)

    @staticmethod
    def _captures_protocol_value(value: ast.expr) -> bool:
        for child in walk_own(value):
            if (
                isinstance(child, ast.Attribute)
                and (_tokens(child.attr) & _PROTOCOL_TOKENS)
                and _rooted_in_self(child)
            ):
                return True
        return False

    @staticmethod
    def _captures_lease_value(value: ast.expr) -> bool:
        for child in walk_own(value):
            if (
                isinstance(child, ast.Attribute)
                and (_tokens(child.attr) & _LEASE_TOKENS)
                and _rooted_in_self(child)
            ):
                return True
        return False

    # -- QC002 --------------------------------------------------------------

    def _iteration_check(
        self,
        source: SourceFile,
        symbol: str,
        cfg: CFG,
        include_yields: bool,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for stmt in cfg.stmts:
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue
            target = self._shared_iterable(stmt.iter)
            if target is None:
                continue
            body_suspends = any(
                contains_suspension(child, include_yields)
                for body_stmt in stmt.body
                for child in walk_own(body_stmt)
            )
            if not body_suspends:
                continue
            findings.append(
                self._finding(
                    source,
                    stmt.iter,
                    "QC002",
                    f"iterating shared container `{target}` with a "
                    "suspension point in the loop body — another handler "
                    "can mutate it mid-iteration; snapshot with "
                    "`list(...)` before the loop",
                    symbol,
                )
            )
        return findings

    @staticmethod
    def _shared_iterable(node: ast.expr) -> Optional[str]:
        key = _self_attr(node)
        if key is not None:
            return key
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"items", "keys", "values"}
        ):
            inner = _self_attr(node.func.value)
            if inner is not None:
                return f"{inner}.{node.func.attr}()"
        return None

    # -- generic worklist dataflow ------------------------------------------

    def _dataflow(
        self,
        source: SourceFile,
        symbol: str,
        cfg: CFG,
        facts: list[_NodeFacts],
        preds: list[list[int]],
        transfer: "Callable[[dict[str, int], _NodeFacts], dict[str, int]]",
        emit: "_EmitFn",
    ) -> list[Finding]:
        out_states: list[dict[str, int]] = [{} for _ in cfg.stmts]
        changed = True
        while changed:
            changed = False
            for index in range(len(cfg.stmts)):
                in_state = self._join(
                    [out_states[p] for p in preds[index]]
                )
                new_out = transfer(dict(in_state), facts[index])
                if new_out != out_states[index]:
                    out_states[index] = new_out
                    changed = True
        findings: list[Finding] = []
        reported: set[str] = set()
        for index in range(len(cfg.stmts)):
            in_state = self._join([out_states[p] for p in preds[index]])
            emit(
                source,
                symbol,
                in_state,
                facts[index],
                findings,
                reported,
            )
        return findings

    @staticmethod
    def _join(states: list[dict[str, int]]) -> dict[str, int]:
        joined: dict[str, int] = {}
        for state in states:
            for key, value in state.items():
                if value > joined.get(key, _ABSENT):
                    joined[key] = value
        return joined

    # -- QC001: guard-then-act ----------------------------------------------

    @staticmethod
    def _guard_transfer(
        state: dict[str, int], facts: _NodeFacts
    ) -> dict[str, int]:
        for key in facts.guard_reads:
            state[key] = _GUARDED
        if facts.suspends:
            for key, value in list(state.items()):
                if value == _GUARDED:
                    state[key] = _STALE
        for key, _node, _exempt in facts.writes:
            if state.get(key) == _STALE:
                state[key] = _ABSENT  # reported once; stop the cascade
        return {k: v for k, v in state.items() if v != _ABSENT}

    def _guard_emit(
        self,
        source: SourceFile,
        symbol: str,
        in_state: dict[str, int],
        facts: _NodeFacts,
        findings: list[Finding],
        reported: set[str],
    ) -> None:
        state = dict(in_state)
        for key in facts.guard_reads:
            state[key] = _GUARDED
        if facts.suspends:
            for key, value in list(state.items()):
                if value == _GUARDED:
                    state[key] = _STALE
        for key, node, exempt in facts.writes:
            if state.get(key) == _STALE and not exempt:
                if key not in reported:
                    reported.add(key)
                    findings.append(
                        self._finding(
                            source,
                            node,
                            "QC001",
                            f"`{key}` was checked before a suspension "
                            "point but is written here after it — the "
                            "guard may be stale (check-then-act race); "
                            "re-validate after resuming",
                            symbol,
                        )
                    )
                state[key] = _ABSENT

    # -- QC003 form (a): captured protocol value -----------------------------

    @staticmethod
    def _capture_transfer(
        state: dict[str, int], facts: _NodeFacts
    ) -> dict[str, int]:
        if facts.suspends:
            for key, value in list(state.items()):
                if value == _FRESH:
                    state[key] = _STALE
        for name in facts.kills:
            state.pop(name, None)
        # A re-bind to a lease-only value stops protocol tracking.
        for name, _node in facts.lease_capture_assigns:
            state.pop(name, None)
        for name, _node in facts.capture_assigns:
            state[name] = _FRESH
        return {k: v for k, v in state.items() if v != _ABSENT}

    def _capture_emit(
        self,
        source: SourceFile,
        symbol: str,
        in_state: dict[str, int],
        facts: _NodeFacts,
        findings: list[Finding],
        reported: set[str],
    ) -> None:
        for name, node in facts.uses:
            if in_state.get(name) == _STALE and name not in reported:
                reported.add(name)
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QC003",
                        f"`{name}` captured epoch/cfg/plan/ring state "
                        "before a suspension point and is used here "
                        "after it — re-read or revalidate the "
                        "configuration after resuming",
                        symbol,
                    )
                )

    # -- QC004: captured lease value ------------------------------------------

    @staticmethod
    def _lease_transfer(
        state: dict[str, int], facts: _NodeFacts
    ) -> dict[str, int]:
        if facts.suspends:
            for key, value in list(state.items()):
                if value == _FRESH:
                    state[key] = _STALE
        for name in facts.kills:
            state.pop(name, None)
        # A re-bind to a protocol-only value stops lease tracking.
        for name, _node in facts.capture_assigns:
            state.pop(name, None)
        for name, _node in facts.lease_capture_assigns:
            state[name] = _FRESH
        return {k: v for k, v in state.items() if v != _ABSENT}

    def _lease_emit(
        self,
        source: SourceFile,
        symbol: str,
        in_state: dict[str, int],
        facts: _NodeFacts,
        findings: list[Finding],
        reported: set[str],
    ) -> None:
        for name, node in facts.uses:
            if in_state.get(name) == _STALE and name not in reported:
                reported.add(name)
                findings.append(
                    self._finding(
                        source,
                        node,
                        "QC004",
                        f"`{name}` captured lease/grant/expiry state "
                        "before a suspension point and is used here "
                        "after it — a write, epoch change, or expiry "
                        "may have revoked the lease while suspended; "
                        "re-read the lease table after resuming",
                        symbol,
                    )
                )

    # -- QC003 form (b): stale fencing decision ------------------------------

    @staticmethod
    def _fence_transfer(
        state: dict[str, int], facts: _NodeFacts
    ) -> dict[str, int]:
        for key in facts.fence_loads | facts.fence_guards:
            state[key] = _FRESH
        for key, _node, _exempt in facts.writes:
            if key in state:
                state[key] = _FRESH
        if facts.suspends:
            for key, value in list(state.items()):
                if value == _FRESH:
                    state[key] = _STALE
        return dict(state)

    def _fence_emit(
        self,
        source: SourceFile,
        symbol: str,
        in_state: dict[str, int],
        facts: _NodeFacts,
        findings: list[Finding],
        reported: set[str],
    ) -> None:
        if not facts.sends:
            return
        state = dict(in_state)
        for key in facts.fence_loads | facts.fence_guards:
            state[key] = _FRESH
        stale = sorted(
            key
            for key, value in state.items()
            if value == _STALE and key in self._ever_guarded
        )
        for key in stale:
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                self._finding(
                    source,
                    facts.sends[0],
                    "QC003",
                    f"reply sent after a suspension point but the "
                    f"epoch/cfg fence `{key}` was last checked before "
                    "it — a newer epoch may have been adopted while "
                    "suspended; re-validate before replying",
                    symbol,
                )
            )

    # The fence rule only fires in functions that actually *guard* on an
    # epoch/cfg attribute; plain loads (message construction) never arm it.
    _ever_guarded: frozenset[str] = frozenset()

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _finding(
        source: SourceFile,
        node: ast.AST,
        rule: str,
        message: str,
        symbol: str,
    ) -> Finding:
        return Finding(
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            severity=Severity.ERROR,
            symbol=symbol,
        )


__all__ = ["ConcurrencyLinter"]
