"""Accepted-findings baseline.

``qlint-baseline.json`` (repo root) records findings that were reviewed
and accepted — each entry carries a one-line justification and matches
on ``(rule, package-relative path, enclosing symbol)``, not line
numbers, so unrelated edits never invalidate it.  A baselined finding is
dropped from the gating output; an entry that no longer matches anything
is reported as a ``QL001`` *warning* (non-gating) so stale entries get
cleaned up instead of silently accumulating.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence, Tuple

from repro.qlint.astutils import relative_to_repro
from repro.qlint.findings import Finding, Severity

#: Default baseline location: the repository root.
DEFAULT_BASELINE_NAME = "qlint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: what, where, and — mandatory — why."""

    rule: str
    path: str
    symbol: str
    justification: str


def default_baseline_path() -> Path:
    """``<repo root>/qlint-baseline.json`` (repo root = above ``src/``)."""
    return (
        Path(__file__).resolve().parent.parent.parent.parent
        / DEFAULT_BASELINE_NAME
    )


def load_baseline(path: Path) -> Tuple[BaselineEntry, ...]:
    """Parse a baseline file; every entry must carry a justification."""
    data = json.loads(path.read_text(encoding="utf-8"))
    raw_entries = data.get("entries", []) if isinstance(data, dict) else []
    entries: list[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise ValueError(f"baseline entry {index} is not an object")
        justification = str(raw.get("justification", "")).strip()
        if not justification:
            raise ValueError(
                f"baseline entry {index} ({raw.get('rule')}, "
                f"{raw.get('path')}) has no justification — every "
                "accepted finding must say why"
            )
        entries.append(
            BaselineEntry(
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")).replace("\\", "/"),
                symbol=str(raw.get("symbol", "")),
                justification=justification,
            )
        )
    return tuple(entries)


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split findings into (kept, baselined) and report stale entries."""
    kept: list[Finding] = []
    baselined: list[Finding] = []
    matched: set[BaselineEntry] = set()
    by_key = {
        (entry.rule, entry.path, entry.symbol): entry for entry in entries
    }
    for finding in findings:
        relative = relative_to_repro(Path(finding.path))
        entry = by_key.get((finding.rule, relative, finding.symbol))
        if entry is not None:
            matched.add(entry)
            baselined.append(finding)
        else:
            kept.append(finding)
    stale = [entry for entry in entries if entry not in matched]
    return kept, baselined, stale


def stale_entry_findings(
    stale: Sequence[BaselineEntry], baseline_path: Path
) -> list[Finding]:
    """Non-gating QL001 warnings for entries that matched nothing."""
    return [
        Finding(
            path=str(baseline_path),
            line=1,
            column=1,
            rule="QL001",
            message=(
                f"stale baseline entry ({entry.rule}, {entry.path}, "
                f"{entry.symbol or '<no symbol>'}) matches no current "
                "finding — remove it"
            ),
            severity=Severity.WARNING,
            symbol=entry.symbol,
        )
        for entry in stale
    ]


__all__ = [
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "default_baseline_path",
    "load_baseline",
    "stale_entry_findings",
]
