"""Deterministic binary wire format for the Q-OPT protocol messages.

Design goals, in order:

1. **Determinism** — the same value encodes to the same bytes in every
   process, under every ``PYTHONHASHSEED``.  Mappings are serialized
   sorted by encoded key, ``frozenset`` elements sorted by encoded
   element; floats use fixed big-endian IEEE-754 (``inf``/``-inf`` round
   trip, which ``ZERO_STAMP`` needs).
2. **Completeness** — every dataclass in :mod:`repro.sds.messages` and
   every supporting value type it embeds has an explicit entry in
   :data:`WIRE_TYPES`; the codec tests introspect the messages module to
   prove nothing is missing.
3. **Simplicity** — a type-tagged recursive encoding, no schema
   negotiation.  The class table is append-only: codes are positional,
   so reordering or removing entries is a wire-format break (the
   golden-bytes test pins this).

Framing: a frame is a 4-byte big-endian length followed by the encoded
envelope tuple ``(sender, recipient, size, sent_at, trace, payload)``.
The length prefix covers everything after itself.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.types import NodeId, QuorumConfig, Version, VersionStamp
from repro.sds import messages
from repro.sds.quorum import QuorumPlan
from repro.sds.vector_clocks import VectorStamp
from repro.sim.network import Envelope


class CodecError(SimulationError):
    """Raised on malformed or truncated wire data."""


# -- value tags --------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_FROZENSET = 0x08
_T_MAP = 0x09
_T_DATACLASS = 0x0A

#: Registered wire classes.  APPEND-ONLY: the class code is the position
#: in this tuple, so inserting or reordering entries breaks the format.
WIRE_TYPES: Tuple[type, ...] = (
    # Supporting value types.
    NodeId,
    QuorumConfig,
    VersionStamp,
    VectorStamp,
    Version,
    QuorumPlan,
    # Client <-> proxy.
    messages.ClientRead,
    messages.ClientWrite,
    messages.ClientReadReply,
    messages.ClientWriteReply,
    messages.ClientOperationFailed,
    # Proxy <-> storage.
    messages.ReplicaRead,
    messages.ReplicaReadReply,
    messages.ReplicaWrite,
    messages.ReplicaWriteReply,
    messages.ReplicaSync,
    messages.EpochNack,
    # Reconfiguration manager <-> proxy.
    messages.NewQuorum,
    messages.AckNewQuorum,
    messages.Confirm,
    messages.AckConfirm,
    messages.PauseProxy,
    messages.AckPause,
    messages.ResumeProxy,
    # Reconfiguration manager <-> storage.
    messages.NewEpoch,
    messages.AckNewEpoch,
    # Autonomic manager <-> proxy.
    messages.NewRound,
    messages.ObjectStats,
    messages.AggregateStats,
    messages.RoundStats,
    messages.NewTopK,
    # Autonomic manager <-> oracle.
    messages.NewStats,
    messages.NewQuorums,
    messages.TailStats,
    messages.TailQuorum,
    # Autonomic manager <-> reconfiguration manager.
    messages.FineRec,
    messages.CoarseRec,
    messages.AckRec,
)

_CODE_BY_TYPE = {cls: code for code, cls in enumerate(WIRE_TYPES)}
_FIELDS_BY_TYPE = {
    cls: tuple(f.name for f in dataclasses.fields(cls)) for cls in WIRE_TYPES
}


# -- varints -----------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    """Map signed to unsigned, small magnitudes to small codes.

    Arbitrary-precision (Python ints are unbounded): 0,-1,1,-2,2 ... map
    to 0,1,2,3,4 ...
    """
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- encoding ----------------------------------------------------------------


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, float):
        if value != value:  # NaN: breaks round-trip equality and ordering
            raise CodecError("NaN is not encodable")
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, (tuple, list)):
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, (frozenset, set)):
        out.append(_T_FROZENSET)
        _write_uvarint(out, len(value))
        for encoded_item in sorted(encode_value(item) for item in value):
            out.extend(encoded_item)
    elif isinstance(value, dict):
        out.append(_T_MAP)
        _write_uvarint(out, len(value))
        pairs = sorted(
            (encode_value(key), encode_value(item))
            for key, item in value.items()
        )
        for encoded_key, encoded_item in pairs:
            out.extend(encoded_key)
            out.extend(encoded_item)
    else:
        code = _CODE_BY_TYPE.get(type(value))
        if code is None:
            raise CodecError(
                f"type {type(value).__name__} is not a registered wire type"
            )
        out.append(_T_DATACLASS)
        _write_uvarint(out, code)
        for name in _FIELDS_BY_TYPE[type(value)]:
            _encode_value(out, getattr(value, name))


def encode_value(value: Any) -> bytes:
    """Encode one value (message payload or embedded field)."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        raw, offset = _read_uvarint(data, offset)
        return _unzigzag(raw), offset
    if tag == _T_FLOAT:
        if offset + 8 > len(data):
            raise CodecError("truncated float")
        return struct.unpack_from(">d", data, offset)[0], offset + 8
    if tag == _T_STR:
        length, offset = _read_uvarint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated string")
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        length, offset = _read_uvarint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[offset : offset + length]), offset + length
    if tag == _T_TUPLE:
        count, offset = _read_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _T_FROZENSET:
        count, offset = _read_uvarint(data, offset)
        elements = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            elements.append(item)
        return frozenset(elements), offset
    if tag == _T_MAP:
        count, offset = _read_uvarint(data, offset)
        mapping = {}
        for _ in range(count):
            key, offset = _decode_value(data, offset)
            item, offset = _decode_value(data, offset)
            mapping[key] = item
        return mapping, offset
    if tag == _T_DATACLASS:
        code, offset = _read_uvarint(data, offset)
        if code >= len(WIRE_TYPES):
            raise CodecError(f"unknown wire-type code {code}")
        cls = WIRE_TYPES[code]
        values = []
        for _ in _FIELDS_BY_TYPE[cls]:
            item, offset = _decode_value(data, offset)
            values.append(item)
        return cls(*values), offset
    raise CodecError(f"unknown value tag {tag:#04x}")


def decode_value(data: bytes) -> Any:
    """Decode one value; the entire buffer must be consumed."""
    value, offset = _decode_value(data, 0)
    if offset != len(data):
        raise CodecError(
            f"{len(data) - offset} trailing bytes after decoded value"
        )
    return value


# -- envelope framing --------------------------------------------------------

#: Bytes of the frame length prefix.
LENGTH_PREFIX = 4

#: Upper bound on one frame body; a peer announcing more is protocol
#: garbage (or an attack) and the connection is dropped.
MAX_FRAME = 64 * 1024 * 1024


def encode_frame(envelope: Envelope) -> bytes:
    """Serialize an envelope as a length-prefixed frame."""
    body = encode_value(
        (
            envelope.sender,
            envelope.recipient,
            envelope.size,
            envelope.sent_at,
            envelope.trace,
            envelope.payload,
        )
    )
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return len(body).to_bytes(LENGTH_PREFIX, "big") + body


def decode_frame_body(body: bytes) -> Envelope:
    """Deserialize a frame body (the bytes after the length prefix)."""
    decoded = decode_value(body)
    if not isinstance(decoded, tuple) or len(decoded) != 6:
        raise CodecError("malformed envelope frame")
    sender, recipient, size, sent_at, trace, payload = decoded
    if not isinstance(sender, NodeId) or not isinstance(recipient, NodeId):
        raise CodecError("envelope endpoints must be NodeIds")
    return Envelope(
        sender=sender,
        recipient=recipient,
        payload=payload,
        size=size,
        sent_at=sent_at,
        trace=trace,
    )


__all__ = [
    "CodecError",
    "WIRE_TYPES",
    "LENGTH_PREFIX",
    "MAX_FRAME",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame_body",
]
