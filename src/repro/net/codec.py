"""Deterministic binary wire format for the Q-OPT protocol messages.

Design goals, in order:

1. **Determinism** — the same value encodes to the same bytes in every
   process, under every ``PYTHONHASHSEED``.  Mappings are serialized
   sorted by encoded key, ``frozenset`` elements sorted by encoded
   element; floats use fixed big-endian IEEE-754 (``inf``/``-inf`` round
   trip, which ``ZERO_STAMP`` needs).
2. **Completeness** — every dataclass in :mod:`repro.sds.messages` and
   every supporting value type it embeds has an explicit entry in
   :data:`WIRE_TYPES`; the codec tests introspect the messages module to
   prove nothing is missing.
3. **Simplicity** — a type-tagged recursive encoding, no schema
   negotiation.  The class table is append-only: codes are positional,
   so reordering or removing entries is a wire-format break (the
   golden-bytes test pins this).

Framing: a frame is a 4-byte big-endian length followed by the encoded
envelope tuple ``(sender, recipient, size, sent_at, trace, payload)``.
The length prefix covers everything after itself.

Hot-path implementation notes (the bytes are pinned; only the code
producing them changed):

* **Precompiled codecs** — instead of walking an ``isinstance`` chain
  per value and reflecting over dataclass fields per message, the
  registry builds one encoder and one decoder closure per registered
  class at import time (tag byte + class-code varint prebuilt, field
  tuple captured).  Scalar encoders dispatch on ``type(value)`` through
  a dict, decoders on the tag byte through a list.
* **Zero-copy decode** — :func:`decode_frame_body` accepts any buffer
  (``bytes``, ``bytearray`` or ``memoryview``) and parses it in place;
  the transport hands it sub-``memoryview`` slices of its receive buffer,
  so a TCP segment carrying many coalesced frames is decoded without
  per-frame body copies.  Decoded leaves always *materialize* (``bytes``
  values are copied out), so no decoded message retains a view of the
  receive buffer.
* **Buffer pool** — :func:`encode_frame` reuses a small pool of
  ``bytearray`` buffers and writes the length prefix into a reserved
  slot, so steady-state encoding allocates only the final immutable
  ``bytes``.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Dict, List, Tuple, Union

from repro.common.errors import SimulationError
from repro.common.types import NodeId, QuorumConfig, Version, VersionStamp
from repro.sds import messages
from repro.sds.quorum import QuorumPlan
from repro.sds.vector_clocks import VectorStamp
from repro.sim.network import Envelope


class CodecError(SimulationError):
    """Raised on malformed or truncated wire data."""


#: Any read-only byte buffer the decoder accepts.
Buffer = Union[bytes, bytearray, memoryview]

# -- value tags --------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_FROZENSET = 0x08
_T_MAP = 0x09
_T_DATACLASS = 0x0A

#: Registered wire classes.  APPEND-ONLY: the class code is the position
#: in this tuple, so inserting or reordering entries breaks the format.
WIRE_TYPES: Tuple[type, ...] = (
    # Supporting value types.
    NodeId,
    QuorumConfig,
    VersionStamp,
    VectorStamp,
    Version,
    QuorumPlan,
    # Client <-> proxy.
    messages.ClientRead,
    messages.ClientWrite,
    messages.ClientReadReply,
    messages.ClientWriteReply,
    messages.ClientOperationFailed,
    # Proxy <-> storage.
    messages.ReplicaRead,
    messages.ReplicaReadReply,
    messages.ReplicaWrite,
    messages.ReplicaWriteReply,
    messages.ReplicaSync,
    messages.EpochNack,
    # Reconfiguration manager <-> proxy.
    messages.NewQuorum,
    messages.AckNewQuorum,
    messages.Confirm,
    messages.AckConfirm,
    messages.PauseProxy,
    messages.AckPause,
    messages.ResumeProxy,
    # Reconfiguration manager <-> storage.
    messages.NewEpoch,
    messages.AckNewEpoch,
    # Autonomic manager <-> proxy.
    messages.NewRound,
    messages.ObjectStats,
    messages.AggregateStats,
    messages.RoundStats,
    messages.NewTopK,
    # Autonomic manager <-> oracle.
    messages.NewStats,
    messages.NewQuorums,
    messages.TailStats,
    messages.TailQuorum,
    # Autonomic manager <-> reconfiguration manager.
    messages.FineRec,
    messages.CoarseRec,
    messages.AckRec,
    # Storage <-> storage recovery (appended: codes are positional).
    messages.SyncRequest,
    messages.SyncReply,
    # Per-object read leases (appended: codes are positional).
    messages.LeaseRequest,
    messages.LeaseGrant,
    messages.LeaseRead,
    messages.LeaseReadReply,
    messages.LeaseNack,
)

_CODE_BY_TYPE = {cls: code for code, cls in enumerate(WIRE_TYPES)}
_FIELDS_BY_TYPE = {
    cls: tuple(f.name for f in dataclasses.fields(cls)) for cls in WIRE_TYPES
}

_pack_double = struct.Struct(">d").pack
_unpack_double_from = struct.Struct(">d").unpack_from


# -- varints -----------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _uvarint_bytes(value: int) -> bytes:
    out = bytearray()
    _write_uvarint(out, value)
    return bytes(out)


def _read_uvarint(data: Buffer, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    end = len(data)
    while True:
        if offset >= end:
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _zigzag(value: int) -> int:
    """Map signed to unsigned, small magnitudes to small codes.

    Arbitrary-precision (Python ints are unbounded): 0,-1,1,-2,2 ... map
    to 0,1,2,3,4 ...
    """
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# -- encoding ----------------------------------------------------------------

Encoder = Callable[[bytearray, Any], None]

#: Exact-type encoder dispatch, filled in below (scalars, containers and
#: one precompiled closure per registered dataclass).
_ENCODER_BY_TYPE: Dict[type, Encoder] = {}


def _enc_none(out: bytearray, value: Any) -> None:
    out.append(_T_NONE)


def _enc_bool(out: bytearray, value: Any) -> None:
    out.append(_T_TRUE if value else _T_FALSE)


def _enc_int(out: bytearray, value: Any) -> None:
    out.append(_T_INT)
    value = (value << 1) if value >= 0 else ((-value << 1) - 1)
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _enc_float(out: bytearray, value: Any) -> None:
    if value != value:  # NaN: breaks round-trip equality and ordering
        raise CodecError("NaN is not encodable")
    out.append(_T_FLOAT)
    out += _pack_double(value)


def _enc_str(out: bytearray, value: Any) -> None:
    encoded = value.encode("utf-8")
    out.append(_T_STR)
    length = len(encoded)
    while length > 0x7F:
        out.append((length & 0x7F) | 0x80)
        length >>= 7
    out.append(length)
    out += encoded


def _enc_bytes(out: bytearray, value: Any) -> None:
    out.append(_T_BYTES)
    length = len(value)
    while length > 0x7F:
        out.append((length & 0x7F) | 0x80)
        length >>= 7
    out.append(length)
    out += value


def _enc_tuple(out: bytearray, value: Any) -> None:
    out.append(_T_TUPLE)
    _write_uvarint(out, len(value))
    dispatch = _ENCODER_BY_TYPE
    for item in value:
        encoder = dispatch.get(item.__class__)
        if encoder is None:
            _encode_fallback(out, item)
        else:
            encoder(out, item)


def _enc_frozenset(out: bytearray, value: Any) -> None:
    out.append(_T_FROZENSET)
    _write_uvarint(out, len(value))
    for encoded_item in sorted(encode_value(item) for item in value):
        out += encoded_item


def _enc_map(out: bytearray, value: Any) -> None:
    out.append(_T_MAP)
    _write_uvarint(out, len(value))
    pairs = sorted(
        (encode_value(key), encode_value(item)) for key, item in value.items()
    )
    for encoded_key, encoded_item in pairs:
        out += encoded_key
        out += encoded_item


def _make_dataclass_encoder(code: int, fields: Tuple[str, ...]) -> Encoder:
    """One closure per registered class: prebuilt header, fixed fields."""
    header = bytes([_T_DATACLASS]) + _uvarint_bytes(code)

    def encode_dataclass(out: bytearray, value: Any) -> None:
        out += header
        dispatch = _ENCODER_BY_TYPE
        for name in fields:
            item = getattr(value, name)
            encoder = dispatch.get(item.__class__)
            if encoder is None:
                _encode_fallback(out, item)
            else:
                encoder(out, item)

    return encode_dataclass


_ENCODER_BY_TYPE.update(
    {
        type(None): _enc_none,
        bool: _enc_bool,
        int: _enc_int,
        float: _enc_float,
        str: _enc_str,
        bytes: _enc_bytes,
        bytearray: _enc_bytes,
        tuple: _enc_tuple,
        list: _enc_tuple,
        frozenset: _enc_frozenset,
        set: _enc_frozenset,
        dict: _enc_map,
    }
)
for _code, _cls in enumerate(WIRE_TYPES):
    _ENCODER_BY_TYPE[_cls] = _make_dataclass_encoder(
        _code, _FIELDS_BY_TYPE[_cls]
    )


def _encode_fallback(out: bytearray, value: Any) -> None:
    """Subclass-tolerant slow path (the pre-compilation semantics).

    The dispatch table is keyed by *exact* type; values of subclasses
    (an ``OrderedDict``, an ``enum.IntEnum``, a ``Mapping`` view copied
    into a dict subclass) land here and are encoded by the same
    ``isinstance`` ladder the codec always had, preserving behaviour.
    """
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        _enc_int(out, value)
    elif isinstance(value, float):
        _enc_float(out, value)
    elif isinstance(value, str):
        _enc_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        _enc_bytes(out, value)
    elif isinstance(value, (tuple, list)):
        _enc_tuple(out, value)
    elif isinstance(value, (frozenset, set)):
        _enc_frozenset(out, value)
    elif isinstance(value, dict):
        _enc_map(out, value)
    else:
        encoder = None
        for cls in type(value).__mro__:
            encoder = _ENCODER_BY_TYPE.get(cls)
            if encoder is not None:
                break
        if encoder is None:
            raise CodecError(
                f"type {type(value).__name__} is not a registered wire type"
            )
        encoder(out, value)


def _encode_value(out: bytearray, value: Any) -> None:
    encoder = _ENCODER_BY_TYPE.get(value.__class__)
    if encoder is None:
        _encode_fallback(out, value)
    else:
        encoder(out, value)


def encode_value(value: Any) -> bytes:
    """Encode one value (message payload or embedded field)."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


# -- decoding ----------------------------------------------------------------

#: (class, field count) per wire code; arity captured once so decoding a
#: message does no field reflection and no per-message dict lookups.
_DATACLASS_SPECS: Tuple[Tuple[type, int], ...] = tuple(
    (cls, len(_FIELDS_BY_TYPE[cls])) for cls in WIRE_TYPES
)


def _decode_value(data: Buffer, offset: int) -> Tuple[Any, int]:
    """One monolithic decoder, branches ordered by tag frequency.

    CPython function-call overhead dominates a per-tag dispatch table at
    this grain, so the hot tags are decoded inline (including their
    varints); only the recursion into container/dataclass elements calls
    back into this function.
    """
    try:
        tag = data[offset]
    except IndexError:
        raise CodecError("truncated value") from None
    offset += 1
    if tag == _T_INT:
        result = 0
        shift = 0
        while True:
            try:
                byte = data[offset]
            except IndexError:
                raise CodecError("truncated varint") from None
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")
        return (
            (result >> 1) if not result & 1 else -((result + 1) >> 1)
        ), offset
    if tag == _T_STR:
        length = 0
        shift = 0
        while True:
            try:
                byte = data[offset]
            except IndexError:
                raise CodecError("truncated varint") from None
            offset += 1
            length |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")
        end = offset + length
        chunk = data[offset:end]
        if len(chunk) != length:
            raise CodecError("truncated string")
        return str(chunk, "utf-8"), end
    if tag == _T_DATACLASS:
        code, offset = _read_uvarint(data, offset)
        try:
            cls, arity = _DATACLASS_SPECS[code]
        except IndexError:
            raise CodecError(f"unknown wire-type code {code}") from None
        values = []
        append = values.append
        for _ in range(arity):
            item, offset = _decode_value(data, offset)
            append(item)
        return cls(*values), offset
    if tag == _T_FLOAT:
        try:
            value = _unpack_double_from(data, offset)[0]
        except struct.error:
            raise CodecError("truncated float") from None
        return value, offset + 8
    if tag == _T_BYTES:
        length, offset = _read_uvarint(data, offset)
        end = offset + length
        # Always materialize: decoded values must never retain a view of
        # a transport receive buffer (which is mutated after the parse).
        chunk = bytes(data[offset:end])
        if len(chunk) != length:
            raise CodecError("truncated bytes")
        return chunk, end
    if tag == _T_TUPLE:
        count, offset = _read_uvarint(data, offset)
        items = []
        append = items.append
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            append(item)
        return tuple(items), offset
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_FROZENSET:
        count, offset = _read_uvarint(data, offset)
        elements = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            elements.append(item)
        return frozenset(elements), offset
    if tag == _T_MAP:
        count, offset = _read_uvarint(data, offset)
        mapping = {}
        for _ in range(count):
            key, offset = _decode_value(data, offset)
            item, offset = _decode_value(data, offset)
            mapping[key] = item
        return mapping, offset
    raise CodecError(f"unknown value tag {tag:#04x}")


def decode_value(data: Buffer) -> Any:
    """Decode one value; the entire buffer must be consumed."""
    value, offset = _decode_value(data, 0)
    if offset != len(data):
        raise CodecError(
            f"{len(data) - offset} trailing bytes after decoded value"
        )
    return value


# -- envelope framing --------------------------------------------------------

#: Bytes of the frame length prefix.
LENGTH_PREFIX = 4

#: Upper bound on one frame body; a peer announcing more is protocol
#: garbage (or an attack) and the connection is dropped.
MAX_FRAME = 64 * 1024 * 1024


class _BufferPool:
    """A small free list of encode buffers (no locking: asyncio is
    single-threaded, and the worst case of a race is a missed reuse)."""

    __slots__ = ("_buffers", "_capacity", "_max_bytes")

    def __init__(self, capacity: int = 8, max_bytes: int = 1 << 20) -> None:
        self._buffers: List[bytearray] = []
        self._capacity = capacity
        #: Buffers that ballooned (one huge frame) are dropped instead of
        #: pinning their memory in the pool forever.
        self._max_bytes = max_bytes

    def acquire(self) -> bytearray:
        if self._buffers:
            return self._buffers.pop()
        return bytearray()

    def release(self, buffer: bytearray) -> None:
        if len(self._buffers) >= self._capacity:
            return
        if len(buffer) > self._max_bytes:
            return
        del buffer[:]
        self._buffers.append(buffer)


_ENCODE_POOL = _BufferPool()

_PREFIX_PLACEHOLDER = b"\x00" * LENGTH_PREFIX


def encode_frame(envelope: Envelope) -> bytes:
    """Serialize an envelope as a length-prefixed frame."""
    out = _ENCODE_POOL.acquire()
    out += _PREFIX_PLACEHOLDER
    _encode_value(
        out,
        (
            envelope.sender,
            envelope.recipient,
            envelope.size,
            envelope.sent_at,
            envelope.trace,
            envelope.payload,
        ),
    )
    body_length = len(out) - LENGTH_PREFIX
    if body_length > MAX_FRAME:
        _ENCODE_POOL.release(out)
        raise CodecError(f"frame of {body_length} bytes exceeds MAX_FRAME")
    out[:LENGTH_PREFIX] = body_length.to_bytes(LENGTH_PREFIX, "big")
    frame = bytes(out)
    _ENCODE_POOL.release(out)
    return frame


def decode_frame_body(body: Buffer) -> Envelope:
    """Deserialize a frame body (the bytes after the length prefix).

    ``body`` may be any buffer — in particular a ``memoryview`` into a
    transport receive buffer; every decoded leaf is materialized, so the
    returned envelope never aliases the caller's buffer.
    """
    decoded = decode_value(body)
    if not isinstance(decoded, tuple) or len(decoded) != 6:
        raise CodecError("malformed envelope frame")
    sender, recipient, size, sent_at, trace, payload = decoded
    if not isinstance(sender, NodeId) or not isinstance(recipient, NodeId):
        raise CodecError("envelope endpoints must be NodeIds")
    return Envelope(
        sender=sender,
        recipient=recipient,
        payload=payload,
        size=size,
        sent_at=sent_at,
        trace=trace,
    )


__all__ = [
    "CodecError",
    "WIRE_TYPES",
    "LENGTH_PREFIX",
    "MAX_FRAME",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame_body",
]
