"""Closed-loop load generator and live benchmark for a running cluster.

Runs the *simulator's* :class:`~repro.sds.client.ClientNode` fleet — the
same closed-loop, deadline-and-retry client code — on a
:class:`RealtimeKernel` over TCP against a live cluster, in one or more
timed phases.  Between phases it can drive a live two-phase quorum
reconfiguration through the manager's HTTP endpoint, YCSB-style:

* per-phase ops/sec and latency percentiles (p50/p95/p99) per op type;
* a client-observed :class:`~repro.sds.client.OperationRecord` history
  spanning *all* phases, fed to the repo's linearizability checker —
  the live analogue of the simulator's consistency gates;
* a ``BENCH_net.json`` report in the same spirit as ``BENCH_obs.json``.

Write values are tagged with a per-phase prefix on top of the workload's
globally-unique tokens, so the cross-phase history keeps the unique-value
property the checker relies on.
"""

from __future__ import annotations

import asyncio
import json
import random
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.common.rng import substream
from repro.common.types import NodeId, OpType
from repro.metrics.collector import OperationLog, percentile
from repro.net.httpd import http_get, wait_healthy
from repro.net.kernel import RealtimeKernel
from repro.net.spec import ClusterSpec
from repro.net.tcp import TcpTransport
from repro.obs.metrics import Histogram, HistogramSnapshot
from repro.sds.client import ClientNode, OperationRecord, OperationSource
from repro.sds.consistency import HistoryChecker, SearchBudgetExceeded
from repro.shard.router import ShardRouter
from repro.workloads import ycsb
from repro.workloads.base import Operation, Workload


@dataclass(frozen=True)
class _PhaseTaggedSource:
    """Wrap a workload so write values are unique across phases."""

    inner: OperationSource
    tag: bytes

    def next_operation(self, rng: random.Random) -> Operation:
        operation = self.inner.next_operation(rng)
        if operation.op_type is OpType.WRITE:
            return replace(operation, value=self.tag + operation.value)
        return operation


@dataclass
class PhaseResult:
    """What one timed load phase measured."""

    name: str
    write_quorum: int
    duration: float
    operations: int
    ops_per_sec: float
    failed: int
    retries: int
    latencies: Dict[str, Dict[str, float]]
    #: Completed operations per shard (empty for unsharded runs).
    shard_operations: Dict[str, int] = field(default_factory=dict)
    #: Per-op-type mergeable latency histograms for this phase.  These —
    #: not the per-phase percentiles — are what cross-phase/cross-shard
    #: aggregation consumes: percentiles do not average.
    snapshots: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def as_dict(self) -> dict:
        payload = {
            "name": self.name,
            "write_quorum": self.write_quorum,
            "duration_s": round(self.duration, 3),
            "operations": self.operations,
            "ops_per_sec": round(self.ops_per_sec, 1),
            "failed": self.failed,
            "retries": self.retries,
            "latency_s": self.latencies,
        }
        if self.shard_operations:
            payload["shard_operations"] = dict(
                sorted(self.shard_operations.items())
            )
            payload["shard_ops_per_sec"] = {
                shard: round(count / self.duration, 1)
                if self.duration > 0
                else 0.0
                for shard, count in sorted(self.shard_operations.items())
            }
        return payload


@dataclass(frozen=True)
class ShardOutcome:
    """Per-shard consistency verdict over the cross-phase history."""

    shard: str
    records: int
    violations: int
    linearizable: Optional[bool]

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "records": self.records,
            "violations": self.violations,
            "linearizable": self.linearizable,
        }


def merged_latency_summary(
    snapshots: List[HistogramSnapshot],
) -> Dict[str, object]:
    """Aggregate latency summary from mergeable histogram snapshots.

    This is THE way to combine phases or shards: bucket counts add, then
    percentiles come from the combined distribution.  Averaging per-phase
    percentiles is wrong whenever the phases differ (the average of two
    p99s is not the p99 of the union), which is exactly the regime a
    reconfiguration benchmark lives in.
    """
    live = [s for s in snapshots if s.count]
    if not live:
        return {"count": 0}
    merged = live[0]
    for snapshot in live[1:]:
        merged = merged.merged(snapshot)
    summary = merged.as_dict()
    return {
        key: round(value, 6) if isinstance(value, float) else value
        for key, value in summary.items()
    }


@dataclass
class LoadgenResult:
    """Full outcome of a loadgen/bench run."""

    phases: List[PhaseResult]
    reconfig_seconds: Optional[float]
    history_records: int
    consistency_violations: int
    linearizable: Optional[bool]
    records: List[OperationRecord] = field(default_factory=list)
    #: Per-shard verdicts (empty for unsharded runs, where the top-level
    #: fields already describe the single history).
    shard_outcomes: List[ShardOutcome] = field(default_factory=list)

    @property
    def total_failed(self) -> int:
        return sum(phase.failed for phase in self.phases)

    def problems(self) -> List[str]:
        """Everything that must fail the run, as human-readable strings.

        This is the single source of truth for the CLI exit code and the
        ``ok`` field of the JSON report, so a failed run can never look
        green to CI.  ``linearizable=None`` (search budget exceeded) is a
        problem: "not refuted" is not "verified", and a gate that passes
        on it would silently stop checking as histories grow.
        """
        problems: List[str] = []
        if self.total_failed:
            problems.append(
                f"{self.total_failed} client operations failed"
            )
        if self.consistency_violations:
            problems.append(
                f"{self.consistency_violations} consistency violations"
            )
        if self.linearizable is None:
            problems.append(
                "linearizability unverified: search budget exceeded"
            )
        elif not self.linearizable:
            problems.append("history is not linearizable")
        for phase in self.phases:
            if phase.operations == 0:
                problems.append(
                    f"phase {phase.name} completed zero operations"
                )
        for outcome in self.shard_outcomes:
            if outcome.violations:
                problems.append(
                    f"shard {outcome.shard}: {outcome.violations} "
                    "consistency violations"
                )
            if outcome.linearizable is None:
                problems.append(
                    f"shard {outcome.shard}: linearizability unverified"
                )
            elif not outcome.linearizable:
                problems.append(
                    f"shard {outcome.shard}: history is not linearizable"
                )
        return problems

    def aggregate_latencies(self) -> Dict[str, Dict[str, object]]:
        """Cross-phase latency summary via histogram merge (never by
        averaging per-phase percentiles)."""
        merged: Dict[str, Dict[str, object]] = {}
        for key in ("read", "write", "all"):
            if key == "all":
                snapshots = [
                    phase.snapshots[name]
                    for phase in self.phases
                    for name in ("read", "write")
                    if name in phase.snapshots
                ]
            else:
                snapshots = [
                    phase.snapshots[key]
                    for phase in self.phases
                    if key in phase.snapshots
                ]
            merged[key] = merged_latency_summary(snapshots)
        return merged

    def as_dict(self) -> dict:
        problems = self.problems()
        payload = {
            "phases": [phase.as_dict() for phase in self.phases],
            "reconfig_seconds": (
                None
                if self.reconfig_seconds is None
                else round(self.reconfig_seconds, 3)
            ),
            "history_records": self.history_records,
            "consistency_violations": self.consistency_violations,
            "linearizable": self.linearizable,
            "aggregate_latency_s": self.aggregate_latencies(),
            "ok": not problems,
            "problems": problems,
        }
        if self.shard_outcomes:
            payload["shards"] = [
                outcome.as_dict() for outcome in self.shard_outcomes
            ]
        return payload


def _build_workload(workload: str, object_size: int, objects: int) -> Workload:
    builders = {
        "a": ycsb.workload_a,
        "b": ycsb.workload_b,
        "c": ycsb.workload_c_paper,
    }
    if workload not in builders:
        raise ValueError(f"unknown workload {workload!r} (use a, b or c)")
    spec = builders[workload](
        object_size=object_size, num_objects=objects
    )
    return ycsb.build(spec, seed=0)


def _summarise(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    if not ordered:
        return {"count": 0}
    return {
        "count": len(ordered),
        "mean": round(sum(ordered) / len(ordered), 6),
        "p50": round(percentile(ordered, 0.50), 6),
        "p95": round(percentile(ordered, 0.95), 6),
        "p99": round(percentile(ordered, 0.99), 6),
        "max": round(ordered[-1], 6),
    }


class LoadGenerator:
    """Drives phases of closed-loop clients against a live cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        clients: int = 8,
        workload: str = "a",
        object_size: int = 4096,
        objects: int = 64,
        seed: int = 1,
        pipeline_depth: int = 1,
        injection_rate: float = 0.0,
    ) -> None:
        self.spec = spec
        self.clients = clients
        self.workload_name = workload
        self._workload = _build_workload(workload, object_size, objects)
        self.seed = seed
        #: In-flight logical operations per client (pipelined slots).
        self.pipeline_depth = pipeline_depth
        #: Per-client open-loop injection rate, ops/sec (0 = closed loop).
        self.injection_rate = injection_rate
        self.kernel: Optional[RealtimeKernel] = None
        self.transport: Optional[TcpTransport] = None
        self.records: List[OperationRecord] = []
        self._next_client_index = 0
        #: Per-phase latency samples, collected via the per-phase logs.
        self._phases: List[PhaseResult] = []
        #: Key→shard map; single implicit shard for pre-shard specs.
        self.shard_map = spec.shard_map()
        #: Shard-aware router, only for sharded fleets: every client
        #: routes each operation key→shard→proxy.  Unsharded runs keep
        #: the historical static client→proxy binding.
        self.router: Optional[ShardRouter] = None
        if spec.is_sharded():
            self.router = ShardRouter(
                self.shard_map,
                {
                    view.name: view.proxy_ids()
                    for view in spec.shard_views()
                },
            )

    @property
    def workload(self) -> Workload:
        """The underlying workload (custom sweeps reuse its object set)."""
        return self._workload

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self.kernel = RealtimeKernel()
        self.transport = TcpTransport(
            self.kernel,
            self.spec.directory(),
            listen_port=None,  # clients only dial out; replies ride back
            rng=substream(self.seed, "loadgen", "transport"),
        )
        await self.transport.start()

    async def stop(self) -> None:
        if self.transport is not None:
            await self.transport.stop()

    async def wait_cluster_healthy(self, deadline: float = 20.0) -> None:
        for address in self.spec.all_addresses():
            await wait_healthy(
                address.host, address.http_port, deadline=deadline
            )

    # -- phases --------------------------------------------------------------

    async def run_phase(
        self,
        name: str,
        duration: float,
        write_quorum: int,
        settle: float = 0.2,
        source: Optional[OperationSource] = None,
    ) -> PhaseResult:
        """Run one timed phase with a fresh client fleet.

        ``source`` overrides the generator's workload for this phase
        (the chaos harness uses it for a read-only verification sweep);
        records still join the same cross-phase history.
        """
        assert self.kernel is not None and self.transport is not None
        kernel = self.kernel
        log = OperationLog()
        phase_records: List[OperationRecord] = []

        def record(op_record: OperationRecord) -> None:
            phase_records.append(op_record)

        source = _PhaseTaggedSource(
            inner=source if source is not None else self._workload,
            tag=f"{name}|".encode("utf-8"),
        )
        proxies = self.spec.proxy_ids()
        fleet: List[ClientNode] = []
        for slot in range(self.clients):
            index = self._next_client_index
            self._next_client_index += 1
            client = ClientNode(
                kernel,
                self.transport,
                NodeId.client(index),
                proxy_id=proxies[slot % len(proxies)],
                workload=source,
                rng=substream(self.seed, "client", index),
                log=log,
                recorder=record,
                policy=self.spec.client,
                pipeline_depth=self.pipeline_depth,
                injection_rate=self.injection_rate,
                router=self.router,
            )
            fleet.append(client)

        start = kernel.tick()
        for client in fleet:
            client.start()
        await asyncio.sleep(duration)
        # Graceful drain: stop issuing and let in-flight operations
        # finish.  A fail-stop here would leave up to depth x clients
        # forever-concurrent (inf-completion) write records per phase,
        # which blows up the linearizability search on pipelined runs.
        for client in fleet:
            client.stop_issuing()
        drain_deadline = kernel.tick() + 3.0
        while (
            any(client.inflight_operations for client in fleet)
            and kernel.tick() < drain_deadline
        ):
            await asyncio.sleep(0.02)
        # Fail-stop stragglers (ops still retrying at the deadline keep
        # their inf-completion records, exactly like a client crash in
        # the simulator).
        for client in fleet:
            client.crash()
        elapsed = kernel.tick() - start
        # Give late replies a moment to drain out of the sockets so they
        # are dropped against crashed mailboxes, not the next phase.
        await asyncio.sleep(settle)

        self.records.extend(phase_records)
        completed = [
            r for r in phase_records if r.completed_at != float("inf")
        ]
        reads = [
            r.completed_at - r.invoked_at
            for r in completed
            if r.op_type is OpType.READ
        ]
        writes = [
            r.completed_at - r.invoked_at
            for r in completed
            if r.op_type is OpType.WRITE
        ]
        # Mergeable per-phase histograms: the only sound input for the
        # cross-phase (and cross-shard) aggregate summary.
        read_hist, write_hist = Histogram(), Histogram()
        for latency in reads:
            read_hist.observe(latency)
        for latency in writes:
            write_hist.observe(latency)
        shard_operations: Dict[str, int] = {}
        if self.spec.is_sharded():
            shard_operations = {
                name: 0 for name in self.shard_map.shard_names
            }
            for op_record in completed:
                shard = self.shard_map.shard_of(op_record.object_id)
                shard_operations[shard] += 1
        result = PhaseResult(
            name=name,
            write_quorum=write_quorum,
            duration=elapsed,
            operations=len(completed),
            ops_per_sec=len(completed) / elapsed if elapsed > 0 else 0.0,
            failed=sum(client.operations_failed for client in fleet),
            retries=sum(client.operation_retries for client in fleet),
            latencies={
                "read": _summarise(reads),
                "write": _summarise(writes),
                "all": _summarise(reads + writes),
            },
            shard_operations=shard_operations,
            snapshots={
                "read": read_hist.snapshot(),
                "write": write_hist.snapshot(),
            },
        )
        self._phases.append(result)
        return result

    # -- per-object read leases ----------------------------------------------

    async def set_leases(self, enabled: bool) -> None:
        """Toggle the lease-read fast path on every proxy.

        Only the read side toggles: the mandatory-primary *write* rule
        is static cluster config, so flipping this mid-run is always
        safe — it changes which path reads take, never what writes
        guarantee.
        """
        flag = "1" if enabled else "0"
        for address in self.spec.proxies:
            status, body = await http_get(
                address.host,
                address.http_port,
                f"/leases?enable={flag}",
                timeout=10.0,
            )
            if status != 200:
                raise RuntimeError(
                    f"lease toggle on {address.name} failed: "
                    f"{status} {body!r}"
                )

    async def scrape_lease_counters(self) -> Dict[str, float]:
        """Sum the lease gauges across the fleet's ``/metrics`` pages."""
        pattern = re.compile(
            r"^(qopt_lease[a-z_]*|qopt_leases[a-z_]*)\{[^}]*\}\s+"
            r"([0-9.eE+-]+)$"
        )
        totals: Dict[str, float] = {}
        for address in self.spec.all_addresses():
            status, body = await http_get(
                address.host, address.http_port, "/metrics", timeout=10.0
            )
            if status != 200:
                continue
            for line in body.splitlines():
                match = pattern.match(line.strip())
                if match:
                    name, value = match.group(1), float(match.group(2))
                    totals[name] = totals.get(name, 0.0) + value
        return totals

    # -- reconfiguration -----------------------------------------------------

    async def reconfigure(
        self, write_quorum: int, shard: Optional[str] = None
    ) -> float:
        """Drive a live reconfiguration of one shard; returns wall seconds.

        ``shard=None`` targets shard 0 — exactly the historical global
        reconfiguration on an unsharded fleet.  Sharded fleets name the
        shard; its manager runs the two-phase change and the router's
        entry for that shard refreshes from the new epoch.
        """
        assert self.kernel is not None
        views = {view.name: view for view in self.spec.shard_views()}
        view = views[shard] if shard is not None else self.spec.shard_views()[0]
        manager = view.manager
        begin = self.kernel.tick()
        status, body = await http_get(
            manager.host,
            manager.http_port,
            f"/reconfig?write={write_quorum}",
            timeout=30.0,
        )
        if status != 200:
            raise RuntimeError(
                f"reconfiguration of {view.name} failed: {status} {body!r}"
            )
        if self.router is not None:
            # The manager reports the installed epoch; feeding it to the
            # router is the routing-table refresh for this shard.
            match = re.search(r"epoch=(\d+)", body)
            if match:
                self.router.note_epoch(view.name, int(match.group(1)))
        return self.kernel.tick() - begin

    async def refresh_routes(self) -> List[str]:
        """Poll every shard manager's ``/healthz`` for its current epoch
        and refresh any routing entries whose shard has moved on.
        Returns the names of the shards that refreshed."""
        if self.router is None:
            return []
        epochs: Dict[str, int] = {}
        for view in self.spec.shard_views():
            manager = view.manager
            status, body = await http_get(
                manager.host, manager.http_port, "/healthz", timeout=5.0
            )
            if status != 200:
                continue
            match = re.search(r"epoch=(-?\d+)", body)
            if match:
                epochs[view.name] = int(match.group(1))
        return self.router.note_epochs(epochs)

    # -- reporting -----------------------------------------------------------

    def check_history(
        self, max_states: int = 2_000_000
    ) -> tuple[int, Optional[bool]]:
        """Run the consistency + linearizability checkers on the history.

        Reads that completed without observing any write decode against
        the register's initial value; the checker handles that natively.
        Returns ``(violations, linearizable)`` where ``linearizable`` is
        ``None`` when the search budget was exceeded.  The budget is
        sized for pipelined fleets: depth ``d`` clients keep ``d``
        operations per client concurrent, which widens every Wing-Gong
        chunk the search must clear.
        """
        checker = HistoryChecker()
        for op_record in self.records:
            checker.record(op_record)
        violations = checker.check()
        linearizable: Optional[bool]
        try:
            lin_violations = checker.check_linearizable(
                max_states=max_states
            )
            linearizable = not lin_violations
            violations = list(violations) + list(lin_violations)
        except SearchBudgetExceeded:
            linearizable = None  # not refuted, just too costly to confirm
        return len(violations), linearizable

    def check_history_by_shard(
        self, max_states: int = 2_000_000
    ) -> List["ShardOutcome"]:
        """Per-shard Wing-Gong: partition the history by owning shard
        and verify each shard's sub-history independently.

        Sharding makes this sound, not just cheaper: objects never span
        shards, linearizability is local to an object's shard, and the
        per-shard verdicts compose into the fleet verdict.  A violation
        inside one shard is also pinned to that shard, which is what the
        independence tests assert on.
        """
        checkers = {
            name: HistoryChecker() for name in self.shard_map.shard_names
        }
        counts = {name: 0 for name in self.shard_map.shard_names}
        for op_record in self.records:
            shard = self.shard_map.shard_of(op_record.object_id)
            checkers[shard].record(op_record)
            counts[shard] += 1
        outcomes: List[ShardOutcome] = []
        for name in self.shard_map.shard_names:
            checker = checkers[name]
            violations = list(checker.check())
            linearizable: Optional[bool]
            try:
                lin_violations = checker.check_linearizable(
                    max_states=max_states
                )
                linearizable = not lin_violations
                violations.extend(lin_violations)
            except SearchBudgetExceeded:
                linearizable = None
            outcomes.append(
                ShardOutcome(
                    shard=name,
                    records=counts[name],
                    violations=len(violations),
                    linearizable=linearizable,
                )
            )
        return outcomes

    def result(
        self, reconfig_seconds: Optional[float]
    ) -> LoadgenResult:
        if self.spec.is_sharded():
            outcomes = self.check_history_by_shard()
            verdicts = [outcome.linearizable for outcome in outcomes]
            linearizable: Optional[bool]
            if any(verdict is False for verdict in verdicts):
                linearizable = False
            elif any(verdict is None for verdict in verdicts):
                linearizable = None
            else:
                linearizable = True
            return LoadgenResult(
                phases=list(self._phases),
                reconfig_seconds=reconfig_seconds,
                history_records=len(self.records),
                consistency_violations=sum(
                    outcome.violations for outcome in outcomes
                ),
                linearizable=linearizable,
                records=list(self.records),
                shard_outcomes=outcomes,
            )
        violations, linearizable = self.check_history()
        return LoadgenResult(
            phases=list(self._phases),
            reconfig_seconds=reconfig_seconds,
            history_records=len(self.records),
            consistency_violations=violations,
            linearizable=linearizable,
            records=list(self.records),
        )


async def run_bench(
    spec: ClusterSpec,
    phases: List[int],
    duration: float = 5.0,
    clients: int = 8,
    workload: str = "a",
    object_size: int = 4096,
    objects: int = 64,
    seed: int = 1,
    pipeline_depth: int = 1,
    injection_rate: float = 0.0,
) -> LoadgenResult:
    """The live benchmark: one timed phase per write-quorum in ``phases``,
    with a live reconfiguration before each phase after the first."""
    generator = LoadGenerator(
        spec,
        clients=clients,
        workload=workload,
        object_size=object_size,
        objects=objects,
        seed=seed,
        pipeline_depth=pipeline_depth,
        injection_rate=injection_rate,
    )
    await generator.start()
    try:
        await generator.wait_cluster_healthy()
        reconfig_total: Optional[float] = None
        for position, write_quorum in enumerate(phases):
            if position > 0:
                took = await generator.reconfigure(write_quorum)
                reconfig_total = (reconfig_total or 0.0) + took
            elif write_quorum != spec.initial_write_quorum:
                took = await generator.reconfigure(write_quorum)
                reconfig_total = (reconfig_total or 0.0) + took
            await generator.run_phase(
                name=f"W={write_quorum}",
                duration=duration,
                write_quorum=write_quorum,
            )
        return generator.result(reconfig_total)
    finally:
        await generator.stop()


async def run_lease_bench(
    spec: ClusterSpec,
    duration: float = 5.0,
    clients: int = 8,
    workload: str = "b",
    object_size: int = 4096,
    objects: int = 64,
    seed: int = 1,
    pipeline_depth: int = 1,
    injection_rate: float = 0.0,
) -> tuple[LoadgenResult, Dict[str, float]]:
    """A/B the lease fast path on one live cluster, same W throughout.

    Phase 1 (``<workload>/quorum``) runs with lease reads toggled off on
    every proxy — the pure quorum path under the mandatory-primary write
    rule.  Phase 2 (``<workload>/leased``) toggles them back on.  Both
    phases share the cross-phase history, so the combined run is
    Wing-Gong-checked like any other bench.  Returns the result plus the
    fleet-summed lease counters (hits/misses/grants/breaks), which the
    report embeds so a "2x speedup" claim can be audited against an
    actual lease hit rate.
    """
    generator = LoadGenerator(
        spec,
        clients=clients,
        workload=workload,
        object_size=object_size,
        objects=objects,
        seed=seed,
        pipeline_depth=pipeline_depth,
        injection_rate=injection_rate,
    )
    label = workload.upper()
    await generator.start()
    try:
        await generator.wait_cluster_healthy()
        write_quorum = spec.initial_write_quorum
        await generator.set_leases(False)
        await generator.run_phase(
            name=f"{label}/quorum",
            duration=duration,
            write_quorum=write_quorum,
        )
        await generator.set_leases(True)
        await generator.run_phase(
            name=f"{label}/leased",
            duration=duration,
            write_quorum=write_quorum,
        )
        counters = await generator.scrape_lease_counters()
        return generator.result(None), counters
    finally:
        await generator.stop()


def lease_speedup(result: LoadgenResult) -> Optional[float]:
    """ops/s ratio of the ``*/leased`` phase over the ``*/quorum`` phase."""
    quorum = leased = None
    for phase in result.phases:
        if phase.name.endswith("/quorum"):
            quorum = phase.ops_per_sec
        elif phase.name.endswith("/leased"):
            leased = phase.ops_per_sec
    if not quorum or leased is None:
        return None
    return leased / quorum


def write_report(result: LoadgenResult, path: str, extra: dict) -> None:
    """Write ``BENCH_net.json``-style output."""
    payload = dict(extra)
    payload.update(result.as_dict())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


#: A run must reach this fraction of the baseline's ops/sec per phase
#: (mirrors the BENCH_obs perf-smoke gate: generous enough for noisy CI
#: machines, tight enough to catch a real hot-path regression).
BASELINE_FLOOR = 0.7


def check_baseline(
    result: LoadgenResult, baseline_path: str, floor: float = BASELINE_FLOOR
) -> List[str]:
    """Compare per-phase ops/sec against a pinned baseline report.

    Returns human-readable failure strings (empty = gate passed).
    Phases are matched by name; a phase missing from the baseline is
    skipped, so adding phases does not require regenerating it.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    pinned = {
        phase["name"]: float(phase["ops_per_sec"])
        for phase in baseline.get("phases", [])
    }
    failures: List[str] = []
    for phase in result.phases:
        target = pinned.get(phase.name)
        if target is None or target <= 0:
            continue
        if phase.ops_per_sec < floor * target:
            failures.append(
                f"phase {phase.name}: {phase.ops_per_sec:.1f} ops/s is below "
                f"{floor:.0%} of baseline {target:.1f} ops/s"
            )
    return failures


__all__ = [
    "BASELINE_FLOOR",
    "LoadGenerator",
    "LoadgenResult",
    "PhaseResult",
    "ShardOutcome",
    "check_baseline",
    "lease_speedup",
    "merged_latency_summary",
    "run_bench",
    "run_lease_bench",
    "write_report",
]
