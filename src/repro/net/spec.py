"""Cluster specification shared by every live-runtime process.

``python -m repro cluster`` allocates ports, writes the spec as JSON and
spawns one ``python -m repro serve`` process per node; ``serve``,
``loadgen`` and the examples all reconstruct the same topology from that
file.  The spec is also the place where the live profile lives: the sim
service-time model priced in *simulated* seconds what the live runtime
now pays in real CPU, syscalls and wire time, so the live configs zero
out the modelled service times and keep only the protocol-level knobs
(deadlines, retry budgets, anti-entropy cadence).

**Sharding** (spec version 2): the fleet's keyspace can be partitioned
into independent shards, each with its own replica set, proxy set,
reconfiguration manager, placement ring and initial quorum.  A version-1
spec (no shard map) is still parsed — and serialized — byte-identically:
it denotes the degenerate single-shard fleet, so every pre-shard
consumer keeps working unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClientConfig, ProxyConfig, StorageConfig
from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, NodeKind, QuorumConfig
from repro.sds.quorum import QuorumPlan
from repro.sds.ring import PlacementRing
from repro.shard.map import ShardMap

#: Newest spec format version.  Version 1 (single ring, single manager)
#: is still read and written unchanged; version 2 adds the shard map.
SPEC_VERSION = 2

#: The version emitted for specs without a shard map (backward compat:
#: pre-shard specs must round-trip byte-identically).
_SINGLE_SHARD_VERSION = 1


def parse_node_name(name: str) -> NodeId:
    """Parse the ``kind-index`` string form back into a :class:`NodeId`."""
    kind, _, index = name.rpartition("-")
    if not kind or not index.isdigit():
        raise ConfigurationError(f"malformed node name {name!r}")
    return NodeId(kind=kind, index=int(index))


@dataclass(frozen=True)
class NodeAddress:
    """Where one protocol node lives: transport plus HTTP endpoints."""

    name: str
    host: str
    port: int
    http_port: int

    @property
    def node_id(self) -> NodeId:
        return parse_node_name(self.name)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the fleet: node names plus quorum parameters.

    Node *names* (not addresses) keep the shard map readable and make
    malformed maps checkable: every name must resolve against the spec's
    address lists, exactly once across all shards.
    """

    name: str
    replicas: Tuple[str, ...]
    proxies: Tuple[str, ...]
    manager: str
    write_quorum: int
    replication_degree: int

    def initial_quorum(self) -> QuorumConfig:
        return QuorumConfig.from_write(
            self.write_quorum, self.replication_degree
        )


@dataclass(frozen=True)
class ShardView:
    """A shard's resolved topology: addresses, ring, initial plan."""

    index: int
    name: str
    replicas: Tuple[NodeAddress, ...]
    proxies: Tuple[NodeAddress, ...]
    manager: NodeAddress
    write_quorum: int
    replication_degree: int

    def storage_ids(self) -> List[NodeId]:
        return [address.node_id for address in self.replicas]

    def proxy_ids(self) -> List[NodeId]:
        return [address.node_id for address in self.proxies]

    def initial_quorum(self) -> QuorumConfig:
        return QuorumConfig.from_write(
            self.write_quorum, self.replication_degree
        )

    def initial_plan(self) -> QuorumPlan:
        return QuorumPlan.uniform(self.initial_quorum())

    def ring(self) -> PlacementRing:
        """This shard's placement ring — identical in every process."""
        return PlacementRing(
            self.storage_ids(),
            replication_degree=self.replication_degree,
        )


@dataclass
class ClusterSpec:
    """Topology + tuning of one live fleet, as shipped between processes."""

    replicas: List[NodeAddress]
    proxies: List[NodeAddress]
    manager: NodeAddress
    replication_degree: int = 5
    initial_write_quorum: int = 3
    seed: int = 0
    #: Root of per-replica durable state (``<data_dir>/<node-name>/``).
    #: ``None`` keeps replicas on the in-memory backend — the default, so
    #: existing smoke/bench flows are untouched; the chaos harness sets
    #: it to give every storage node a crash-recoverable WAL.
    data_dir: Optional[str] = None
    version: int = SPEC_VERSION
    storage: StorageConfig = field(default_factory=lambda: live_storage_config())
    proxy: ProxyConfig = field(default_factory=lambda: live_proxy_config())
    client: ClientConfig = field(default_factory=lambda: live_client_config())
    #: Reconfiguration managers of shards 1..S-1 (:attr:`manager` is
    #: shard 0's).  Empty for single-shard specs.
    extra_managers: List[NodeAddress] = field(default_factory=list)
    #: The shard map.  Empty = one implicit shard spanning everything,
    #: which is exactly the pre-shard (version 1) topology.
    shards: List[ShardSpec] = field(default_factory=list)

    # -- derived topology ----------------------------------------------------

    def validate(self) -> "ClusterSpec":
        if not self.replicas:
            raise ConfigurationError("spec needs at least one replica")
        if not self.proxies:
            raise ConfigurationError("spec needs at least one proxy")
        if self.replication_degree > len(self.replicas) and not self.shards:
            raise ConfigurationError(
                f"replication degree {self.replication_degree} exceeds "
                f"replica count {len(self.replicas)}"
            )
        if not self.shards:
            if self.extra_managers:
                raise ConfigurationError(
                    "extra managers require a shard map: a single-shard "
                    "spec has exactly one reconfiguration manager"
                )
            self.initial_quorum().validate_strict(self.replication_degree)
        else:
            self._validate_shard_map()
        self.storage.validate()
        self.proxy.validate()
        self.client.validate()
        return self

    def _validate_shard_map(self) -> None:
        """Explicit, named errors for every way a shard map can be wrong."""
        names = [shard.name for shard in self.shards]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate shard names in shard map: {sorted(names)}"
            )
        if any(not name for name in names):
            raise ConfigurationError("shard names must be non-empty")
        replica_names = {address.name for address in self.replicas}
        proxy_names = {address.name for address in self.proxies}
        manager_names = {
            address.name for address in self.all_managers()
        }
        assigned_replicas: Dict[str, str] = {}
        assigned_proxies: Dict[str, str] = {}
        assigned_managers: Dict[str, str] = {}
        for shard in self.shards:
            if not shard.replicas:
                raise ConfigurationError(
                    f"shard {shard.name!r} has no replicas"
                )
            if not shard.proxies:
                raise ConfigurationError(
                    f"shard {shard.name!r} has no proxies"
                )
            for node in shard.replicas:
                if node not in replica_names:
                    raise ConfigurationError(
                        f"shard {shard.name!r} references unknown replica "
                        f"{node!r}"
                    )
                if node in assigned_replicas:
                    raise ConfigurationError(
                        f"replica {node!r} assigned to both "
                        f"{assigned_replicas[node]!r} and {shard.name!r}"
                    )
                assigned_replicas[node] = shard.name
            for node in shard.proxies:
                if node not in proxy_names:
                    raise ConfigurationError(
                        f"shard {shard.name!r} references unknown proxy "
                        f"{node!r}"
                    )
                if node in assigned_proxies:
                    raise ConfigurationError(
                        f"proxy {node!r} assigned to both "
                        f"{assigned_proxies[node]!r} and {shard.name!r}"
                    )
                assigned_proxies[node] = shard.name
            if shard.manager not in manager_names:
                raise ConfigurationError(
                    f"shard {shard.name!r} references unknown manager "
                    f"{shard.manager!r}"
                )
            if shard.manager in assigned_managers:
                raise ConfigurationError(
                    f"manager {shard.manager!r} assigned to both "
                    f"{assigned_managers[shard.manager]!r} and "
                    f"{shard.name!r}"
                )
            assigned_managers[shard.manager] = shard.name
            if shard.replication_degree > len(shard.replicas):
                raise ConfigurationError(
                    f"shard {shard.name!r}: replication degree "
                    f"{shard.replication_degree} exceeds its "
                    f"{len(shard.replicas)} replicas"
                )
            shard.initial_quorum().validate_strict(shard.replication_degree)
        unassigned_replicas = sorted(replica_names - set(assigned_replicas))
        if unassigned_replicas:
            raise ConfigurationError(
                f"replicas not in any shard: {unassigned_replicas}"
            )
        unassigned_proxies = sorted(proxy_names - set(assigned_proxies))
        if unassigned_proxies:
            raise ConfigurationError(
                f"proxies not in any shard: {unassigned_proxies}"
            )
        unassigned_managers = sorted(manager_names - set(assigned_managers))
        if unassigned_managers:
            raise ConfigurationError(
                f"managers not in any shard: {unassigned_managers}"
            )

    def initial_quorum(self) -> QuorumConfig:
        return QuorumConfig.from_write(
            self.initial_write_quorum, self.replication_degree
        )

    def initial_plan(self) -> QuorumPlan:
        return QuorumPlan.uniform(self.initial_quorum())

    def storage_ids(self) -> List[NodeId]:
        return [address.node_id for address in self.replicas]

    def proxy_ids(self) -> List[NodeId]:
        return [address.node_id for address in self.proxies]

    def ring(self) -> PlacementRing:
        """The single-shard placement ring (shard 0's when sharded)."""
        return self.shard_views()[0].ring()

    # -- shard topology -------------------------------------------------------

    def is_sharded(self) -> bool:
        return bool(self.shards)

    def shard_views(self) -> List[ShardView]:
        """Resolved shard topologies; a single implicit shard when the
        spec predates (or does not use) the shard map."""
        if not self.shards:
            return [
                ShardView(
                    index=0,
                    name="shard-0",
                    replicas=tuple(self.replicas),
                    proxies=tuple(self.proxies),
                    manager=self.manager,
                    write_quorum=self.initial_write_quorum,
                    replication_degree=self.replication_degree,
                )
            ]
        by_name = {
            address.name: address for address in self.all_addresses()
        }
        return [
            ShardView(
                index=index,
                name=shard.name,
                replicas=tuple(by_name[n] for n in shard.replicas),
                proxies=tuple(by_name[n] for n in shard.proxies),
                manager=by_name[shard.manager],
                write_quorum=shard.write_quorum,
                replication_degree=shard.replication_degree,
            )
            for index, shard in enumerate(self.shards)
        ]

    def shard_for(self, node_name: str) -> ShardView:
        """The shard hosting ``node_name`` (every node is in exactly one)."""
        for view in self.shard_views():
            members = (
                {a.name for a in view.replicas}
                | {a.name for a in view.proxies}
                | {view.manager.name}
            )
            if node_name in members:
                return view
        raise ConfigurationError(f"node {node_name!r} not in any shard")

    def shard_map(self) -> ShardMap:
        """The key→shard partition every process agrees on."""
        return ShardMap([view.name for view in self.shard_views()])

    def all_managers(self) -> List[NodeAddress]:
        return [self.manager] + list(self.extra_managers)

    def all_addresses(self) -> List[NodeAddress]:
        return (
            list(self.replicas) + list(self.proxies) + self.all_managers()
        )

    def address_of(self, name: str) -> NodeAddress:
        for address in self.all_addresses():
            if address.name == name:
                return address
        raise ConfigurationError(f"node {name!r} not in spec")

    def directory(self) -> Dict[NodeId, Tuple[str, int]]:
        """Static transport directory: node id -> (host, port)."""
        return {
            address.node_id: (address.host, address.port)
            for address in self.all_addresses()
        }

    # -- JSON ----------------------------------------------------------------

    def to_json(self) -> str:
        def addr(address: NodeAddress) -> dict:
            return {
                "name": address.name,
                "host": address.host,
                "port": address.port,
                "http_port": address.http_port,
            }

        payload: Dict[str, object] = {
            "version": (
                _SINGLE_SHARD_VERSION if not self.shards else SPEC_VERSION
            ),
            "replication_degree": self.replication_degree,
            "initial_write_quorum": self.initial_write_quorum,
            "seed": self.seed,
            "data_dir": self.data_dir,
            "replicas": [addr(a) for a in self.replicas],
            "proxies": [addr(a) for a in self.proxies],
            "manager": addr(self.manager),
            "storage": vars(self.storage),
            "proxy": vars(self.proxy),
            "client": vars(self.client),
        }
        if self.shards:
            payload["extra_managers"] = [
                addr(a) for a in self.extra_managers
            ]
            payload["shards"] = [
                {
                    "name": shard.name,
                    "replicas": list(shard.replicas),
                    "proxies": list(shard.proxies),
                    "manager": shard.manager,
                    "write_quorum": shard.write_quorum,
                    "replication_degree": shard.replication_degree,
                }
                for shard in self.shards
            ]
        return json.dumps(payload, indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ClusterSpec":
        raw = json.loads(text)
        version = raw.get("version")
        if version not in (_SINGLE_SHARD_VERSION, SPEC_VERSION):
            raise ConfigurationError(
                f"spec version {version!r} not in "
                f"({_SINGLE_SHARD_VERSION}, {SPEC_VERSION})"
            )

        def addr(data: dict) -> NodeAddress:
            return NodeAddress(
                name=data["name"],
                host=data["host"],
                port=int(data["port"]),
                http_port=int(data["http_port"]),
            )

        extra_managers: List[NodeAddress] = []
        shards: List[ShardSpec] = []
        if version == SPEC_VERSION:
            extra_managers = [
                addr(a) for a in raw.get("extra_managers", [])
            ]
            for entry in raw.get("shards", []):
                if not isinstance(entry, dict):
                    raise ConfigurationError(
                        f"malformed shard entry: {entry!r}"
                    )
                missing = [
                    key
                    for key in (
                        "name", "replicas", "proxies", "manager",
                        "write_quorum", "replication_degree",
                    )
                    if key not in entry
                ]
                if missing:
                    raise ConfigurationError(
                        f"shard entry missing keys {missing}: {entry!r}"
                    )
                shards.append(
                    ShardSpec(
                        name=str(entry["name"]),
                        replicas=tuple(str(n) for n in entry["replicas"]),
                        proxies=tuple(str(n) for n in entry["proxies"]),
                        manager=str(entry["manager"]),
                        write_quorum=int(entry["write_quorum"]),
                        replication_degree=int(entry["replication_degree"]),
                    )
                )
            if not shards:
                raise ConfigurationError(
                    f"version {SPEC_VERSION} spec must carry a non-empty "
                    "shard map (use version 1 for single-shard specs)"
                )
        elif "shards" in raw or "extra_managers" in raw:
            raise ConfigurationError(
                "version 1 spec cannot carry a shard map; bump to "
                f"version {SPEC_VERSION}"
            )

        return ClusterSpec(
            replicas=[addr(a) for a in raw["replicas"]],
            proxies=[addr(a) for a in raw["proxies"]],
            manager=addr(raw["manager"]),
            replication_degree=int(raw["replication_degree"]),
            initial_write_quorum=int(raw["initial_write_quorum"]),
            seed=int(raw["seed"]),
            data_dir=raw.get("data_dir"),
            storage=StorageConfig(**raw["storage"]),
            proxy=ProxyConfig(**raw["proxy"]),
            client=ClientConfig(**raw["client"]),
            extra_managers=extra_managers,
            shards=shards,
        ).validate()

    @staticmethod
    def load(path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return ClusterSpec.from_json(handle.read())


# -- live profiles -----------------------------------------------------------


def live_storage_config() -> StorageConfig:
    """Storage knobs for real hardware.

    Modelled service times and bandwidth throttles go to ~zero — the
    process now pays real syscall and scheduling costs instead.  The
    anti-entropy replicator stays on at a relaxed cadence.
    """
    return StorageConfig(
        read_service_time=0.0,
        write_service_time=0.0,
        read_bandwidth=1e12,
        write_bandwidth=1e12,
        read_miss_ratio=0.0,
        read_miss_penalty=0.0,
        concurrency=64,
        replication_interval=5.0,
    )


def live_proxy_config() -> ProxyConfig:
    """Proxy knobs for real hardware: wall-clock-scaled deadlines."""
    return ProxyConfig(
        per_replica_cpu=0.0,
        concurrency=64,
        fallback_timeout=0.25,
        gather_deadline=2.0,
        max_gather_attempts=3,
    )


def live_client_config() -> ClientConfig:
    """Client retry/deadline policy for real round trips."""
    return ClientConfig(
        attempt_timeout=8.0,
        max_attempts=4,
        backoff_base=0.05,
        backoff_cap=1.0,
        backoff_jitter=0.5,
    )


def build_spec(
    replicas: int = 5,
    proxies: int = 1,
    write_quorum: int = 3,
    replication_degree: Optional[int] = None,
    host: str = "127.0.0.1",
    base_port: int = 0,
    seed: int = 0,
    data_dir: Optional[str] = None,
    shards: int = 1,
    shard_write_quorums: Optional[Sequence[int]] = None,
    lease_duration: float = 0.0,
) -> ClusterSpec:
    """Construct a spec for a local cluster or sharded fleet.

    ``base_port=0`` leaves every port 0 — the cluster runner then binds
    ephemeral ports and rewrites the spec before spawning workers.

    With ``shards > 1``, ``replicas``/``proxies``/``write_quorum`` are
    *per shard*: the fleet gets ``shards * replicas`` storage nodes,
    ``shards * proxies`` proxies and one reconfiguration manager per
    shard.  ``shard_write_quorums`` overrides the initial W per shard
    (e.g. ``[4, 2]`` arms the concurrent-reconfiguration benchmark with
    one shard about to shrink W and another about to grow it).
    ``shards=1`` (the default) emits the pre-shard version-1 spec,
    byte-for-byte.

    ``lease_duration > 0`` enables per-object read leases (invariant
    I7) cluster-wide: every proxy spawned from the spec applies the
    mandatory-primary write rule and may serve lease reads.  The flag
    lives in the spec — not per process — because a fleet with mixed
    write rules would be unsound.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shard_write_quorums is not None and len(shard_write_quorums) != shards:
        raise ConfigurationError(
            f"need one write quorum per shard: got "
            f"{len(shard_write_quorums)} for {shards} shards"
        )

    offsets = iter(range(10_000))

    def ports() -> Tuple[int, int]:
        offset = next(offsets)
        if base_port == 0:
            return (0, 0)
        return (base_port + 2 * offset, base_port + 2 * offset + 1)

    def address(name: str) -> NodeAddress:
        port, http_port = ports()
        return NodeAddress(
            name=name, host=host, port=port, http_port=http_port
        )

    degree = replication_degree if replication_degree is not None else replicas
    replica_addresses = [
        address(str(NodeId.storage(index)))
        for index in range(shards * replicas)
    ]
    proxy_addresses = [
        address(str(NodeId.proxy(index)))
        for index in range(shards * proxies)
    ]
    manager_addresses = [
        address(str(NodeId(NodeKind.RECONFIG_MANAGER.value, index)))
        for index in range(shards)
    ]
    shard_specs: List[ShardSpec] = []
    if shards > 1:
        for index in range(shards):
            shard_specs.append(
                ShardSpec(
                    name=f"shard-{index}",
                    replicas=tuple(
                        a.name
                        for a in replica_addresses[
                            index * replicas:(index + 1) * replicas
                        ]
                    ),
                    proxies=tuple(
                        a.name
                        for a in proxy_addresses[
                            index * proxies:(index + 1) * proxies
                        ]
                    ),
                    manager=manager_addresses[index].name,
                    write_quorum=(
                        shard_write_quorums[index]
                        if shard_write_quorums is not None
                        else write_quorum
                    ),
                    replication_degree=degree,
                )
            )
    proxy_config = live_proxy_config()
    if lease_duration > 0:
        proxy_config = replace(proxy_config, lease_duration=lease_duration)
    return ClusterSpec(
        replicas=replica_addresses,
        proxies=proxy_addresses,
        proxy=proxy_config,
        manager=manager_addresses[0],
        replication_degree=degree,
        initial_write_quorum=(
            shard_write_quorums[0]
            if shards > 1 and shard_write_quorums is not None
            else write_quorum
        ),
        seed=seed,
        data_dir=data_dir,
        extra_managers=manager_addresses[1:],
        shards=shard_specs,
    ).validate()


__all__ = [
    "SPEC_VERSION",
    "NodeAddress",
    "ShardSpec",
    "ShardView",
    "ClusterSpec",
    "parse_node_name",
    "build_spec",
    "live_storage_config",
    "live_proxy_config",
    "live_client_config",
]
