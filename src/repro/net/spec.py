"""Cluster specification shared by every live-runtime process.

``python -m repro cluster`` allocates ports, writes the spec as JSON and
spawns one ``python -m repro serve`` process per node; ``serve``,
``loadgen`` and the examples all reconstruct the same topology from that
file.  The spec is also the place where the live profile lives: the sim
service-time model priced in *simulated* seconds what the live runtime
now pays in real CPU, syscalls and wire time, so the live configs zero
out the modelled service times and keep only the protocol-level knobs
(deadlines, retry budgets, anti-entropy cadence).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import ClientConfig, ProxyConfig, StorageConfig
from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, NodeKind, QuorumConfig
from repro.sds.quorum import QuorumPlan
from repro.sds.ring import PlacementRing

#: Spec format version, bumped on incompatible layout changes.
SPEC_VERSION = 1


def parse_node_name(name: str) -> NodeId:
    """Parse the ``kind-index`` string form back into a :class:`NodeId`."""
    kind, _, index = name.rpartition("-")
    if not kind or not index.isdigit():
        raise ConfigurationError(f"malformed node name {name!r}")
    return NodeId(kind=kind, index=int(index))


@dataclass(frozen=True)
class NodeAddress:
    """Where one protocol node lives: transport plus HTTP endpoints."""

    name: str
    host: str
    port: int
    http_port: int

    @property
    def node_id(self) -> NodeId:
        return parse_node_name(self.name)


@dataclass
class ClusterSpec:
    """Topology + tuning of one live cluster, as shipped between processes."""

    replicas: List[NodeAddress]
    proxies: List[NodeAddress]
    manager: NodeAddress
    replication_degree: int = 5
    initial_write_quorum: int = 3
    seed: int = 0
    #: Root of per-replica durable state (``<data_dir>/<node-name>/``).
    #: ``None`` keeps replicas on the in-memory backend — the default, so
    #: existing smoke/bench flows are untouched; the chaos harness sets
    #: it to give every storage node a crash-recoverable WAL.
    data_dir: Optional[str] = None
    version: int = SPEC_VERSION
    storage: StorageConfig = field(default_factory=lambda: live_storage_config())
    proxy: ProxyConfig = field(default_factory=lambda: live_proxy_config())
    client: ClientConfig = field(default_factory=lambda: live_client_config())

    # -- derived topology ----------------------------------------------------

    def validate(self) -> "ClusterSpec":
        if not self.replicas:
            raise ConfigurationError("spec needs at least one replica")
        if not self.proxies:
            raise ConfigurationError("spec needs at least one proxy")
        if self.replication_degree > len(self.replicas):
            raise ConfigurationError(
                f"replication degree {self.replication_degree} exceeds "
                f"replica count {len(self.replicas)}"
            )
        self.initial_quorum().validate_strict(self.replication_degree)
        self.storage.validate()
        self.proxy.validate()
        self.client.validate()
        return self

    def initial_quorum(self) -> QuorumConfig:
        return QuorumConfig.from_write(
            self.initial_write_quorum, self.replication_degree
        )

    def initial_plan(self) -> QuorumPlan:
        return QuorumPlan.uniform(self.initial_quorum())

    def storage_ids(self) -> List[NodeId]:
        return [address.node_id for address in self.replicas]

    def proxy_ids(self) -> List[NodeId]:
        return [address.node_id for address in self.proxies]

    def ring(self) -> PlacementRing:
        """The placement ring — identical in every process by construction."""
        return PlacementRing(
            self.storage_ids(), replication_degree=self.replication_degree
        )

    def all_addresses(self) -> List[NodeAddress]:
        return list(self.replicas) + list(self.proxies) + [self.manager]

    def address_of(self, name: str) -> NodeAddress:
        for address in self.all_addresses():
            if address.name == name:
                return address
        raise ConfigurationError(f"node {name!r} not in spec")

    def directory(self) -> Dict[NodeId, Tuple[str, int]]:
        """Static transport directory: node id -> (host, port)."""
        return {
            address.node_id: (address.host, address.port)
            for address in self.all_addresses()
        }

    # -- JSON ----------------------------------------------------------------

    def to_json(self) -> str:
        def addr(address: NodeAddress) -> dict:
            return {
                "name": address.name,
                "host": address.host,
                "port": address.port,
                "http_port": address.http_port,
            }

        return json.dumps(
            {
                "version": self.version,
                "replication_degree": self.replication_degree,
                "initial_write_quorum": self.initial_write_quorum,
                "seed": self.seed,
                "data_dir": self.data_dir,
                "replicas": [addr(a) for a in self.replicas],
                "proxies": [addr(a) for a in self.proxies],
                "manager": addr(self.manager),
                "storage": vars(self.storage),
                "proxy": vars(self.proxy),
                "client": vars(self.client),
            },
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "ClusterSpec":
        raw = json.loads(text)
        if raw.get("version") != SPEC_VERSION:
            raise ConfigurationError(
                f"spec version {raw.get('version')!r} != {SPEC_VERSION}"
            )

        def addr(data: dict) -> NodeAddress:
            return NodeAddress(
                name=data["name"],
                host=data["host"],
                port=int(data["port"]),
                http_port=int(data["http_port"]),
            )

        return ClusterSpec(
            replicas=[addr(a) for a in raw["replicas"]],
            proxies=[addr(a) for a in raw["proxies"]],
            manager=addr(raw["manager"]),
            replication_degree=int(raw["replication_degree"]),
            initial_write_quorum=int(raw["initial_write_quorum"]),
            seed=int(raw["seed"]),
            data_dir=raw.get("data_dir"),
            storage=StorageConfig(**raw["storage"]),
            proxy=ProxyConfig(**raw["proxy"]),
            client=ClientConfig(**raw["client"]),
        ).validate()

    @staticmethod
    def load(path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return ClusterSpec.from_json(handle.read())


# -- live profiles -----------------------------------------------------------


def live_storage_config() -> StorageConfig:
    """Storage knobs for real hardware.

    Modelled service times and bandwidth throttles go to ~zero — the
    process now pays real syscall and scheduling costs instead.  The
    anti-entropy replicator stays on at a relaxed cadence.
    """
    return StorageConfig(
        read_service_time=0.0,
        write_service_time=0.0,
        read_bandwidth=1e12,
        write_bandwidth=1e12,
        read_miss_ratio=0.0,
        read_miss_penalty=0.0,
        concurrency=64,
        replication_interval=5.0,
    )


def live_proxy_config() -> ProxyConfig:
    """Proxy knobs for real hardware: wall-clock-scaled deadlines."""
    return ProxyConfig(
        per_replica_cpu=0.0,
        concurrency=64,
        fallback_timeout=0.25,
        gather_deadline=2.0,
        max_gather_attempts=3,
    )


def live_client_config() -> ClientConfig:
    """Client retry/deadline policy for real round trips."""
    return ClientConfig(
        attempt_timeout=8.0,
        max_attempts=4,
        backoff_base=0.05,
        backoff_cap=1.0,
        backoff_jitter=0.5,
    )


def build_spec(
    replicas: int = 5,
    proxies: int = 1,
    write_quorum: int = 3,
    replication_degree: Optional[int] = None,
    host: str = "127.0.0.1",
    base_port: int = 0,
    seed: int = 0,
    data_dir: Optional[str] = None,
) -> ClusterSpec:
    """Construct a spec for a local cluster.

    ``base_port=0`` leaves every port 0 — the cluster runner then binds
    ephemeral ports and rewrites the spec before spawning workers.
    """

    def ports(offset: int) -> Tuple[int, int]:
        if base_port == 0:
            return (0, 0)
        return (base_port + 2 * offset, base_port + 2 * offset + 1)

    degree = replication_degree if replication_degree is not None else replicas
    replica_addresses = []
    for index in range(replicas):
        port, http_port = ports(index)
        replica_addresses.append(
            NodeAddress(
                name=str(NodeId.storage(index)),
                host=host,
                port=port,
                http_port=http_port,
            )
        )
    proxy_addresses = []
    for index in range(proxies):
        port, http_port = ports(replicas + index)
        proxy_addresses.append(
            NodeAddress(
                name=str(NodeId.proxy(index)),
                host=host,
                port=port,
                http_port=http_port,
            )
        )
    manager_port, manager_http = ports(replicas + proxies)
    manager = NodeAddress(
        name=str(NodeId.singleton(NodeKind.RECONFIG_MANAGER)),
        host=host,
        port=manager_port,
        http_port=manager_http,
    )
    return ClusterSpec(
        replicas=replica_addresses,
        proxies=proxy_addresses,
        manager=manager,
        replication_degree=degree,
        initial_write_quorum=write_quorum,
        seed=seed,
        data_dir=data_dir,
    ).validate()


__all__ = [
    "SPEC_VERSION",
    "NodeAddress",
    "ClusterSpec",
    "parse_node_name",
    "build_spec",
    "live_storage_config",
    "live_proxy_config",
    "live_client_config",
]
