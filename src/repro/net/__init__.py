"""Live asyncio TCP runtime for the Q-OPT protocol.

This package deploys the *same* protocol code that runs inside the
discrete-event simulator — :class:`~repro.sds.proxy.ProxyNode`,
:class:`~repro.sds.storage.StorageNode`,
:class:`~repro.sds.client.ClientNode` and the reconfiguration manager —
over real TCP sockets and wall-clock time:

* :mod:`repro.net.transport` — the :class:`Transport` seam both the sim
  :class:`~repro.sim.network.Network` and the live
  :class:`~repro.net.tcp.TcpTransport` satisfy;
* :mod:`repro.net.kernel` — :class:`RealtimeKernel`, an asyncio-backed
  drop-in for the sim :class:`~repro.sim.kernel.Simulator` that runs the
  unmodified protocol generators in real time;
* :mod:`repro.net.codec` — the deterministic binary wire format for every
  dataclass in :mod:`repro.sds.messages`;
* :mod:`repro.net.tcp` — length-prefixed framing, reconnect-with-backoff
  and return-route learning over asyncio streams;
* :mod:`repro.net.runtime` / :mod:`repro.net.cluster` /
  :mod:`repro.net.loadgen` — the ``python -m repro serve | cluster |
  loadgen`` process runners and the live benchmark.

Import note: this ``__init__`` stays lightweight (protocol-side modules
import :mod:`repro.net.transport`; eagerly importing the TCP stack here
would create an import cycle through :mod:`repro.sds.messages`).
"""

from repro.net.transport import Transport

__all__ = ["Transport"]
