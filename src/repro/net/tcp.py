"""TCP implementation of the :class:`~repro.net.transport.Transport` seam.

One :class:`TcpTransport` serves all protocol nodes hosted by a process
(one replica, one proxy, or a whole fleet of loadgen clients).  Frames
are length-prefixed (:mod:`repro.net.codec`); inter-process links are:

* **outbound peer links** — one persistent connection per remote
  *process* (keyed by address, so every channel between two processes
  shares one FIFO TCP stream), with reconnect-and-exponential-backoff;
* **learned return routes** — replies to nodes that are not in the
  static directory (loadgen clients) flow back over the inbound
  connection that carried their requests, Swift-proxy style.

Failure semantics match the paper's model as deployed systems realize
it: a frame in flight when a connection breaks is *lost*, never
duplicated.  Duplication would be unsafe — a quorum gather counting one
replica's duplicated reply twice could declare a quorum that does not
exist — whereas loss is exactly what the protocol's deadline/retry
machinery (client attempts, proxy gather rotations, RM retransmissions)
is built to absorb.

Hot-path notes (see ``docs/PERFORMANCE.md``):

* **Write coalescing** — all frames queued to the same peer while the
  pump was busy (typically: everything produced within one event-loop
  tick) are joined into a single ``write()`` + ``drain()``, bounded by
  ``flush_bytes`` per batch so one huge burst cannot monopolise the
  loop or the join buffer.  ``drain()`` after every batch is the write
  backpressure: a slow peer suspends the pump, frames accumulate in the
  bounded deque (shed-oldest), memory stays flat.
* **At-most-once is unchanged** — a batch popped from the queue when the
  connection breaks is lost *as a unit*; nothing is ever re-queued.
* **Bulk reads** — the inbound side reads large chunks and parses every
  complete frame in the accumulated buffer per wakeup, handing the codec
  zero-copy ``memoryview`` bodies instead of one ``readexactly`` pair
  per frame.
"""

from __future__ import annotations

import asyncio
import logging
import random
from collections import deque
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.types import NodeId
from repro.net.codec import (
    LENGTH_PREFIX,
    MAX_FRAME,
    CodecError,
    decode_frame_body,
    encode_frame,
)
from repro.net.kernel import RealtimeKernel
from repro.sim.network import Envelope, Mailbox

logger = logging.getLogger(__name__)

#: (host, port) address of a remote process.
Address = Tuple[str, int]


async def _pump_frames(
    transport: "TcpTransport",
    frames: "deque[bytes]",
    wakeup: asyncio.Event,
    writer: asyncio.StreamWriter,
    closed: "Callable[[], bool]",
) -> None:
    """Coalescing write pump shared by peer links and learned routes.

    Pops every queued frame up to ``flush_bytes`` per batch, writes the
    batch as one buffer, then awaits ``drain()`` (the backpressure
    point).  Connection errors propagate to the caller; frames already
    popped are lost — at-most-once, see the module docstring.
    """
    bound = transport.flush_bytes
    while not closed():
        if not frames:
            wakeup.clear()
            if frames:
                continue
            await wakeup.wait()
            continue
        batch = []
        size = 0
        while frames and size < bound:
            frame = frames.popleft()
            batch.append(frame)
            size += len(frame)
        writer.write(batch[0] if len(batch) == 1 else b"".join(batch))
        transport.flushes += 1
        transport.frames_flushed += len(batch)
        await writer.drain()


class _PeerLink:
    """One persistent outbound connection with reconnect + backoff."""

    def __init__(self, transport: "TcpTransport", address: Address) -> None:
        self._transport = transport
        self.address = address
        self._frames: deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        self.reconnects = 0
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task = transport._kernel._loop.create_task(self._run())

    def reset(self) -> None:
        """Abruptly drop the live connection (fault injection).

        The batch in flight (if any) is lost as a unit — exactly the
        at-most-once contract a real RST gives — and the run loop
        reconnects with the usual backoff.  Frames still queued were
        never written and simply ride the next connection.
        """
        writer = self._writer
        if writer is not None and not writer.is_closing():
            writer.close()

    def enqueue(self, frame: bytes) -> None:
        if self._closed:
            return
        if len(self._frames) >= self._transport.max_queued_frames:
            # Bounded sender-side buffering: shed the oldest frame (it is
            # the one whose deadline is nearest to expiry anyway).
            self._frames.popleft()
            self._transport.messages_dropped += 1
        self._frames.append(frame)
        self._wakeup.set()

    async def close(self) -> None:
        self._closed = True
        self._wakeup.set()
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass

    async def _run(self) -> None:
        backoff = self._transport.reconnect_base
        host, port = self.address
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(
                    backoff * (1.0 + self._transport._rng.random())
                )
                backoff = min(self._transport.reconnect_cap, backoff * 2)
                continue
            backoff = self._transport.reconnect_base
            self._writer = writer
            loop = self._transport._kernel._loop
            # The peer may address frames back at us over this same
            # connection (replies to loadgen clients), so always read it.
            # The reader doubles as the hangup detector: TCP buffering can
            # accept writes long after the peer died, but the read side
            # sees the EOF/RST immediately.
            read_task = loop.create_task(
                self._transport._read_frames(reader, writer)
            )
            pump_task = loop.create_task(self._pump(writer))
            try:
                await asyncio.wait(
                    {read_task, pump_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                for task in (read_task, pump_task):
                    task.cancel()
                await asyncio.gather(
                    read_task, pump_task, return_exceptions=True
                )
                writer.close()
                self._writer = None
            if not self._closed:
                self.reconnects += 1
        return None

    async def _pump(self, writer: asyncio.StreamWriter) -> None:
        await _pump_frames(
            self._transport,
            self._frames,
            self._wakeup,
            writer,
            lambda: self._closed,
        )


class _RouteBatcher:
    """Coalesced, backpressured writes on one learned return route.

    Learned routes have no reconnect machinery (the remote client owns
    the connection); when the stream breaks, queued frames are dropped
    and the route is forgotten.
    """

    def __init__(
        self, transport: "TcpTransport", writer: asyncio.StreamWriter
    ) -> None:
        self._transport = transport
        self.writer = writer
        self._frames: deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        self._task = transport._kernel._loop.create_task(self._run())

    def enqueue(self, frame: bytes) -> None:
        if self._closed or self.writer.is_closing():
            self._transport.messages_dropped += 1
            return
        if len(self._frames) >= self._transport.max_queued_frames:
            self._frames.popleft()
            self._transport.messages_dropped += 1
        self._frames.append(frame)
        self._wakeup.set()

    def close(self) -> None:
        self._closed = True
        self._transport.messages_dropped += len(self._frames)
        self._frames.clear()
        self._task.cancel()

    async def _run(self) -> None:
        try:
            await _pump_frames(
                self._transport,
                self._frames,
                self._wakeup,
                self.writer,
                lambda: self._closed,
            )
        except (ConnectionError, OSError):
            # Broken route: everything still queued (and the batch in
            # flight) is lost; the client's retry machinery recovers.
            self._transport.messages_dropped += len(self._frames)
            self._frames.clear()
        except asyncio.CancelledError:
            pass


class TcpTransport:
    """The live message fabric: a :class:`Transport` over asyncio TCP."""

    def __init__(
        self,
        kernel: RealtimeKernel,
        directory: Mapping[NodeId, Address],
        listen_host: str = "127.0.0.1",
        listen_port: Optional[int] = None,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        max_queued_frames: int = 10_000,
        flush_bytes: int = 256 * 1024,
        read_chunk: int = 256 * 1024,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._kernel = kernel
        #: Static node -> address map (shared, may be filled in later but
        #: before the first send to that node).
        self.directory = dict(directory)
        self._listen_host = listen_host
        self._listen_port = listen_port
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.max_queued_frames = max_queued_frames
        #: Upper bound on bytes joined into one coalesced ``write()``.
        self.flush_bytes = flush_bytes
        #: Bytes requested per inbound ``read()`` in the bulk parse loop.
        self.read_chunk = read_chunk
        self._rng = rng if rng is not None else random.Random()
        self._mailboxes: Dict[NodeId, Mailbox] = {}
        self._peers: Dict[Address, _PeerLink] = {}
        self._routes: Dict[NodeId, asyncio.StreamWriter] = {}
        self._route_batchers: Dict[asyncio.StreamWriter, _RouteBatcher] = {}
        self._inbound: set[asyncio.StreamWriter] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = False
        self._stopped = False
        # Delivery counters (same names as the sim Network's, so metrics
        # code can scrape either fabric uniformly).
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.decode_errors = 0
        # Coalescing counters: frames_flushed / flushes is the mean
        # batch size actually achieved on the wire.
        self.flushes = 0
        self.frames_flushed = 0
        # Fault injection: times drop_connections() reset live links.
        self.connection_resets = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (if this process accepts inbound)."""
        if self._started:
            return
        self._started = True
        if self._listen_port is not None:
            self._server = await asyncio.start_server(
                self._on_connection, self._listen_host, self._listen_port
            )
            sockets = self._server.sockets or []
            if self._listen_port == 0 and sockets:
                self._listen_port = sockets[0].getsockname()[1]

    @property
    def listen_address(self) -> Optional[Address]:
        """The bound (host, port), once :meth:`start` has run."""
        if self._listen_port is None:
            return None
        return (self._listen_host, self._listen_port)

    async def stop(self) -> None:
        """Close the server, every peer link and every learned route."""
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._peers.values()):
            await link.close()
        self._peers.clear()
        # ``Server.close`` only stops *listening*; accepted connections
        # must be hung up explicitly or remote peers never notice.
        for batcher in list(self._route_batchers.values()):
            batcher.close()
        self._route_batchers.clear()
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        for writer in list(self._routes.values()):
            writer.close()
        self._routes.clear()

    def drop_connections(self) -> None:
        """Sever every live connection without stopping the transport.

        The nemesis's "connection reset" fault: peer links lose their
        in-flight batch as a unit and reconnect with backoff; inbound
        connections (and the learned return routes riding them) are hung
        up, so remote clients re-establish on their next send.  Nothing
        is duplicated or re-queued — at-most-once is preserved.
        """
        self.connection_resets += 1
        for link in self._peers.values():
            link.reset()
        for writer in list(self._inbound):
            writer.close()

    # -- Transport surface ---------------------------------------------------

    def register(self, node_id: NodeId) -> Mailbox:
        if node_id in self._mailboxes:
            raise SimulationError(f"{node_id} already registered")
        mailbox = Mailbox(self._kernel, node_id)
        self._mailboxes[node_id] = mailbox
        return mailbox

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        payload: Any,
        size: int = 256,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        if self._stopped:
            self.messages_dropped += 1
            return
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            size=size,
            sent_at=self._kernel.tick(),
            trace=trace,
        )
        local = self._mailboxes.get(recipient)
        if local is not None:
            # Same-process delivery skips the wire but still round-trips
            # through the kernel so ordering relative to scheduled work
            # matches a real hop.
            self._kernel.post(self._deliver, envelope)
            return
        frame = encode_frame(envelope)
        address = self.directory.get(recipient)
        if address is not None:
            link = self._peers.get(address)
            if link is None:
                link = _PeerLink(self, address)
                self._peers[address] = link
            link.enqueue(frame)
            return
        writer = self._routes.get(recipient)
        if writer is not None and not writer.is_closing():
            batcher = self._route_batchers.get(writer)
            if batcher is None:
                batcher = _RouteBatcher(self, writer)
                self._route_batchers[writer] = batcher
            batcher.enqueue(frame)
            return
        # No route: the peer never contacted us and is not in the
        # directory.  Fail-stop semantics — drop.
        self.messages_dropped += 1

    # -- inbound path --------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._inbound.add(writer)
        try:
            await self._read_frames(reader, writer)
        finally:
            self._inbound.discard(writer)

    async def _read_frames(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Bulk parse loop: read a large chunk, then decode every complete
        # frame accumulated so far — one wakeup handles a whole coalesced
        # batch from the peer.  Bodies are handed to the codec as
        # ``memoryview`` slices (no per-frame copy); the codec
        # materializes every decoded leaf, so consuming the buffer
        # afterwards is safe.
        buf = bytearray()
        try:
            while True:
                chunk = await reader.read(self.read_chunk)
                if not chunk:
                    return
                buf += chunk
                buflen = len(buf)
                offset = 0
                while buflen - offset >= LENGTH_PREFIX:
                    header_end = offset + LENGTH_PREFIX
                    length = int.from_bytes(buf[offset:header_end], "big")
                    if length > MAX_FRAME:
                        logger.warning(
                            "dropping connection: %d-byte frame announced",
                            length,
                        )
                        return
                    end = header_end + length
                    if end > buflen:
                        break
                    self.frames_received += 1
                    try:
                        envelope = decode_frame_body(
                            memoryview(buf)[header_end:end]
                        )
                    except CodecError:
                        self.decode_errors += 1
                        logger.warning("undecodable frame", exc_info=True)
                        offset = end
                        continue
                    offset = end
                    # Learn/refresh the return route to the sender;
                    # replies to directory-less nodes travel back over
                    # this stream.
                    if envelope.sender not in self.directory:
                        self._routes[envelope.sender] = writer
                    self._dispatch_inbound(envelope)
                if offset:
                    try:
                        del buf[:offset]
                    except BufferError:
                        # A decode-error traceback can briefly pin a view
                        # of ``buf``; slicing reads (always allowed) and
                        # rebinds instead of resizing in place.
                        buf = buf[offset:]
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Shutdown path: the server (or owning peer link) is closing;
            # ending the loop quietly is the cancellation's whole intent.
            return
        finally:
            batcher = self._route_batchers.pop(writer, None)
            if batcher is not None:
                batcher.close()
            for node_id, route in list(self._routes.items()):
                if route is writer:
                    del self._routes[node_id]
            writer.close()

    def _dispatch_inbound(self, envelope: Envelope) -> None:
        if envelope.recipient in self._mailboxes:
            self._kernel.post(self._deliver, envelope)
        else:
            self.messages_dropped += 1

    def _deliver(self, envelope: Envelope) -> None:
        mailbox = self._mailboxes.get(envelope.recipient)
        if mailbox is None:
            self.messages_dropped += 1
            return
        envelope.delivered_at = self._kernel.now
        self.messages_delivered += 1
        mailbox.deliver(envelope)


__all__ = ["TcpTransport", "Address"]
