"""Live chaos harness: kill -9 / recover cycles under load, then verify.

``python -m repro livechaos`` is the crash-recovery end-to-end gate:

1. boot a WAL-backed localhost cluster (``spec.data_dir`` set, so every
   replica journals to disk and recovers through the I6 quarantine);
2. run a timed workload-A phase at W=4 while a seeded
   :class:`~repro.net.nemesis.LiveNemesis` SIGKILLs and restarts storage
   replicas, and the load generator's own TCP links are reset mid-phase;
3. drive a live W=4 → W=2 reconfiguration and keep loading through more
   kill cycles;
4. run a quiescent read-back sweep over every object and compute the
   *direct* durability verdict: an acknowledged write is lost if any
   read invoked after its acknowledgement returned an older acknowledged
   value (or the initial value) for that object;
5. feed the full cross-phase history to the Wing-Gong linearizability
   checker and scrape every restarted replica for
   ``qopt_replica_recoveries_total`` — a restarted replica must have
   completed at least one quarantined rejoin, i.e. it re-entered read
   quorums only after the I6 epoch sync.

Client operations MAY fail while a replica is down (a W=4 write during
downtime can exhaust its deadline) — that is the fault model working,
not a bug, so transient failures do not gate the run.  What gates it:
lost acknowledged writes, consistency violations, an unverified or
non-linearizable history, replicas that never recovered, failures during
the quiescent read-back, and unclean worker exits.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.types import ObjectId, OpType
from repro.net.cluster import LocalCluster
from repro.net.loadgen import LoadGenerator, LoadgenResult
from repro.net.nemesis import (
    KillCycle,
    LiveNemesis,
    NemesisCycleResult,
    RestartPolicy,
    build_schedule,
)
from repro.net.smoke import _scrape_all
from repro.net.spec import build_spec
from repro.sds.client import OperationRecord
from repro.workloads.base import Operation


@dataclass
class _ReadbackSource:
    """Round-robin read-only sweep over a fixed object set.

    Cycling (rather than sampling) guarantees every object is read at
    least once per ``len(objects)`` issued operations, so a long-enough
    sweep covers the whole keyspace deterministically.
    """

    objects: List[ObjectId]
    _cursor: int = 0

    def next_operation(self, rng: random.Random) -> Operation:
        del rng
        object_id = self.objects[self._cursor % len(self.objects)]
        self._cursor += 1
        return Operation(
            object_id=object_id, op_type=OpType.READ, size=0, value=b""
        )


def count_lost_acked_writes(
    history: List[OperationRecord],
    readback: List[OperationRecord],
) -> Tuple[int, List[str]]:
    """The direct durability check: did any acknowledged write vanish?

    For each object, the *last acknowledged* write is the completed
    write record with the greatest ``completed_at``.  Every read-back
    read was invoked after all write phases drained, so it must return
    that value — or a *maybe-applied* one: a write that timed out at the
    client (``completed_at = inf``) may legitimately land at any later
    point, including after the last acknowledged write.  What it must
    never return is an OLDER acknowledged value or the register's
    initial value: both mean an acknowledged write was dropped.
    """
    acked_at: Dict[ObjectId, Dict[bytes, float]] = {}
    maybe_applied: Dict[ObjectId, set] = {}
    last: Dict[ObjectId, Tuple[float, bytes]] = {}
    for op_record in history:
        if op_record.op_type is not OpType.WRITE:
            continue
        value = op_record.value or b""
        if math.isinf(op_record.completed_at):
            maybe_applied.setdefault(op_record.object_id, set()).add(value)
            continue
        acked_at.setdefault(op_record.object_id, {})[value] = (
            op_record.completed_at
        )
        previous = last.get(op_record.object_id)
        if previous is None or op_record.completed_at > previous[0]:
            last[op_record.object_id] = (op_record.completed_at, value)

    lost = 0
    details: List[str] = []
    for op_record in readback:
        if op_record.op_type is not OpType.READ:
            continue
        if math.isinf(op_record.completed_at):
            continue
        expected = last.get(op_record.object_id)
        if expected is None:
            continue  # object never had an acknowledged write
        observed = op_record.value or b""
        if observed == expected[1]:
            continue
        if observed in maybe_applied.get(op_record.object_id, ()):
            continue  # a timed-out write landed late: legal
        when = acked_at.get(op_record.object_id, {}).get(observed)
        lost += 1
        age = "initial/unknown" if when is None else f"acked at {when:.3f}"
        details.append(
            f"{op_record.object_id}: read returned {age} value instead of "
            f"last acknowledged write (acked at {expected[0]:.3f})"
        )
    return lost, details


def _metric_value(scrape: str, family: str) -> Optional[float]:
    """Last sample of a family in a Prometheus text scrape, if present."""
    value: Optional[float] = None
    for line in scrape.splitlines():
        if line.startswith(family) and not line.startswith("#"):
            try:
                value = float(line.rsplit(None, 1)[1])
            except (IndexError, ValueError):
                continue
    return value


@dataclass
class ChaosReport:
    """Everything the chaos run measured and verified."""

    result: LoadgenResult
    cycles: List[NemesisCycleResult]
    schedule: List[KillCycle]
    reconfig_seconds: Optional[float]
    lost_acked_writes: int
    lost_details: List[str]
    transport_resets: int
    exit_codes: Dict[str, int]
    recoveries: Dict[str, float] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def recovery_stats(self) -> dict:
        observed = [
            c.recovery_seconds
            for c in self.cycles
            if c.recovery_seconds is not None
        ]
        return {
            "cycles": len(self.cycles),
            "recovered": len(observed),
            "max_recovery_s": (
                round(max(observed), 3) if observed else None
            ),
            "mean_recovery_s": (
                round(sum(observed) / len(observed), 3) if observed else None
            ),
            "quarantine_observed": sum(
                1 for c in self.cycles if c.quarantine_observed
            ),
        }

    def ops_dip_ratio(self) -> Optional[float]:
        """min/max ops/sec across the chaos load phases (1.0 = no dip)."""
        rates = [
            phase.ops_per_sec
            for phase in self.result.phases
            if phase.name != "readback" and phase.ops_per_sec > 0
        ]
        if len(rates) < 2:
            return None
        return round(min(rates) / max(rates), 3)

    def as_dict(self) -> dict:
        payload = self.result.as_dict()
        # The chaos gate has its own verdict: transient client failures
        # during downtime are tolerated, so override loadgen's ok/problems
        # with ours instead of presenting two conflicting verdicts.
        payload.update(
            {
                "kill_cycles": [cycle.as_dict() for cycle in self.cycles],
                "recovery": self.recovery_stats(),
                "recoveries_metric": {
                    name: value
                    for name, value in sorted(self.recoveries.items())
                },
                "lost_acked_writes": self.lost_acked_writes,
                "lost_details": self.lost_details,
                "transport_resets": self.transport_resets,
                "ops_dip_ratio": self.ops_dip_ratio(),
                "reconfig_seconds": (
                    None
                    if self.reconfig_seconds is None
                    else round(self.reconfig_seconds, 3)
                ),
                "ok": self.ok,
                "problems": self.problems,
            }
        )
        return payload

    def render(self) -> str:
        lines = ["live-chaos:"]
        for phase in self.result.phases:
            lines.append(
                f"  phase {phase.name}: {phase.operations} ops "
                f"({phase.ops_per_sec:.0f}/s), {phase.failed} failed, "
                f"{phase.retries} retries"
            )
        for cycle in self.cycles:
            recovery = (
                f"recovered in {cycle.recovery_seconds:.2f}s"
                if cycle.recovery_seconds is not None
                else "NEVER RECOVERED"
            )
            lines.append(
                f"  kill {cycle.victim}: {cycle.restart_attempts} restart "
                f"attempt(s), {recovery}"
                + (" (quarantine observed)" if cycle.quarantine_observed
                   else "")
            )
        lines.append(
            f"  history: {self.result.history_records} records, "
            f"{self.result.consistency_violations} violations, "
            f"linearizable={self.result.linearizable}"
        )
        lines.append(
            f"  lost acknowledged writes: {self.lost_acked_writes}"
        )
        dip = self.ops_dip_ratio()
        if dip is not None:
            lines.append(f"  ops/s dip ratio (min/max): {dip}")
        if self.problems:
            lines.append("  PROBLEMS:")
            lines.extend(f"    - {problem}" for problem in self.problems)
        else:
            lines.append("  all checks passed")
        return "\n".join(lines)


async def _reset_links_midphase(
    generator: LoadGenerator, after: float
) -> int:
    """Sever the load generator's live TCP links partway into a phase.

    Exercises the client-side reconnect path under load: in-flight
    frames are lost as a unit (at-most-once) and routes re-establish
    with backoff while operations retry.
    """
    await asyncio.sleep(after)
    transport = generator.transport
    if transport is None:
        return 0
    transport.drop_connections()
    return 1


async def run_chaos(
    replicas: int = 5,
    proxies: int = 1,
    cycles: int = 3,
    duration: float = 6.0,
    clients: int = 4,
    workload: str = "a",
    objects: int = 32,
    seed: int = 1,
    pipeline_depth: int = 4,
    workdir: Optional[str] = None,
) -> ChaosReport:
    """Run the full kill/recover sequence; never leaves processes behind."""
    workdir = workdir or tempfile.mkdtemp(prefix="qopt-chaos-")
    spec = build_spec(
        replicas=replicas,
        proxies=proxies,
        write_quorum=4,
        seed=seed,
        data_dir=os.path.join(workdir, "data"),
    )
    cluster = LocalCluster(spec, workdir=workdir)
    schedule = build_schedule(cluster.spec, seed=seed, cycles=cycles)
    # Front-load the churn: ceil(cycles/2) under W=4, the rest under W=2,
    # so both quorum geometries see kills.
    split = cycles - cycles // 2
    policy = RestartPolicy()
    problems: List[str] = []
    transport_resets = 0
    nemesis = LiveNemesis(cluster, [], policy=policy)
    try:
        cluster.start()
        await cluster.wait_healthy()
        generator = LoadGenerator(
            cluster.spec,
            clients=clients,
            workload=workload,
            objects=objects,
            seed=seed,
            pipeline_depth=pipeline_depth,
        )
        await generator.start()
        try:
            reconfig_seconds: Optional[float] = None
            for position, (write_quorum, batch) in enumerate(
                [(4, schedule[:split]), (2, schedule[split:])]
            ):
                if position > 0:
                    reconfig_seconds = await generator.reconfigure(
                        write_quorum
                    )
                nemesis.schedule = list(batch)
                nemesis_task = asyncio.ensure_future(nemesis.run())
                reset_task = asyncio.ensure_future(
                    _reset_links_midphase(generator, after=duration / 2)
                )
                try:
                    await generator.run_phase(
                        name=f"W={write_quorum}",
                        duration=duration,
                        write_quorum=write_quorum,
                    )
                finally:
                    # Let any cycle still mid-kill finish its restart in
                    # quiescence before reconfiguring or reading back.
                    await nemesis_task
                    transport_resets += await reset_task
            # Quiescent read-back sweep: every object, read-only, all
            # replicas alive (the durability verdict needs a full pass).
            before = len(generator.records)
            sweep = _ReadbackSource(objects=generator.workload.object_ids())
            readback_phase = await generator.run_phase(
                name="readback",
                duration=max(2.0, objects / 25.0),
                write_quorum=2,
                source=sweep,
            )
            readback = generator.records[before:]
            scrapes = await _scrape_all(cluster.spec)
            result = generator.result(reconfig_seconds)
        finally:
            await generator.stop()
        dead = [worker.name for worker in cluster.dead_workers()]
        restarted = {
            worker.name: worker.restarts
            for worker in cluster.restarted_workers()
        }
        exit_codes = await cluster.shutdown()
    finally:
        cluster.kill()

    # -- verdicts ------------------------------------------------------------
    lost, lost_details = count_lost_acked_writes(result.records, readback)
    if lost:
        problems.append(f"{lost} acknowledged writes lost")
    problems.extend(nemesis.problems)
    if len(nemesis.cycles) < cycles:
        problems.append(
            f"only {len(nemesis.cycles)} of {cycles} kill cycles ran"
        )
    if result.consistency_violations:
        problems.append(
            f"{result.consistency_violations} consistency violations"
        )
    if result.linearizable is None:
        problems.append(
            "linearizability unverified: search budget exceeded"
        )
    elif not result.linearizable:
        problems.append("history is not linearizable")
    for phase in result.phases:
        if phase.operations == 0:
            problems.append(f"phase {phase.name} completed zero operations")
    if readback_phase.failed:
        problems.append(
            f"{readback_phase.failed} read-back operations failed with "
            "every replica alive"
        )
    recoveries: Dict[str, float] = {}
    for name in sorted(restarted):
        value = _metric_value(
            scrapes.get(name, ""), "qopt_replica_recoveries_total"
        )
        if value is not None:
            recoveries[name] = value
        if value is None or value < 1.0:
            problems.append(
                f"{name}: restarted {restarted[name]}x but "
                "qopt_replica_recoveries_total < 1 — rejoined read "
                "quorums without completing the I6 epoch sync"
            )
    if dead:
        problems.append(f"workers dead at end of run: {dead}")
    for name, code in exit_codes.items():
        if code != 0:
            problems.append(f"{name} exited with code {code}")

    return ChaosReport(
        result=result,
        cycles=list(nemesis.cycles),
        schedule=schedule,
        reconfig_seconds=result.reconfig_seconds,
        lost_acked_writes=lost,
        lost_details=lost_details,
        transport_resets=transport_resets,
        exit_codes=exit_codes,
        recoveries=recoveries,
        problems=problems,
    )


def write_chaos_report(report: ChaosReport, path: str, extra: dict) -> None:
    """Write ``BENCH_net_chaos.json``."""
    payload = dict(extra)
    payload.update(report.as_dict())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


__all__ = [
    "ChaosReport",
    "count_lost_acked_writes",
    "run_chaos",
    "write_chaos_report",
]
