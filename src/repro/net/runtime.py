"""One live-runtime process: kernel + transport + protocol node + HTTP.

:class:`NodeRuntime` assembles what :class:`~repro.sds.cluster.SwiftCluster`
assembles for the simulator, but on the live stack: a
:class:`~repro.net.kernel.RealtimeKernel`, a
:class:`~repro.net.tcp.TcpTransport` and exactly one protocol node —
a storage replica, a proxy, or the reconfiguration manager — plus the
process's observability bundle and its HTTP endpoint.

RNG seeding reuses the cluster's substream discipline
(``substream(seed, kind, index)``), so a node's stochastic decisions
(anti-entropy scan offsets, backoff jitter) are reproducible given the
spec's seed even though event *timing* is now the hardware's.
"""

from __future__ import annotations

import asyncio
import os
from typing import Dict, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.common.rng import substream
from repro.common.types import NodeId, NodeKind, QuorumConfig
from repro.net.httpd import Handler, MiniHttpServer
from repro.net.kernel import RealtimeKernel
from repro.net.spec import ClusterSpec, NodeAddress, ShardView
from repro.net.tcp import TcpTransport
from repro.obs.context import Observability
from repro.obs.exporters import to_prometheus_text
from repro.reconfig.manager import ReconfigurationManager
from repro.sds.persistence import WalBackend
from repro.sds.proxy import ProxyNode
from repro.sds.storage import StorageNode


class NeverSuspect:
    """The live runtime's trivially optimistic failure detector.

    The reconfiguration protocol is indulgent: a detector that never
    suspects can only delay epoch changes (the RM keeps retransmitting to
    an unresponsive proxy), never violate safety.  Wiring a real
    heartbeat detector through :class:`~repro.sim.failure.SuspicionSource`
    is the natural next step and needs no protocol change.
    """

    def suspect(self, node_id: NodeId) -> bool:
        del node_id
        return False


#: The node classes a runtime can host.
LiveNode = Union[StorageNode, ProxyNode, ReconfigurationManager]


class NodeRuntime:
    """Everything one ``python -m repro serve`` process runs."""

    def __init__(self, spec: ClusterSpec, node_name: str) -> None:
        self.spec = spec
        self.address: NodeAddress = spec.address_of(node_name)
        self.node_id = self.address.node_id
        #: The shard this process belongs to.  For pre-shard specs this
        #: is the implicit whole-fleet shard, so nothing changes.
        self.shard: ShardView = spec.shard_for(node_name)
        self.kernel: RealtimeKernel = RealtimeKernel()
        self.obs = Observability(
            tracing=False, clock=lambda: self.kernel.now
        )
        self.transport = TcpTransport(
            self.kernel,
            spec.directory(),
            listen_host=self.address.host,
            listen_port=self.address.port,
            rng=substream(spec.seed, "net", str(self.node_id)),
        )
        #: Durable storage backend, if this process hosts a WAL-backed
        #: replica (``spec.data_dir`` set); closed on shutdown.
        self.backend: Optional[WalBackend] = None
        self.node: LiveNode = self._build_node()
        self._shutdown = asyncio.Event()
        self.http = MiniHttpServer(
            self.address.host,
            self.address.http_port,
            routes=self._routes(),
        )

    # -- node construction ---------------------------------------------------

    def _build_node(self) -> LiveNode:
        spec = self.spec
        shard = self.shard
        kind = self.node_id.kind
        # Every protocol object sees only its shard's topology: ring,
        # membership and initial plan all come from the shard view, so a
        # shard is a complete, independent Q-OPT instance.
        plan = shard.initial_plan()
        if kind == NodeKind.STORAGE.value:
            if spec.data_dir:
                self.backend = WalBackend(
                    os.path.join(spec.data_dir, self.address.name)
                )
            return StorageNode(
                self.kernel,
                self.transport,
                self.node_id,
                config=spec.storage,
                initial_plan=plan,
                rng=substream(spec.seed, "storage", self.node_id.index),
                ring=shard.ring(),
                obs=self.obs,
                backend=self.backend,
            )
        if kind == NodeKind.PROXY.value:
            return ProxyNode(
                self.kernel,
                self.transport,
                self.node_id,
                ring=shard.ring(),
                config=spec.proxy,
                initial_plan=plan,
                rng=substream(spec.seed, "proxy", self.node_id.index),
                obs=self.obs,
            )
        if kind == NodeKind.RECONFIG_MANAGER.value:
            return ReconfigurationManager(
                self.kernel,
                self.transport,
                proxies=shard.proxy_ids(),
                storage_nodes=shard.storage_ids(),
                detector=NeverSuspect(),
                initial_plan=plan,
                replication_degree=shard.replication_degree,
                node_id=self.node_id,
                obs=self.obs,
            )
        raise ConfigurationError(f"cannot serve node kind {kind!r}")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self.transport.start()
        await self.http.start()
        self.node.start()

    async def run_until_shutdown(self) -> None:
        await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self.node.crash()  # fail-stop: kill the receive loop and children
        await self.http.stop()
        await self.transport.stop()
        if self.backend is not None:
            self.backend.close()  # final fsync of batched WAL appends

    def request_shutdown(self) -> None:
        self._shutdown.set()

    # -- HTTP ----------------------------------------------------------------

    def _routes(self) -> Dict[str, Handler]:
        routes: Dict[str, Handler] = {
            "/metrics": self._handle_metrics,
            "/healthz": self._handle_healthz,
            "/shutdown": self._handle_shutdown,
        }
        if isinstance(self.node, ReconfigurationManager):
            routes["/reconfig"] = self._handle_reconfig
        if isinstance(self.node, ProxyNode):
            routes["/leases"] = self._handle_leases
        return routes

    async def _handle_metrics(
        self, query: Dict[str, str]
    ) -> Tuple[int, str, str]:
        del query
        self._export_runtime_gauges()
        return 200, "text/plain; version=0.0.4", to_prometheus_text(
            self.obs.registry
        )

    def _export_runtime_gauges(self) -> None:
        registry = self.obs.registry
        node = str(self.node_id)
        shard = self.shard.name
        transport = self.transport
        registry.gauge(
            "qopt_transport_messages_total",
            help="transport delivery counters",
            shard=shard, node=node, direction="sent",
        ).set(float(transport.messages_sent))
        registry.gauge(
            "qopt_transport_messages_total", shard=shard, node=node, direction="delivered"
        ).set(float(transport.messages_delivered))
        registry.gauge(
            "qopt_transport_messages_total", shard=shard, node=node, direction="dropped"
        ).set(float(transport.messages_dropped))
        registry.gauge(
            "qopt_transport_bytes_sent", help="payload bytes sent", shard=shard, node=node
        ).set(float(transport.bytes_sent))
        registry.gauge(
            "qopt_kernel_events_total",
            help="kernel callbacks dispatched", shard=shard, node=node,
        ).set(float(self.kernel.events_processed))
        registry.gauge(
            "qopt_kernel_crashes_total",
            help="unhandled process crashes", shard=shard, node=node,
        ).set(float(len(self.kernel.crashes)))
        node_obj = self.node
        if isinstance(node_obj, ProxyNode):
            registry.gauge(
                "qopt_lease_read_hits_total",
                help="reads served on the one-replica lease path",
                shard=shard, node=node,
            ).set(float(node_obj.lease_read_hits))
            registry.gauge(
                "qopt_lease_read_misses_total",
                help="lease fast-path attempts that fell back to quorum",
                shard=shard, node=node,
            ).set(float(node_obj.lease_read_misses))
            registry.gauge(
                "qopt_leases_acquired_total",
                help="lease grants installed", shard=shard, node=node,
            ).set(float(node_obj.leases_acquired))
            registry.gauge(
                "qopt_leases_held",
                help="objects currently leased by this proxy",
                shard=shard, node=node,
            ).set(float(node_obj.leases_held()))
        if isinstance(node_obj, StorageNode):
            registry.gauge(
                "qopt_leases_granted_total",
                help="lease grants issued as primary", shard=shard, node=node,
            ).set(float(node_obj.leases_granted))
            registry.gauge(
                "qopt_leases_broken_total",
                help="grants invalidated by writes or epoch change",
                shard=shard, node=node,
            ).set(float(node_obj.leases_broken))
            registry.gauge(
                "qopt_lease_reads_served_total",
                help="lease reads served as primary", shard=shard, node=node,
            ).set(float(node_obj.lease_reads_served))
            registry.gauge(
                "qopt_lease_nacks_total",
                help="lease requests/reads refused", shard=shard, node=node,
            ).set(float(node_obj.lease_nacks_sent))
            registry.gauge(
                "qopt_replica_quarantined",
                help="1 while read-excluded pending I6 catch-up", shard=shard, node=node,
            ).set(1.0 if node_obj.quarantined else 0.0)
            registry.gauge(
                "qopt_replica_recoveries_total",
                help="quarantined rejoins completed", shard=shard, node=node,
            ).set(float(node_obj.recoveries_completed))
            registry.gauge(
                "qopt_replica_reads_declined",
                help="reads refused while quarantined", shard=shard, node=node,
            ).set(float(node_obj.reads_declined))
        backend = self.backend
        if backend is not None:
            registry.gauge(
                "qopt_wal_records_total",
                help="WAL records appended since boot", shard=shard, node=node,
            ).set(float(backend.records_appended))
            registry.gauge(
                "qopt_wal_fsyncs_total",
                help="batched WAL fsyncs", shard=shard, node=node,
            ).set(float(backend.fsyncs))
            registry.gauge(
                "qopt_wal_snapshots_total",
                help="snapshot+truncate cycles", shard=shard, node=node,
            ).set(float(backend.snapshots_taken))
            registry.gauge(
                "qopt_wal_records_replayed",
                help="records replayed at last boot", shard=shard, node=node,
            ).set(float(backend.records_replayed))

    async def _handle_healthz(
        self, query: Dict[str, str]
    ) -> Tuple[int, str, str]:
        del query
        node = self.node
        shard = self.shard.name
        if isinstance(node, StorageNode):
            # The quarantine flag is what the nemesis (and operators)
            # poll to see a restarted replica finish its I6 catch-up.
            return 200, "text/plain", (
                f"ok {self.node_id} shard={shard}"
                f" quarantined={str(node.quarantined).lower()}"
                f" epoch={node.epoch_no} cfg={node.cfg_no}\n"
            )
        if isinstance(node, (ProxyNode, ReconfigurationManager)):
            # The shard router polls this line: an epoch bump here is
            # the routing-table refresh signal for this node's shard.
            return 200, "text/plain", (
                f"ok {self.node_id} shard={shard}"
                f" epoch={node.epoch_no} cfg={node.cfg_no}\n"
            )
        return 200, "text/plain", f"ok {self.node_id} shard={shard}\n"

    async def _handle_shutdown(
        self, query: Dict[str, str]
    ) -> Tuple[int, str, str]:
        del query
        self.request_shutdown()
        return 200, "text/plain", "shutting down\n"

    async def _handle_leases(
        self, query: Dict[str, str]
    ) -> Tuple[int, str, str]:
        proxy = self.node
        assert isinstance(proxy, ProxyNode)
        raw = query.get("enable")
        if raw not in ("0", "1"):
            return 400, "text/plain", "need ?enable=0|1\n"
        proxy.set_lease_reads(raw == "1")
        return 200, "text/plain", (
            f"lease reads {'enabled' if raw == '1' else 'disabled'} "
            f"on {self.node_id}\n"
        )

    async def _handle_reconfig(
        self, query: Dict[str, str]
    ) -> Tuple[int, str, str]:
        manager = self.node
        assert isinstance(manager, ReconfigurationManager)
        raw = query.get("write")
        if raw is None or not raw.isdigit():
            return 400, "text/plain", "need ?write=<W>\n"
        try:
            quorum = QuorumConfig.from_write(
                int(raw), self.shard.replication_degree
            )
        except ConfigurationError as exc:
            return 400, "text/plain", f"{exc}\n"
        process = manager.change_global(quorum)
        await self.kernel.wrap_future(process.result)
        return 200, "text/plain", (
            f"installed {quorum} as cfg_no={manager.cfg_no} "
            f"epoch={manager.epoch_no}\n"
        )


__all__ = ["NodeRuntime", "NeverSuspect"]
