"""Local cluster orchestration: N ``serve`` processes on one machine.

:class:`LocalCluster` is the process-level analogue of the simulator's
:class:`~repro.sds.cluster.SwiftCluster`: it allocates real ports,
rewrites the :class:`~repro.net.spec.ClusterSpec`, writes it to disk and
spawns one ``python -m repro serve`` subprocess per protocol node.  Each
node is a genuinely separate OS process talking TCP — there is no shared
memory shortcut — so the topology exercises the same code paths a
multi-host deployment would, minus the physical network.

Shutdown is graceful-then-forceful: ``GET /shutdown`` on every node,
bounded wait, then ``terminate()``/``kill()`` for stragglers.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.net.httpd import http_get
from repro.net.spec import ClusterSpec, NodeAddress


def allocate_ports(spec: ClusterSpec) -> ClusterSpec:
    """Replace every port 0 in the spec with a free ephemeral port.

    All listening sockets are bound simultaneously before any is closed,
    so the kernel cannot hand the same port out twice within one call.
    (The usual bind-then-close race against *other* processes remains —
    acceptable for a local dev/CI cluster.)
    """
    held: List[socket.socket] = []

    def claim(host: str) -> int:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind((host, 0))
        held.append(sock)
        return int(sock.getsockname()[1])

    def fill(address: NodeAddress) -> NodeAddress:
        port = address.port or claim(address.host)
        http_port = address.http_port or claim(address.host)
        return replace(address, port=port, http_port=http_port)

    try:
        return replace(
            spec,
            replicas=[fill(a) for a in spec.replicas],
            proxies=[fill(a) for a in spec.proxies],
            manager=fill(spec.manager),
            extra_managers=[fill(a) for a in spec.extra_managers],
        )
    finally:
        for sock in held:
            sock.close()


#: ``(rss_bytes, cpu_seconds)`` keys of one worker's resource snapshot.
def proc_stats(pid: int) -> Optional[Dict[str, float]]:
    """Resident set size and CPU time of one process, from ``/proc``.

    Returns ``None`` when the process is gone or ``/proc`` is not
    available (non-Linux).  Reading ``/proc/<pid>/stat`` directly keeps
    this dependency-free: field 24 is RSS in pages, fields 14/15 are
    user/system jiffies.
    """
    try:
        with open(f"/proc/{pid}/stat", "r", encoding="ascii") as handle:
            raw = handle.read()
    except OSError:
        return None
    # The comm field is parenthesised and may contain spaces; split
    # after its closing paren so the numeric fields index stably.
    _, _, rest = raw.rpartition(") ")
    fields = rest.split()
    if len(fields) < 22:
        return None
    try:
        ticks = float(os.sysconf("SC_CLK_TCK"))
        page = float(os.sysconf("SC_PAGE_SIZE"))
        utime, stime = float(fields[11]), float(fields[12])
        rss_pages = float(fields[21])
    except (ValueError, OSError):
        return None
    return {
        "rss_bytes": rss_pages * page,
        "cpu_seconds": (utime + stime) / ticks,
    }


@dataclass
class NodeProcess:
    """One spawned ``serve`` worker (survives restarts of its process)."""

    address: NodeAddress
    process: subprocess.Popen
    #: Times the worker has been (re)spawned after its first start.
    restarts: int = 0
    #: Exit codes of previous incarnations, oldest first.
    past_exits: List[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.address.name

    @property
    def returncode(self) -> Optional[int]:
        return self.process.poll()

    def resources(self) -> Optional[Dict[str, float]]:
        """This worker's current RSS/CPU snapshot (``None`` once dead)."""
        if self.returncode is not None:
            return None
        return proc_stats(self.process.pid)


class LocalCluster:
    """Spawn and manage one live cluster of local worker processes."""

    def __init__(
        self,
        spec: ClusterSpec,
        workdir: Optional[str] = None,
        python: str = sys.executable,
    ) -> None:
        self.spec = allocate_ports(spec.validate()).validate()
        self._python = python
        self._workdir = workdir or tempfile.mkdtemp(prefix="qopt-cluster-")
        self.spec_path = os.path.join(self._workdir, "cluster.json")
        self.workers: List[NodeProcess] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with open(self.spec_path, "w", encoding="utf-8") as handle:
            handle.write(self.spec.to_json() + "\n")
        for address in self.spec.all_addresses():
            self.workers.append(
                NodeProcess(address, self._spawn(address.name))
            )

    def _spawn(self, node_name: str) -> subprocess.Popen:
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        return subprocess.Popen(
            [
                self._python,
                "-m",
                "repro",
                "serve",
                "--spec",
                self.spec_path,
                "--node",
                node_name,
            ],
            env=env,
        )

    # -- supervision ---------------------------------------------------------

    def worker(self, name: str) -> NodeProcess:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise KeyError(f"no worker named {name!r}")

    def kill_worker(self, name: str) -> NodeProcess:
        """Fail-stop one worker with SIGKILL (no graceful shutdown)."""
        worker = self.worker(name)
        if worker.returncode is None:
            worker.process.send_signal(signal.SIGKILL)
            worker.process.wait()
        return worker

    def restart_worker(self, name: str) -> NodeProcess:
        """Respawn a dead worker's process (same spec, same ports).

        The worker must already have exited — restarting a live process
        would orphan it.  The restarted replica recovers from its WAL
        directory (when the spec has ``data_dir``) and rejoins
        quarantined.
        """
        worker = self.worker(name)
        code = worker.returncode
        if code is None:
            raise RuntimeError(f"worker {name} is still running")
        worker.past_exits.append(code)
        worker.process = self._spawn(name)
        worker.restarts += 1
        return worker

    async def wait_healthy(self, deadline: float = 20.0) -> None:
        # Snapshot: start() may append more workers while we await.
        for worker in list(self.workers):
            await self.wait_worker_healthy(worker, deadline=deadline)

    async def wait_worker_healthy(
        self, worker: NodeProcess, deadline: float = 20.0
    ) -> str:
        """Poll one worker's ``/healthz``; fail fast if it already died.

        Returns the healthz body.  A worker that exits while we poll
        raises immediately instead of burning the whole deadline — a
        crashed-on-boot replica (bad spec, corrupt WAL directory) should
        fail the run in milliseconds, not after a timeout.
        """
        loop = asyncio.get_running_loop()
        give_up = loop.time() + deadline
        while True:
            code = worker.returncode
            if code is not None:
                raise RuntimeError(
                    f"worker {worker.name} exited with code {code} "
                    "before becoming healthy"
                )
            try:
                status, body = await http_get(
                    worker.address.host,
                    worker.address.http_port,
                    "/healthz",
                    timeout=2.0,
                )
                if status == 200:
                    return body
            except (OSError, asyncio.TimeoutError, ValueError, IndexError):
                pass
            if loop.time() >= give_up:
                raise TimeoutError(
                    f"worker {worker.name} not healthy in {deadline}s"
                )
            await asyncio.sleep(0.1)

    # -- shutdown ------------------------------------------------------------

    async def shutdown(self, grace: float = 10.0) -> Dict[str, int]:
        """Stop every worker; returns ``{node name: exit code}``."""
        for worker in list(self.workers):
            if worker.returncode is not None:
                continue
            try:
                await http_get(
                    worker.address.host,
                    worker.address.http_port,
                    "/shutdown",
                    timeout=3.0,
                )
            except (OSError, TimeoutError, ValueError, IndexError):
                pass  # fall through to terminate below
        codes: Dict[str, int] = {}
        for worker in self.workers:
            try:
                codes[worker.name] = worker.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                worker.process.terminate()
                try:
                    codes[worker.name] = worker.process.wait(timeout=3.0)
                except subprocess.TimeoutExpired:
                    worker.process.kill()
                    codes[worker.name] = worker.process.wait()
        return codes

    def kill(self) -> None:
        """Last-resort synchronous cleanup (signal handlers, atexit)."""
        for worker in self.workers:
            if worker.returncode is None:
                worker.process.kill()

    # -- status --------------------------------------------------------------

    def dead_workers(self) -> List[NodeProcess]:
        return [w for w in self.workers if w.returncode is not None]

    def restarted_workers(self) -> List[NodeProcess]:
        return [w for w in self.workers if w.restarts > 0]

    async def health(self) -> Dict[str, dict]:
        """The cluster ``/healthz`` aggregate: one entry per worker.

        Combines process-level liveness (poll) with each live worker's
        own ``/healthz`` body, so dead workers show up as
        ``alive=False`` instead of a scrape timeout.
        """
        report: Dict[str, dict] = {}
        for worker in list(self.workers):
            entry: dict = {
                "alive": worker.returncode is None,
                "returncode": worker.returncode,
                "restarts": worker.restarts,
                "healthz": None,
                # Attributes throughput to cores: fleet runs read these
                # to see which shard's workers are burning CPU.
                "resources": worker.resources(),
            }
            if entry["alive"]:
                try:
                    status, body = await http_get(
                        worker.address.host,
                        worker.address.http_port,
                        "/healthz",
                        timeout=2.0,
                    )
                    if status == 200:
                        entry["healthz"] = body.strip()
                except (
                    OSError, asyncio.TimeoutError, ValueError, IndexError
                ):
                    pass
            report[worker.name] = entry
        return report

    def describe(self) -> str:
        lines = [f"cluster spec: {self.spec_path}"]
        for worker in self.workers:
            address = worker.address
            code = worker.returncode
            status = f"pid {worker.process.pid}" if code is None else (
                f"DEAD exit={code}"
            )
            if worker.restarts:
                status += f" restarts={worker.restarts}"
            resources = worker.resources()
            if resources is not None:
                status += (
                    f"  rss={resources['rss_bytes'] / 1e6:.1f}MB"
                    f" cpu={resources['cpu_seconds']:.2f}s"
                )
            lines.append(
                f"  {address.name:12s} transport {address.host}:{address.port}"
                f"  http {address.host}:{address.http_port}"
                f"  {status}"
            )
        return "\n".join(lines)


__all__ = ["LocalCluster", "NodeProcess", "allocate_ports", "proc_stats"]
