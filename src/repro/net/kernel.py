"""A wall-clock kernel that runs the simulator's processes over asyncio.

The protocol code — proxies, storage nodes, clients, the reconfiguration
manager — is written as generators that talk to a tiny kernel surface:
``now``, ``schedule()``, ``future()``, ``sleep()``, ``timeout()`` and
``spawn()``.  :class:`RealtimeKernel` implements exactly that surface on
top of the asyncio event loop, so the *unmodified* generators execute in
real time: ``schedule(delay, ...)`` becomes ``loop.call_later`` and
``now`` reads the wall clock.

``now`` is ``time.time()`` (not ``loop.time()``): version stamps are
ordered ``(timestamp, proxy)`` under the paper's globally-synchronized
clock assumption, and the wall clock is the one clock all processes on a
host (or NTP-synced hosts) share.  A per-kernel monotonic clamp protects
stamp order from small backwards steps of the wall clock.

Everything layered on the sim kernel — :class:`~repro.sim.network.Mailbox`,
:class:`~repro.sim.primitives.Resource`, ``any_of`` — only uses this
surface, so it all runs unchanged too.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError
from repro.sim.kernel import Future, Process, ProcessGen, Simulator

logger = logging.getLogger(__name__)


class RealtimeKernel(Simulator):
    """Drop-in :class:`~repro.sim.kernel.Simulator` backed by asyncio.

    The kernel does not own the event loop: create it inside a running
    loop (or pass one explicitly) and drive the program with ordinary
    ``await``-based code; protocol generators spawned on the kernel run
    interleaved with coroutines on the same loop.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        super().__init__()
        if loop is not None:
            self._loop = loop
        else:
            # Constructed from inside `asyncio.run(...)`: attach to the
            # running loop.  (Outside one, pass the loop explicitly.)
            self._loop = asyncio.get_running_loop()
        #: Unhandled crashes of fire-and-forget processes, for inspection
        #: (the sim kernel raises out of ``step()``; a live server must
        #: keep running, so crashes are logged and collected instead).
        self.crashes: list[tuple[str, BaseException]] = []
        self.now = time.time()

    # -- clock ---------------------------------------------------------------

    def tick(self) -> float:
        """Advance ``now`` to the wall clock and return it.

        Called at every event dispatch; external coroutines that read
        ``kernel.now`` directly may call it first for a fresh value.  The
        clamp keeps ``now`` monotonic even if the wall clock steps back.

        The lease grant table (invariant I7) leans on this monotonicity:
        ``StorageNode`` compares grant expiries against ``now``, so a
        backwards wall-clock step can never resurrect an expired grant —
        it only stretches live ones, which is a liveness (not safety)
        effect because the primary re-validates every lease read on this
        same clock.
        """
        self.now = max(self.now, time.time())
        return self.now

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` wall-clock seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        if delay == 0:
            self._loop.call_soon(self._dispatch, callback, args)
        else:
            self._loop.call_later(delay, self._dispatch, callback, args)

    def _schedule_now(self, callback: Callable[..., None], *args: Any) -> None:
        self._loop.call_soon(self._dispatch, callback, args)

    def post(self, callback: Callable[..., None], *args: Any) -> None:
        """Hand work from asyncio code into the kernel.

        External entry points (socket readers, HTTP handlers) must not
        call into protocol state directly — routing through :meth:`post`
        refreshes ``now`` first, so every protocol step observes a
        current clock, exactly as events do in the simulator.
        """
        self._schedule_now(callback, *args)

    def _dispatch(self, callback: Callable[..., None], args: tuple) -> None:
        # Hottest function on the live runtime: every timer, message
        # delivery and process step funnels through here, so the clock
        # advance is inlined from :meth:`tick` and the crash-list bound
        # is enforced at append time (:meth:`_report_crash`) rather than
        # scanned per event.
        now = time.time()
        if now > self.now:
            self.now = now
        self.events_processed += 1
        callback(*args)

    # -- asyncio bridging ----------------------------------------------------

    def wrap_future(self, future: Future) -> "asyncio.Future[Any]":
        """An asyncio future mirroring a kernel :class:`Future`.

        Lets coroutines ``await`` protocol events (e.g. the result future
        of a reconfiguration process).
        """
        wrapped: "asyncio.Future[Any]" = self._loop.create_future()

        def _done(completed: Future) -> None:
            if wrapped.cancelled():
                return
            exc = completed.exception
            if exc is not None:
                wrapped.set_exception(exc)
            else:
                wrapped.set_result(completed._value)

        future.add_callback(_done)
        return wrapped

    async def run_process_async(self, gen: ProcessGen, name: str = "") -> Any:
        """Spawn a protocol process and await its result."""
        process = self.spawn(gen, name=name)
        return await self.wrap_future(process.result)

    # -- error reporting ------------------------------------------------------

    def _report_crash(self, process: Process, exc: BaseException) -> None:
        logger.error(
            "unhandled exception in process %s", process.name, exc_info=exc
        )
        crashes = self.crashes
        crashes.append((process.name, exc))
        # Keep only a bounded tail so a crash-looping process cannot grow
        # memory without bound on a long-lived server.
        if len(crashes) > 64:
            del crashes[: len(crashes) - 64]

    # -- sim-only entry points -----------------------------------------------

    def step(self) -> bool:
        raise SimulationError(
            "RealtimeKernel is driven by the asyncio loop; step() is "
            "simulation-only"
        )

    def run(self, until: Optional[float] = None) -> None:
        raise SimulationError(
            "RealtimeKernel is driven by the asyncio loop; run() is "
            "simulation-only"
        )

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        raise SimulationError(
            "use `await RealtimeKernel.run_process_async(...)` instead of "
            "run_process()"
        )


__all__ = ["RealtimeKernel"]
