"""The transport seam between protocol code and the message fabric.

Every protocol participant (:class:`~repro.sim.node.Node` and its
subclasses) talks to the outside world through exactly two calls:

* ``register(node_id) -> Mailbox`` — claim an inbox once, at startup;
* ``send(sender, recipient, payload, size=..., trace=...)`` — async,
  fire-and-forget delivery with FIFO order per (sender, recipient) pair.

:class:`Transport` captures that surface as a structural
:class:`~typing.Protocol`, so the simulated
:class:`~repro.sim.network.Network` satisfies it *unchanged* and the live
:class:`~repro.net.tcp.TcpTransport` implements it over real sockets.
The protocol code is oblivious to which one it runs on — that is the
whole point: the live runtime executes the very generators the
determinism suite pins bit-for-bit in simulation.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.common.types import NodeId

if TYPE_CHECKING:
    # Type-only: importing repro.sim.network at runtime would cycle
    # (sim.node imports this module for the seam annotation).
    from repro.sim.network import Mailbox


@runtime_checkable
class Transport(Protocol):
    """What a protocol node needs from the message fabric."""

    def register(self, node_id: NodeId) -> Mailbox:
        """Claim the inbox for ``node_id``; called once per node."""
        ...  # pragma: no cover - protocol definition

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        payload: Any,
        size: int = 256,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Deliver ``payload`` asynchronously; FIFO per directed pair."""
        ...  # pragma: no cover - protocol definition


__all__ = ["Transport"]
