"""CLI entry points for the live runtime.

Forwarded from ``python -m repro`` the same way qlint and bench are:

* ``serve``     — run ONE protocol node (replica, proxy or manager);
* ``cluster``   — spawn a whole local cluster of ``serve`` processes;
* ``loadgen``   — drive a live benchmark, write ``BENCH_net.json``;
* ``livesmoke`` — the CI end-to-end gate (boot, load, reconfigure,
  scrape, verify, shut down);
* ``livechaos`` — the crash-recovery gate (WAL-backed cluster, seeded
  kill -9 cycles under load, durability + linearizability verdicts).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
from typing import List, Optional, Sequence

from repro.net.spec import ClusterSpec, build_spec


def _spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--replicas", type=int, default=5)
    parser.add_argument("--proxies", type=int, default=1)
    parser.add_argument(
        "--write-quorum", type=int, default=3,
        help="initial global write quorum W (R = N - W + 1)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--lease-duration", type=float, default=0.0,
        help=(
            "per-object read lease duration in seconds; > 0 enables "
            "leases cluster-wide: writes require the primary's ack and "
            "proxies may serve reads from it alone (default 0 = off)"
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help=(
            "independent shards; --replicas/--proxies are per shard "
            "and each shard gets its own reconfiguration manager "
            "(default 1 = the classic single-ring cluster)"
        ),
    )


def _load_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--workload", choices=("a", "b", "c"), default="a",
        help="YCSB mix: a=50/50, b=95%% reads, c=99%% writes",
    )
    parser.add_argument("--object-size", type=int, default=4096)
    parser.add_argument("--objects", type=int, default=64)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument(
        "--depth", type=int, default=4,
        help="pipelined in-flight operations per client (default 4)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.0,
        help=(
            "open-loop injection rate per client, ops/sec "
            "(0 = closed loop, the default)"
        ),
    )


def cmd_serve(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run one live protocol node from a cluster spec.",
    )
    parser.add_argument("--spec", required=True, help="cluster JSON path")
    parser.add_argument(
        "--node", required=True, help="node name, e.g. storage-0"
    )
    args = parser.parse_args(list(argv))
    spec = ClusterSpec.load(args.spec)

    async def _serve() -> None:
        from repro.net.runtime import NodeRuntime

        runtime = NodeRuntime(spec, args.node)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, runtime.request_shutdown)
        await runtime.run_until_shutdown()

    asyncio.run(_serve())
    return 0


def cmd_cluster(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Spawn a local live cluster (one process per node).",
    )
    _spec_arguments(parser)
    parser.add_argument(
        "--duration", type=float, default=0.0,
        help="run this many seconds then shut down (0 = until Ctrl-C)",
    )
    args = parser.parse_args(list(argv))
    spec = build_spec(
        replicas=args.replicas,
        proxies=args.proxies,
        write_quorum=args.write_quorum,
        seed=args.seed,
        shards=args.shards,
        lease_duration=args.lease_duration,
    )

    async def _run() -> int:
        from repro.net.cluster import LocalCluster

        cluster = LocalCluster(spec)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        try:
            cluster.start()
            await cluster.wait_healthy()
            print(cluster.describe(), flush=True)
            print("cluster healthy; Ctrl-C to stop", flush=True)
            if args.duration > 0:
                try:
                    await asyncio.wait_for(stop.wait(), args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
            codes = await cluster.shutdown()
        finally:
            cluster.kill()
        dirty = {name: code for name, code in codes.items() if code != 0}
        if dirty:
            print(f"unclean exits: {dirty}", flush=True)
            return 1
        print("cluster stopped cleanly", flush=True)
        return 0

    return asyncio.run(_run())


def cmd_loadgen(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description=(
            "Live benchmark against a running cluster: one timed phase "
            "per --phase W, with a live reconfiguration between phases."
        ),
    )
    parser.add_argument(
        "--spec", default=None,
        help=(
            "cluster JSON written by `python -m repro cluster` "
            "(omit with --shards N to run the self-contained scale-out "
            "benchmark, which boots its own clusters)"
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help=(
            "run the scale-out benchmark with this many shards: "
            "single-ring reference, fleet load, and a concurrent "
            "two-shard reconfiguration storm; writes "
            "BENCH_net_scaleout.json"
        ),
    )
    parser.add_argument(
        "--replicas", type=int, default=5,
        help="replicas per shard (scale-out mode only)",
    )
    _load_arguments(parser)
    parser.add_argument(
        "--phase", type=int, action="append", dest="phases",
        help="write quorum for one phase (repeatable; default: 4 then 2)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output", default=None,
        help=(
            "report path (default BENCH_net.json, or "
            "BENCH_net_scaleout.json with --shards)"
        ),
    )
    parser.add_argument(
        "--baseline", default=None,
        help=(
            "pinned baseline JSON; fail if any phase drops "
            "below 70%% of its baseline ops/sec"
        ),
    )
    parser.add_argument(
        "--lease-compare", action="store_true",
        help=(
            "A/B the per-object lease fast path: one phase with lease "
            "reads off, one with them on, same W (cluster must have "
            "been booted with --lease-duration > 0)"
        ),
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help=(
            "with --lease-compare: fail unless leased ops/sec reaches "
            "this multiple of the quorum phase (0 = report only)"
        ),
    )
    args = parser.parse_args(list(argv))
    if args.shards >= 2:
        return _run_scaleout_command(args)
    if args.spec is None:
        parser.error("--spec is required (or use --shards N)")
    spec = ClusterSpec.load(args.spec)
    phases: List[int] = args.phases or [4, 2]
    output = args.output or "BENCH_net.json"

    from repro.net.loadgen import (
        check_baseline,
        lease_speedup,
        run_bench,
        run_lease_bench,
        write_report,
    )

    extra = {
        "workload": args.workload,
        "clients": args.clients,
        "object_size": args.object_size,
        "objects": args.objects,
        "seed": args.seed,
        "pipeline_depth": args.depth,
        "injection_rate": args.rate,
    }
    lease_problems: List[str] = []
    if args.lease_compare:
        result, counters = asyncio.run(
            run_lease_bench(
                spec,
                duration=args.duration,
                clients=args.clients,
                workload=args.workload,
                object_size=args.object_size,
                objects=args.objects,
                seed=args.seed,
                pipeline_depth=args.depth,
                injection_rate=args.rate,
            )
        )
        speedup = lease_speedup(result)
        extra["lease_compare"] = True
        extra["lease_counters"] = {
            name: round(value, 1)
            for name, value in sorted(counters.items())
        }
        extra["lease_speedup"] = (
            None if speedup is None else round(speedup, 3)
        )
        if args.min_speedup > 0 and (
            speedup is None or speedup < args.min_speedup
        ):
            lease_problems.append(
                f"lease speedup {speedup or 0.0:.2f}x is below the "
                f"required {args.min_speedup:.2f}x"
            )
    else:
        result = asyncio.run(
            run_bench(
                spec,
                phases=phases,
                duration=args.duration,
                clients=args.clients,
                workload=args.workload,
                object_size=args.object_size,
                objects=args.objects,
                seed=args.seed,
                pipeline_depth=args.depth,
                injection_rate=args.rate,
            )
        )
    write_report(result, output, extra=extra)
    for phase in result.phases:
        reads, writes = phase.latencies["read"], phase.latencies["write"]
        print(
            f"{phase.name}: {phase.operations} ops "
            f"({phase.ops_per_sec:.0f}/s), "
            f"read p50 {reads.get('p50', 0.0):.4f}s "
            f"p99 {reads.get('p99', 0.0):.4f}s, "
            f"write p50 {writes.get('p50', 0.0):.4f}s "
            f"p99 {writes.get('p99', 0.0):.4f}s, "
            f"{phase.failed} failed"
        )
    if args.lease_compare:
        speedup_text = (
            "n/a" if extra["lease_speedup"] is None
            else f"{extra['lease_speedup']:.2f}x"
        )
        hits = extra["lease_counters"].get(
            "qopt_lease_read_hits_total", 0.0
        )
        misses = extra["lease_counters"].get(
            "qopt_lease_read_misses_total", 0.0
        )
        print(
            f"lease speedup: {speedup_text} "
            f"(fast-path hits {hits:.0f}, misses {misses:.0f})"
        )
    print(
        f"history: {result.history_records} records, "
        f"{result.consistency_violations} violations, "
        f"linearizable={result.linearizable}"
    )
    print(f"report written to {output}")
    failures: List[str] = []
    if args.baseline:
        failures = check_baseline(result, args.baseline)
        for failure in failures:
            print(f"BASELINE REGRESSION: {failure}")
        if not failures:
            print(f"baseline gate passed ({args.baseline})")
    # The exit code mirrors the report's ok field exactly, so CI cannot
    # pass a run whose JSON says it failed (or whose linearizability
    # check never finished).
    problems = result.problems() + failures + lease_problems
    for problem in problems:
        print(f"FAIL: {problem}")
    return 1 if problems else 0


def _run_scaleout_command(args: argparse.Namespace) -> int:
    """``loadgen --shards N``: the self-contained scale-out benchmark."""
    from repro.net.loadgen import check_baseline
    from repro.net.scaleout import run_scaleout, write_scaleout_report

    report = asyncio.run(
        run_scaleout(
            shards=args.shards,
            replicas=args.replicas,
            duration=args.duration,
            clients=args.clients,
            workload=args.workload,
            object_size=args.object_size,
            objects=args.objects,
            seed=args.seed,
            pipeline_depth=args.depth,
            injection_rate=args.rate,
        )
    )
    output = args.output or "BENCH_net_scaleout.json"
    write_scaleout_report(
        report,
        output,
        extra={
            "workload": args.workload,
            "clients": args.clients,
            "object_size": args.object_size,
            "objects": args.objects,
            "seed": args.seed,
            "pipeline_depth": args.depth,
            "injection_rate": args.rate,
        },
    )
    print(report.render())
    print(f"report written to {output}")
    failures: List[str] = []
    if args.baseline:
        failures = check_baseline(report.fleet, args.baseline)
        for failure in failures:
            print(f"BASELINE REGRESSION: {failure}")
        if not failures:
            print(f"baseline gate passed ({args.baseline})")
    problems = report.problems() + failures
    for problem in problems:
        print(f"FAIL: {problem}")
    return 1 if problems else 0


def cmd_livesmoke(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro livesmoke",
        description="CI smoke: boot cluster, load, reconfigure, verify.",
    )
    _spec_arguments(parser)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--workload", choices=("a", "b", "c"), default="a"
    )
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument(
        "--phase", type=int, action="append", dest="phases",
        help="write quorum per phase (repeatable; default: 4 then 2)",
    )
    parser.add_argument(
        "--depth", type=int, default=4,
        help="pipelined in-flight operations per client (default 4)",
    )
    args = parser.parse_args(list(argv))

    from repro.net.smoke import run_smoke

    report = asyncio.run(
        run_smoke(
            replicas=args.replicas,
            proxies=args.proxies,
            write_quorums=args.phases or [4, 2],
            duration=args.duration,
            clients=args.clients,
            workload=args.workload,
            seed=args.seed or 1,
            pipeline_depth=args.depth,
        )
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_livechaos(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro livechaos",
        description=(
            "Crash-recovery gate: WAL-backed cluster, seeded kill -9 / "
            "restart cycles under load across a W=4 -> W=2 "
            "reconfiguration, then a read-back durability sweep and a "
            "full linearizability check."
        ),
    )
    parser.add_argument("--replicas", type=int, default=5)
    parser.add_argument("--proxies", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--workload", choices=("a", "b", "c"), default="a"
    )
    parser.add_argument("--objects", type=int, default=32)
    parser.add_argument(
        "--duration", type=float, default=6.0,
        help="seconds of load per quorum phase (default 6)",
    )
    parser.add_argument(
        "--cycles", type=int, default=3,
        help="kill -9 -> restart cycles across the run (default 3)",
    )
    parser.add_argument(
        "--depth", type=int, default=4,
        help="pipelined in-flight operations per client (default 4)",
    )
    parser.add_argument(
        "--output", default="BENCH_net_chaos.json",
        help="report path (default BENCH_net_chaos.json)",
    )
    args = parser.parse_args(list(argv))

    from repro.net.chaos import run_chaos, write_chaos_report

    report = asyncio.run(
        run_chaos(
            replicas=args.replicas,
            proxies=args.proxies,
            cycles=args.cycles,
            duration=args.duration,
            clients=args.clients,
            workload=args.workload,
            objects=args.objects,
            seed=args.seed,
            pipeline_depth=args.depth,
        )
    )
    write_chaos_report(
        report,
        args.output,
        extra={
            "workload": args.workload,
            "clients": args.clients,
            "objects": args.objects,
            "seed": args.seed,
            "cycles": args.cycles,
            "pipeline_depth": args.depth,
        },
    )
    print(report.render())
    print(f"report written to {args.output}")
    return 0 if report.ok else 1


NET_COMMANDS = {
    "serve": cmd_serve,
    "cluster": cmd_cluster,
    "loadgen": cmd_loadgen,
    "livesmoke": cmd_livesmoke,
    "livechaos": cmd_livechaos,
}


def dispatch(command: str, argv: Sequence[str]) -> Optional[int]:
    """Run a net command; ``None`` if the name is not ours."""
    handler = NET_COMMANDS.get(command)
    if handler is None:
        return None
    return handler(argv)


__all__ = ["dispatch", "NET_COMMANDS"]
