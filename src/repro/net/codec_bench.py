"""Codec microbenchmark: encode/decode ns/op per wire message type.

``python -m repro bench --codec`` times :func:`~repro.net.codec.encode_frame`
and :func:`~repro.net.codec.decode_frame_body` over a fixed set of
representative envelopes — the message types that dominate live traffic
(client requests inbound to a proxy, replica round-trips behind it), each
carrying the load generator's default-sized payload where the real
message would.  Numbers are wall-clock ns per call, best-of-``rounds``
so scheduler noise biases high rounds, not the reported figure.

The samples are fixed so before/after comparisons (EXPERIMENTS.md) are
apples to apples; every sample is round-tripped once before timing to
guarantee the bench never reports a speed for frames that don't decode.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from repro.common.errors import ReproError
from repro.common.types import NodeId, Version, VersionStamp
from repro.net.codec import LENGTH_PREFIX, decode_frame_body, encode_frame
from repro.sds.messages import (
    ClientRead,
    ClientWrite,
    ReplicaReadReply,
    ReplicaWrite,
)
from repro.sim.network import Envelope

#: Schema tag written into every BENCH_codec.json.
SCHEMA = "qopt-codec-bench/1"

#: Payload size of the sample writes (the loadgen default object size
#: is 4096; 2048 keeps one timing round comfortably under a second).
PAYLOAD_BYTES = 2048


def sample_envelopes() -> List[Tuple[str, Envelope]]:
    """The pinned envelope-per-message-type sample set."""
    value = bytes(range(256)) * (PAYLOAD_BYTES // 256)
    stamp = VersionStamp(timestamp=123.456789, proxy="proxy-0")
    version = Version(value=value, stamp=stamp, cfg_no=3, size=len(value))
    client, proxy, storage = (
        NodeId.client(1),
        NodeId.proxy(0),
        NodeId.storage(2),
    )
    return [
        (
            "ClientRead",
            Envelope(
                sender=client,
                recipient=proxy,
                payload=ClientRead(object_id="obj-17", request_id=42),
                size=256,
            ),
        ),
        (
            "ClientWrite",
            Envelope(
                sender=client,
                recipient=proxy,
                payload=ClientWrite(
                    object_id="obj-17",
                    value=value,
                    size=len(value),
                    request_id=43,
                ),
                size=256 + len(value),
            ),
        ),
        (
            "ReplicaWrite",
            Envelope(
                sender=proxy,
                recipient=storage,
                payload=ReplicaWrite(
                    object_id="obj-17",
                    value=value,
                    size=len(value),
                    stamp=stamp,
                    epoch_no=2,
                    cfg_no=3,
                    op_id=7,
                ),
                size=256 + len(value),
            ),
        ),
        (
            "ReplicaReadReply",
            Envelope(
                sender=storage,
                recipient=proxy,
                payload=ReplicaReadReply(
                    object_id="obj-17",
                    version=version,
                    op_id=7,
                    replica=storage,
                ),
                size=256 + len(value),
            ),
        ),
    ]


def _time_ns(func: Any, arg: Any, repeats: int, rounds: int) -> float:
    """Best-of-``rounds`` mean ns per ``func(arg)`` call."""
    timer = time.perf_counter_ns
    best = float("inf")
    for _ in range(rounds):
        begin = timer()
        for _ in range(repeats):
            func(arg)
        elapsed = (timer() - begin) / repeats
        if elapsed < best:
            best = elapsed
    return best


def run_codec_bench(repeats: int = 2000, rounds: int = 5) -> Dict[str, Any]:
    """Time the codec over the sample set; returns the report dict."""
    messages: Dict[str, Dict[str, Any]] = {}
    for name, envelope in sample_envelopes():
        frame = encode_frame(envelope)
        body = frame[LENGTH_PREFIX:]
        decoded = decode_frame_body(body)
        if decoded != envelope:
            raise ReproError(
                f"codec bench round-trip mismatch for {name}: "
                f"{decoded!r} != {envelope!r}"
            )
        messages[name] = {
            "frame_bytes": len(frame),
            "encode_ns": round(
                _time_ns(encode_frame, envelope, repeats, rounds), 1
            ),
            "decode_ns": round(
                _time_ns(decode_frame_body, body, repeats, rounds), 1
            ),
        }
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "rounds": rounds,
        "payload_bytes": PAYLOAD_BYTES,
        "messages": messages,
    }


__all__ = ["PAYLOAD_BYTES", "SCHEMA", "run_codec_bench", "sample_envelopes"]
