"""Minimal asyncio HTTP endpoint for metrics and admin.

Each live-runtime process exposes a tiny HTTP/1.1 server:

* ``GET /metrics``  — Prometheus text format (the existing
  :func:`repro.obs.exporters.to_prometheus_text` over the process's
  metrics registry);
* ``GET /healthz``  — liveness;
* ``GET /shutdown`` — graceful stop;
* ``GET /reconfig?write=W`` — (manager only) run a live two-phase quorum
  reconfiguration.

Deliberately not a web framework: one request per connection, GET only,
no keep-alive — just enough for ``curl``, a Prometheus scraper and the
live-smoke harness.  A matching :func:`http_get` client keeps the
loadgen/orchestrator dependency-free too.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: A route handler: ``(query) -> (status, content_type, body)``.
Handler = Callable[
    [Dict[str, str]], Awaitable[Tuple[int, str, str]]
]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            500: "Internal Server Error"}

_MAX_REQUEST_BYTES = 16 * 1024


class MiniHttpServer:
    """One-shot-per-connection HTTP server over asyncio streams."""

    def __init__(
        self, host: str, port: int, routes: Dict[str, Handler]
    ) -> None:
        self._host = host
        self._port = port
        self._routes = dict(routes)
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sockets = self._server.sockets or []
        if self._port == 0 and sockets:
            self._port = sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        return self._port

    async def stop(self) -> None:
        # Claim the server before the first await so a concurrent stop()
        # cannot double-close it (check-then-act across an await).
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3 or parts[0] != "GET":
                await self._respond(writer, 400, "text/plain", "GET only\n")
                return
            # Drain headers (ignored) until the blank line.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            split = urlsplit(parts[1])
            handler = self._routes.get(split.path)
            if handler is None:
                await self._respond(writer, 404, "text/plain", "not found\n")
                return
            query = {
                key: values[-1]
                for key, values in parse_qs(split.query).items()
            }
            try:
                status, content_type, body = await handler(query)
            except Exception as exc:  # noqa: BLE001 - surface to the client
                status, content_type, body = (
                    500, "text/plain", f"error: {exc}\n"
                )
            await self._respond(writer, status, content_type, body)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            self.requests_served += 1
            writer.close()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: str
    ) -> None:
        payload = body.encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


async def http_get(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, str]:
    """Tiny HTTP client: ``(status, body)`` of one GET request."""

    async def _fetch() -> Tuple[int, str]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        status = int(status_line.split()[1])
        return status, body.decode("utf-8", errors="replace")

    return await asyncio.wait_for(_fetch(), timeout=timeout)


async def wait_healthy(
    host: str, port: int, deadline: float = 15.0
) -> None:
    """Poll ``/healthz`` until it answers 200 or the deadline passes."""
    loop = asyncio.get_running_loop()
    give_up = loop.time() + deadline
    while True:
        try:
            status, _body = await http_get(host, port, "/healthz", timeout=2.0)
            if status == 200:
                return
        except (OSError, asyncio.TimeoutError, ValueError, IndexError):
            pass
        if loop.time() >= give_up:
            raise TimeoutError(
                f"http://{host}:{port}/healthz not ready in {deadline}s"
            )
        await asyncio.sleep(0.1)


__all__ = ["MiniHttpServer", "http_get", "wait_healthy", "Handler"]
