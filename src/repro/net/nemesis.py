"""Process-level nemesis for the live runtime.

The simulator's nemesis (:mod:`repro.sim.nemesis`) schedules *modelled*
faults inside one process; this module does it to a real
:class:`~repro.net.cluster.LocalCluster`: seeded kill → restart
schedules delivered as SIGKILL to worker processes, a restart policy
with exponential backoff and fail-fast health checks, and a
fault-injecting wrapper over the TCP transport for connection resets and
delay spikes.

Faults are *faithful*: a killed replica loses exactly what a ``kill -9``
loses (its process state and any unfsynced WAL tail), a reset connection
loses in-flight frames as a unit (at-most-once — nothing is duplicated
or replayed), and a delay spike only postpones a send, it never reorders
it ahead of earlier traffic to the same peer.

Determinism: the schedule is derived from the cluster seed through the
usual substream discipline, so a CI failure reproduces locally from the
same ``--seed``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.common.rng import substream
from repro.common.types import NodeId
from repro.net.cluster import LocalCluster
from repro.net.httpd import http_get
from repro.net.spec import ClusterSpec
from repro.net.tcp import TcpTransport


# --------------------------------------------------------------------------
# Seeded kill/restart schedules
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class KillCycle:
    """One kill → restart cycle of the schedule."""

    victim: str
    #: Seconds to wait (from the previous cycle's end) before the kill.
    delay: float
    #: Seconds the victim stays dead before the restart is attempted.
    downtime: float


def build_schedule(
    spec: ClusterSpec,
    seed: int,
    cycles: int,
    delay_range: Tuple[float, float] = (1.0, 2.5),
    downtime_range: Tuple[float, float] = (0.4, 1.2),
) -> List[KillCycle]:
    """A seeded storage-victim schedule; deterministic given the seed."""
    rng = substream(seed, "nemesis", "schedule")
    victims = [address.name for address in spec.replicas]
    schedule: List[KillCycle] = []
    previous: Optional[str] = None
    for _ in range(cycles):
        victim = rng.choice(victims)
        # Avoid back-to-back kills of the same replica when possible:
        # the point is churn across the fleet, not one node flapping.
        if victim == previous and len(victims) > 1:
            victim = rng.choice([v for v in victims if v != previous])
        previous = victim
        schedule.append(
            KillCycle(
                victim=victim,
                delay=rng.uniform(*delay_range),
                downtime=rng.uniform(*downtime_range),
            )
        )
    return schedule


# --------------------------------------------------------------------------
# Restart policy + live nemesis
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RestartPolicy:
    """How hard the supervisor tries to bring a dead worker back."""

    backoff_base: float = 0.2
    backoff_cap: float = 2.0
    max_attempts: int = 3
    #: Deadline for a restarted process to answer ``/healthz``.
    health_deadline: float = 15.0
    #: Deadline for a recovered replica to leave quarantine.
    recovery_deadline: float = 30.0

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))


@dataclass
class NemesisCycleResult:
    """What one kill → restart cycle observed."""

    victim: str
    killed_at: float
    restarted_at: float = 0.0
    restart_attempts: int = 0
    #: Wall seconds from (first) restart to quarantine exit; None if the
    #: replica never rejoined within the recovery deadline.
    recovery_seconds: Optional[float] = None
    #: Whether the replica was ever observed read-excluded after the
    #: restart (the I6 quarantine window is visible on ``/healthz``).
    quarantine_observed: bool = False

    def as_dict(self) -> dict:
        return {
            "victim": self.victim,
            "restart_attempts": self.restart_attempts,
            "recovery_seconds": (
                None
                if self.recovery_seconds is None
                else round(self.recovery_seconds, 3)
            ),
            "quarantine_observed": self.quarantine_observed,
        }


class LiveNemesis:
    """Drives a kill/restart schedule against a supervised cluster."""

    def __init__(
        self,
        cluster: LocalCluster,
        schedule: List[KillCycle],
        policy: Optional[RestartPolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.schedule = list(schedule)
        self.policy = policy if policy is not None else RestartPolicy()
        self.cycles: List[NemesisCycleResult] = []
        self.problems: List[str] = []

    async def run(self) -> None:
        """Execute every cycle; problems accumulate, they do not raise."""
        loop = asyncio.get_running_loop()
        for cycle in list(self.schedule):
            await asyncio.sleep(cycle.delay)
            self.cluster.kill_worker(cycle.victim)
            result = NemesisCycleResult(
                victim=cycle.victim, killed_at=loop.time()
            )
            self.cycles.append(result)
            await asyncio.sleep(cycle.downtime)
            result.restarted_at = loop.time()
            if not await self._restart(cycle.victim, result):
                self.problems.append(
                    f"{cycle.victim}: did not come back healthy after "
                    f"{self.policy.max_attempts} restart attempts"
                )
                continue
            rejoined_at = await self._await_readmission(cycle.victim, result)
            if rejoined_at is None:
                self.problems.append(
                    f"{cycle.victim}: still quarantined after "
                    f"{self.policy.recovery_deadline}s"
                )
            else:
                result.recovery_seconds = rejoined_at - result.restarted_at

    async def _restart(
        self, name: str, result: NemesisCycleResult
    ) -> bool:
        """Respawn with backoff until the worker answers ``/healthz``."""
        for attempt in range(self.policy.max_attempts):
            worker = self.cluster.restart_worker(name)
            result.restart_attempts += 1
            try:
                await self.cluster.wait_worker_healthy(
                    worker, deadline=self.policy.health_deadline
                )
                return True
            except (RuntimeError, TimeoutError):
                # Crashed on boot or wedged: put it down cleanly and
                # retry after backoff (dead-worker detection is the
                # fail-fast path inside wait_worker_healthy).
                self.cluster.kill_worker(name)
                await asyncio.sleep(self.policy.backoff(attempt))
        return False

    async def _await_readmission(
        self, name: str, result: NemesisCycleResult
    ) -> Optional[float]:
        """Poll ``/healthz`` until the replica reports quarantine over."""
        loop = asyncio.get_running_loop()
        worker = self.cluster.worker(name)
        give_up = loop.time() + self.policy.recovery_deadline
        while loop.time() < give_up:
            try:
                status, body = await http_get(
                    worker.address.host,
                    worker.address.http_port,
                    "/healthz",
                    timeout=2.0,
                )
            except (OSError, asyncio.TimeoutError, ValueError, IndexError):
                status, body = 0, ""
            if status == 200:
                if "quarantined=true" in body:
                    result.quarantine_observed = True
                elif "quarantined=false" in body:
                    return loop.time()
                else:
                    # Memory-backed replica: no quarantine phase at all.
                    return loop.time()
            await asyncio.sleep(0.02)
        return None


# --------------------------------------------------------------------------
# Fault-injecting transport wrapper
# --------------------------------------------------------------------------


@dataclass
class FaultInjector:
    """Transport wrapper: seeded drops, delay spikes, connection resets.

    Wraps a :class:`TcpTransport` behind the same ``register``/``send``
    seam the protocol nodes use.  Faults preserve at-most-once: a
    dropped send is dropped forever, a delayed send is delivered once
    (later), and :meth:`reset_connections` severs live links so frames
    in flight are lost as units — nothing is ever duplicated.
    """

    inner: TcpTransport
    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.05
    dropped: int = 0
    delayed: int = 0
    resets: int = 0
    _rng: Any = field(init=False, default=None)

    def __post_init__(self) -> None:
        self._rng = substream(self.seed, "nemesis", "faults")

    def register(self, node_id: NodeId) -> Any:
        return self.inner.register(node_id)

    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        payload: Any,
        size: int = 256,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.dropped += 1
            return
        if roll < self.drop_rate + self.delay_rate:
            self.delayed += 1
            self.inner._kernel._loop.call_later(
                self.delay_seconds,
                self.inner.send,
                sender,
                recipient,
                payload,
                size,
                trace,
            )
            return
        self.inner.send(sender, recipient, payload, size, trace)

    def reset_connections(self) -> None:
        self.resets += 1
        self.inner.drop_connections()


__all__ = [
    "KillCycle",
    "RestartPolicy",
    "NemesisCycleResult",
    "LiveNemesis",
    "FaultInjector",
    "build_schedule",
]
