"""End-to-end live smoke test: boot, load, reconfigure, scrape, verify.

``python -m repro livesmoke`` is what the CI ``live-smoke`` job runs:

1. boot an N-replica localhost cluster (real subprocesses, real TCP);
2. drive a short pipelined load burst at the initial write quorum;
3. force one live global reconfiguration and keep loading;
4. scrape every node's Prometheus endpoint;
5. shut the cluster down gracefully.

It fails (non-zero exit) if any operation failed permanently, the
history is not linearizable, a metrics scrape is missing expected
families, or any worker exits uncleanly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.net.cluster import LocalCluster
from repro.net.httpd import http_get
from repro.net.loadgen import LoadGenerator, LoadgenResult
from repro.net.spec import ClusterSpec

#: Metric families every node's /metrics scrape must contain.
REQUIRED_METRICS = (
    "qopt_transport_messages_total",
    "qopt_kernel_events_total",
)


@dataclass
class SmokeReport:
    """Everything the smoke run verified."""

    result: LoadgenResult
    scrapes: Dict[str, str]
    exit_codes: Dict[str, int]
    problems: List[str]
    #: Last per-worker RSS/CPU snapshot before shutdown (from /proc),
    #: attributing the run's throughput to cores per worker.
    resources: Dict[str, Optional[Dict[str, float]]] = field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = ["live-smoke:"]
        for phase in self.result.phases:
            lines.append(
                f"  phase {phase.name}: {phase.operations} ops "
                f"({phase.ops_per_sec:.0f}/s), {phase.failed} failed, "
                f"{phase.retries} retries"
            )
        lines.append(
            f"  history: {self.result.history_records} records, "
            f"{self.result.consistency_violations} violations, "
            f"linearizable={self.result.linearizable}"
        )
        lines.append(f"  scrapes: {len(self.scrapes)} endpoints ok")
        for name in sorted(self.resources):
            snapshot = self.resources[name]
            if snapshot is None:
                continue
            lines.append(
                f"  {name}: rss={snapshot['rss_bytes'] / 1e6:.1f}MB "
                f"cpu={snapshot['cpu_seconds']:.2f}s"
            )
        lines.append(f"  exits: {sorted(self.exit_codes.items())}")
        if self.problems:
            lines.append("  PROBLEMS:")
            lines.extend(f"    - {problem}" for problem in self.problems)
        else:
            lines.append("  all checks passed")
        return "\n".join(lines)


async def _scrape_all(spec: ClusterSpec) -> Dict[str, str]:
    scrapes: Dict[str, str] = {}
    for address in spec.all_addresses():
        status, body = await http_get(
            address.host, address.http_port, "/metrics", timeout=5.0
        )
        if status != 200:
            raise RuntimeError(
                f"{address.name}: /metrics returned {status}"
            )
        scrapes[address.name] = body
    return scrapes


async def run_smoke(
    replicas: int = 5,
    proxies: int = 1,
    write_quorums: Sequence[int] = (4, 2),
    duration: float = 2.0,
    clients: int = 4,
    workload: str = "a",
    seed: int = 1,
    pipeline_depth: int = 4,
) -> SmokeReport:
    """Run the full smoke sequence; never leaves processes behind."""
    from repro.net.spec import build_spec

    spec = build_spec(
        replicas=replicas,
        proxies=proxies,
        write_quorum=write_quorums[0],
        seed=seed,
    )
    cluster = LocalCluster(spec)
    problems: List[str] = []
    scrapes: Dict[str, str] = {}
    try:
        cluster.start()
        await cluster.wait_healthy()
        generator = LoadGenerator(
            cluster.spec,
            clients=clients,
            workload=workload,
            objects=32,
            seed=seed,
            pipeline_depth=pipeline_depth,
        )
        await generator.start()
        try:
            for position, write_quorum in enumerate(write_quorums):
                if position > 0:
                    await generator.reconfigure(write_quorum)
                await generator.run_phase(
                    name=f"W={write_quorum}",
                    duration=duration,
                    write_quorum=write_quorum,
                )
            scrapes = await _scrape_all(cluster.spec)
            result = generator.result(None)
        finally:
            await generator.stop()
        # Snapshot before shutdown: a worker that died mid-run must be
        # reported as such, not folded into the graceful exit codes —
        # and its resource usage is only readable while it is alive.
        resources = {
            worker.name: worker.resources() for worker in cluster.workers
        }
        dead_workers = [worker.name for worker in cluster.dead_workers()]
        exit_codes = await cluster.shutdown()
    finally:
        cluster.kill()

    # -- verdicts ------------------------------------------------------------
    if result.total_failed:
        problems.append(f"{result.total_failed} operations failed")
    for phase in result.phases:
        if phase.operations == 0:
            problems.append(f"phase {phase.name} completed zero operations")
    if result.consistency_violations:
        problems.append(
            f"{result.consistency_violations} consistency violations"
        )
    if result.linearizable is False:
        problems.append("history is not linearizable")
    for name, body in scrapes.items():
        for family in REQUIRED_METRICS:
            if family not in body:
                problems.append(f"{name}: /metrics missing {family}")
    for name in dead_workers:
        problems.append(f"{name} died during the run")
    for name, code in exit_codes.items():
        if code != 0:
            problems.append(f"{name} exited with code {code}")
    return SmokeReport(
        result=result,
        scrapes=scrapes,
        exit_codes=exit_codes,
        problems=problems,
        resources=resources,
    )


__all__ = ["run_smoke", "SmokeReport", "REQUIRED_METRICS"]
