"""Scale-out benchmark: S independent shards versus one ring.

``python -m repro loadgen --shards N`` runs this self-contained
sequence (it boots its own clusters, like ``livesmoke``):

1. **single-ring reference** — one shard-sized cluster under the same
   client fleet, measuring the throughput one ring delivers;
2. **pre-reconfig** — the S-shard fleet under full load, shard 0 at
   W=4 and shard 1 at W=2;
3. **reconfig-storm** — the same load while two shards reconfigure
   *concurrently* in opposite directions (shard 0 W=4→2, shard 1
   W=2→4): the first real stress test of reconfiguration concurrency,
   since each shard's two-phase change must drain only its own proxies;
4. **post-reconfig** — steady state on the new per-shard quorums.

The report (``BENCH_net_scaleout.json``) carries per-shard Wing-Gong
verdicts over the whole cross-phase history, per-shard throughput for
every phase, the merged-histogram aggregate latencies, the machine's
core count and the fleet/single-ring speedup.  Near-linear scaling is
only physically possible up to ``min(S, cores)`` — the report records
both so a 1-core CI runner and a 16-core workstation read the same
numbers honestly.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.cluster import LocalCluster
from repro.net.loadgen import LoadGenerator, LoadgenResult, PhaseResult
from repro.net.spec import build_spec


def available_cores() -> int:
    """Cores this process may run on (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ScaleoutReport:
    """Everything one scale-out benchmark run measured."""

    shards: int
    cores: int
    fleet: LoadgenResult
    single_ring: Optional[PhaseResult]
    #: Wall seconds each shard's mid-load reconfiguration took.
    reconfig_seconds: Dict[str, float] = field(default_factory=dict)
    #: Routing-table refreshes the storm triggered.
    route_refreshes: int = 0

    @property
    def fleet_ops_per_sec(self) -> float:
        """Aggregate fleet throughput in the steady pre-reconfig phase."""
        for phase in self.fleet.phases:
            if phase.name == "pre-reconfig":
                return phase.ops_per_sec
        return 0.0

    @property
    def speedup(self) -> Optional[float]:
        if self.single_ring is None or self.single_ring.ops_per_sec <= 0:
            return None
        return self.fleet_ops_per_sec / self.single_ring.ops_per_sec

    @property
    def expected_scaling(self) -> int:
        """Near-linear scaling is bounded by cores: min(S, cores)."""
        return max(1, min(self.shards, self.cores))

    def problems(self) -> List[str]:
        problems = list(self.fleet.problems())
        if len(self.reconfig_seconds) < 2:
            problems.append(
                "concurrent reconfiguration storm did not complete "
                f"({len(self.reconfig_seconds)}/2 shards reconfigured)"
            )
        for phase in self.fleet.phases:
            for shard, count in sorted(phase.shard_operations.items()):
                if count == 0:
                    problems.append(
                        f"phase {phase.name}: shard {shard} completed "
                        "zero operations"
                    )
        return problems

    def as_dict(self) -> dict:
        problems = self.problems()
        payload: dict = {
            "shards": self.shards,
            "cores": self.cores,
            "expected_scaling": self.expected_scaling,
            "single_ring": (
                None
                if self.single_ring is None
                else self.single_ring.as_dict()
            ),
            "speedup": (
                None if self.speedup is None else round(self.speedup, 2)
            ),
            "reconfig_seconds": {
                shard: round(seconds, 3)
                for shard, seconds in sorted(self.reconfig_seconds.items())
            },
            "route_refreshes": self.route_refreshes,
            "ok": not problems,
            "problems": problems,
        }
        fleet = self.fleet.as_dict()
        # The fleet result's own ok/problems are subsumed by ours, and
        # its per-shard verdict list must not clobber our shard *count*.
        fleet.pop("ok", None)
        fleet.pop("problems", None)
        if "shards" in fleet:
            fleet["shard_outcomes"] = fleet.pop("shards")
        payload.update(fleet)
        return payload

    def render(self) -> str:
        lines = [f"scaleout: {self.shards} shards on {self.cores} core(s)"]
        if self.single_ring is not None:
            lines.append(
                f"  single-ring: {self.single_ring.ops_per_sec:.0f} ops/s"
            )
        for phase in self.fleet.phases:
            per_shard = ", ".join(
                f"{shard}={count}"
                for shard, count in sorted(phase.shard_operations.items())
            )
            lines.append(
                f"  phase {phase.name}: {phase.operations} ops "
                f"({phase.ops_per_sec:.0f}/s; {per_shard}), "
                f"{phase.failed} failed"
            )
        if self.speedup is not None:
            lines.append(
                f"  speedup: {self.speedup:.2f}x "
                f"(near-linear bound on this machine: "
                f"{self.expected_scaling}x)"
            )
        for shard, seconds in sorted(self.reconfig_seconds.items()):
            lines.append(f"  reconfig {shard}: {seconds * 1000:.0f} ms")
        for outcome in self.fleet.shard_outcomes:
            lines.append(
                f"  {outcome.shard}: {outcome.records} records, "
                f"linearizable={outcome.linearizable}"
            )
        problems = self.problems()
        if problems:
            lines.append("  PROBLEMS:")
            lines.extend(f"    - {problem}" for problem in problems)
        else:
            lines.append("  all checks passed")
        return "\n".join(lines)


async def _run_single_ring(
    replicas: int,
    proxies: int,
    duration: float,
    clients: int,
    workload: str,
    object_size: int,
    objects: int,
    seed: int,
    pipeline_depth: int,
    injection_rate: float,
) -> PhaseResult:
    """The reference measurement: one ring, same client fleet."""
    spec = build_spec(
        replicas=replicas,
        proxies=proxies,
        write_quorum=3 if replicas >= 3 else replicas,
        seed=seed,
    )
    cluster = LocalCluster(spec)
    try:
        cluster.start()
        await cluster.wait_healthy()
        generator = LoadGenerator(
            cluster.spec,
            clients=clients,
            workload=workload,
            object_size=object_size,
            objects=objects,
            seed=seed,
            pipeline_depth=pipeline_depth,
            injection_rate=injection_rate,
        )
        await generator.start()
        try:
            phase = await generator.run_phase(
                name="single-ring",
                duration=duration,
                write_quorum=spec.initial_write_quorum,
            )
        finally:
            await generator.stop()
        await cluster.shutdown()
        return phase
    finally:
        cluster.kill()


async def run_scaleout(
    shards: int = 2,
    replicas: int = 5,
    proxies_per_shard: int = 1,
    duration: float = 3.0,
    clients: int = 8,
    workload: str = "a",
    object_size: int = 1024,
    objects: int = 64,
    seed: int = 1,
    pipeline_depth: int = 4,
    injection_rate: float = 0.0,
    single_ring_reference: bool = True,
) -> ScaleoutReport:
    """Run the full scale-out sequence; never leaves processes behind.

    The reference and the fleet run *sequentially* so they never contend
    for the same cores — the comparison must charge each topology the
    whole machine.
    """
    if shards < 2:
        raise ValueError("scaleout needs at least 2 shards")
    single_ring: Optional[PhaseResult] = None
    if single_ring_reference:
        single_ring = await _run_single_ring(
            replicas=replicas,
            proxies=proxies_per_shard,
            duration=duration,
            clients=clients,
            workload=workload,
            object_size=object_size,
            objects=objects,
            seed=seed,
            pipeline_depth=pipeline_depth,
            injection_rate=injection_rate,
        )

    # Shard 0 starts wide (W=4) and will shrink; shard 1 starts narrow
    # (W=2) and will grow — the opposing pair the storm phase flips.
    quorums = [3] * shards
    quorums[0] = min(4, replicas)
    quorums[1] = 2
    spec = build_spec(
        replicas=replicas,
        proxies=proxies_per_shard,
        write_quorum=3 if replicas >= 3 else replicas,
        seed=seed,
        shards=shards,
        shard_write_quorums=quorums,
    )
    cluster = LocalCluster(spec)
    reconfig_seconds: Dict[str, float] = {}
    try:
        cluster.start()
        await cluster.wait_healthy()
        generator = LoadGenerator(
            cluster.spec,
            clients=clients,
            workload=workload,
            object_size=object_size,
            objects=objects,
            seed=seed,
            pipeline_depth=pipeline_depth,
            injection_rate=injection_rate,
        )
        await generator.start()
        try:
            await generator.run_phase(
                name="pre-reconfig",
                duration=duration,
                write_quorum=quorums[0],
            )

            async def flip(shard: str, write_quorum: int) -> None:
                # Let the phase's fleet ramp up before reconfiguring,
                # so the storm genuinely runs under load.
                await asyncio.sleep(duration * 0.25)
                reconfig_seconds[shard] = await generator.reconfigure(
                    write_quorum, shard=shard
                )

            storm = asyncio.gather(
                generator.run_phase(
                    name="reconfig-storm",
                    duration=duration,
                    write_quorum=2,
                ),
                flip("shard-0", 2),
                flip("shard-1", min(4, replicas)),
            )
            await storm
            await generator.run_phase(
                name="post-reconfig",
                duration=duration,
                write_quorum=2,
            )
            result = generator.result(
                sum(reconfig_seconds.values()) or None
            )
            refreshes = (
                generator.router.refreshes
                if generator.router is not None
                else 0
            )
        finally:
            await generator.stop()
        await cluster.shutdown()
    finally:
        cluster.kill()

    return ScaleoutReport(
        shards=shards,
        cores=available_cores(),
        fleet=result,
        single_ring=single_ring,
        reconfig_seconds=reconfig_seconds,
        route_refreshes=refreshes,
    )


def write_scaleout_report(
    report: ScaleoutReport, path: str, extra: Optional[dict] = None
) -> None:
    """Write ``BENCH_net_scaleout.json``."""
    payload = dict(extra or {})
    payload.update(report.as_dict())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


__all__ = [
    "ScaleoutReport",
    "available_cores",
    "run_scaleout",
    "write_scaleout_report",
]
