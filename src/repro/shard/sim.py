"""A sharded simulated deployment: S independent rings, one kernel.

:class:`ShardedSimCluster` is the sim-level analogue of the live sharded
fleet: one :class:`~repro.sim.kernel.Simulator` and one
:class:`~repro.sim.network.Network` host S complete Q-OPT instances —
each shard owns its replicas, proxies, :class:`PlacementRing`, epoch,
Reconfiguration Manager and (optionally) its own Autonomic Manager and
Oracle — while clients roam the whole keyspace through a
:class:`~repro.shard.router.ShardRouter`.

Sharing the kernel and network is deliberate: it lets the nemesis
schedule a partition or crash *confined to one shard* and then prove the
other shards' histories never stall or reorder — the cross-shard
independence property the tests pin.  The duck-typed surface Nemesis
expects (``sim``/``network``/``crashes``/``detector``/``events``) is the
same one :class:`~repro.sds.cluster.SwiftCluster` exposes.

Node-id namespacing: shard ``s`` uses storage/proxy indices
``s * SHARD_INDEX_STRIDE + i``, and its control-plane singletons
(RM/AM/Oracle) take index ``s`` — so every node id in the fleet is
unique on the shared network while ``parse`` stays trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.autonomic.manager import AutonomicManager
from repro.common.config import AutonomicConfig, ClusterConfig
from repro.common.errors import ConfigurationError
from repro.common.rng import substream
from repro.common.types import NodeId, NodeKind, QuorumConfig
from repro.metrics.collector import OperationLog
from repro.metrics.timeline import EventTimeline
from repro.obs.context import Observability
from repro.oracle.service import OracleNode, QuorumOracle
from repro.reconfig.manager import ReconfigurationManager
from repro.sds.client import ClientNode, OperationRecord, OperationSource
from repro.sds.proxy import ProxyNode
from repro.sds.quorum import QuorumPlan
from repro.sds.ring import PlacementRing
from repro.sds.storage import StorageNode
from repro.sds.vector_clocks import make_versioning
from repro.shard.map import ShardMap
from repro.shard.router import ShardRouter
from repro.sim.failure import CrashManager, FailureDetector
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.topk.stats import ProxyStatsRecorder

#: Storage/proxy index offset between consecutive shards.  Bounds a
#: shard's size, which no sim test approaches.
SHARD_INDEX_STRIDE = 100


@dataclass
class SimShard:
    """One shard's protocol objects inside a :class:`ShardedSimCluster`."""

    index: int
    name: str
    ring: PlacementRing
    storage_nodes: List[StorageNode]
    proxies: List[ProxyNode]
    manager: ReconfigurationManager
    #: The shard's initial write quorum (its AM starts tuning from here).
    write_quorum: int = 3
    autonomic: Optional[AutonomicManager] = None
    oracle_node: Optional[OracleNode] = None

    def node_ids(self) -> List[NodeId]:
        """Every node id belonging to this shard (its failure domain)."""
        ids = [node.node_id for node in self.storage_nodes]
        ids.extend(proxy.node_id for proxy in self.proxies)
        ids.append(self.manager.node_id)
        if self.autonomic is not None:
            ids.append(self.autonomic.node_id)
        if self.oracle_node is not None:
            ids.append(self.oracle_node.node_id)
        return ids


class ShardedSimCluster:
    """S independent quorum rings sharing one simulated network."""

    def __init__(
        self,
        shards: int = 2,
        config: Optional[ClusterConfig] = None,
        seed: int = 0,
        detection_delay: float = 0.5,
        write_quorums: Optional[Sequence[int]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        self.config = (config or ClusterConfig()).validate()
        if write_quorums is not None and len(write_quorums) != shards:
            raise ConfigurationError(
                f"need one write quorum per shard: got "
                f"{len(write_quorums)} for {shards} shards"
            )
        self.seed = seed
        self.obs = obs
        self.sim = Simulator()
        if obs is not None:
            obs.bind_clock(lambda: self.sim.now)
        self.network = Network(
            self.sim, self.config.network, rng=substream(seed, "network")
        )
        if obs is not None:
            self.network.bind_observability(obs)
        self.crashes = CrashManager(self.sim, self.network)
        self.detector = FailureDetector(
            self.sim, self.crashes, detection_delay=detection_delay
        )
        self.log = OperationLog()
        self.events = EventTimeline()
        if obs is not None:
            self.events.bind_observability(obs)

        self.shard_map = ShardMap([f"shard-{s}" for s in range(shards)])
        self.shards: List[SimShard] = []
        self._nodes_by_id: dict[NodeId, object] = {}
        for index in range(shards):
            write = (
                write_quorums[index]
                if write_quorums is not None
                else self.config.initial_quorum.write
            )
            self.shards.append(self._build_shard(index, write))
        self.router = ShardRouter(
            self.shard_map,
            {
                shard.name: [proxy.node_id for proxy in shard.proxies]
                for shard in self.shards
            },
        )
        self.clients: List[ClientNode] = []
        self.crashes.on_crash(self._on_crash)

    def _build_shard(self, index: int, write_quorum: int) -> SimShard:
        config = self.config
        degree = config.replication_degree
        plan = QuorumPlan.uniform(QuorumConfig.from_write(write_quorum, degree))
        plan.validate_strict(degree)
        base = index * SHARD_INDEX_STRIDE
        storage_ids = [
            NodeId.storage(base + i)
            for i in range(config.num_storage_nodes)
        ]
        ring = PlacementRing(storage_ids, replication_degree=degree)
        storage_nodes = [
            StorageNode(
                self.sim,
                self.network,
                node_id,
                config=config.storage,
                initial_plan=plan,
                rng=substream(self.seed, "storage", node_id.index),
                ring=ring,
                obs=self.obs,
            )
            for node_id in storage_ids
        ]
        proxies = [
            ProxyNode(
                self.sim,
                self.network,
                NodeId.proxy(base + i),
                ring=ring,
                config=config.proxy,
                initial_plan=plan,
                rng=substream(self.seed, "proxy", base + i),
                stats=ProxyStatsRecorder(top_k=8, summary_capacity=256),
                versioning=make_versioning(config.versioning),
                events=self.events,
                obs=self.obs,
            )
            for i in range(config.num_proxies)
        ]
        manager = ReconfigurationManager(
            self.sim,
            self.network,
            proxies=[proxy.node_id for proxy in proxies],
            storage_nodes=storage_ids,
            detector=self.detector,
            initial_plan=plan,
            replication_degree=degree,
            node_id=NodeId(NodeKind.RECONFIG_MANAGER.value, index),
            obs=self.obs,
        )
        shard = SimShard(
            index=index,
            name=f"shard-{index}",
            ring=ring,
            storage_nodes=storage_nodes,
            proxies=proxies,
            manager=manager,
            write_quorum=write_quorum,
        )
        for node in [*storage_nodes, *proxies, manager]:
            node.start()
            self._nodes_by_id[node.node_id] = node
        return shard

    # -- per-shard autonomic tuning -------------------------------------------

    def attach_autonomic(
        self,
        shard: int,
        oracle: QuorumOracle,
        autonomic_config: Optional[AutonomicConfig] = None,
        start: bool = True,
    ) -> AutonomicManager:
        """Give one shard its own Q-OPT tuning loop (AM + Oracle pair).

        Each shard tunes independently — the heterogeneous-workload
        case: a write-heavy shard converges to a large W while a
        read-heavy neighbour shrinks W, with no coordination between
        the loops.
        """
        target = self.shards[shard]
        if target.autonomic is not None:
            raise ConfigurationError(
                f"{target.name} already has an autonomic manager"
            )
        config = autonomic_config or AutonomicConfig()
        config.validate(self.config.replication_degree)
        oracle_node = OracleNode(
            self.sim,
            self.network,
            oracle,
            node_id=NodeId(NodeKind.ORACLE.value, shard),
        )
        oracle_node.start()
        self._nodes_by_id[oracle_node.node_id] = oracle_node
        manager = AutonomicManager(
            self.sim,
            self.network,
            proxies=[proxy.node_id for proxy in target.proxies],
            reconfig_manager=target.manager.node_id,
            oracle=oracle_node.node_id,
            detector=self.detector,
            config=config,
            replication_degree=self.config.replication_degree,
            initial_default=QuorumConfig.from_write(
                target.write_quorum, self.config.replication_degree
            ),
            obs=self.obs,
            node_id=NodeId(NodeKind.AUTONOMIC_MANAGER.value, shard),
        )
        self._nodes_by_id[manager.node_id] = manager
        if start:
            manager.start()
        target.autonomic = manager
        target.oracle_node = oracle_node
        return manager

    # -- clients ---------------------------------------------------------------

    def add_clients(
        self,
        workload: OperationSource | Callable[[int], OperationSource],
        clients: int,
        think_time: float = 0.0,
        recorder: Optional[Callable[[OperationRecord], None]] = None,
        pipeline_depth: int = 1,
        injection_rate: float = 0.0,
    ) -> List[ClientNode]:
        """Attach clients that route every operation key→shard→proxy."""
        created: List[ClientNode] = []
        base_index = len(self.clients)
        fallback = self.shards[0].proxies[0].node_id
        for slot in range(clients):
            client_index = base_index + slot
            source = (
                workload(client_index) if callable(workload) else workload
            )
            client = ClientNode(
                self.sim,
                self.network,
                NodeId.client(client_index),
                proxy_id=fallback,
                workload=source,
                rng=substream(self.seed, "client", client_index),
                log=self.log,
                think_time=think_time,
                recorder=recorder,
                policy=self.config.client,
                events=self.events,
                obs=self.obs,
                pipeline_depth=pipeline_depth,
                injection_rate=injection_rate,
                router=self.router,
            )
            client.start()
            self.clients.append(client)
            self._nodes_by_id[client.node_id] = client
            created.append(client)
        return created

    # -- failure plumbing ------------------------------------------------------

    def _on_crash(self, node_id: NodeId) -> None:
        node = self._nodes_by_id.get(node_id)
        if node is not None:
            node.crash()

    # -- running ---------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the whole fleet by ``duration`` simulated seconds."""
        if duration < 0:
            raise ConfigurationError("duration must be >= 0")
        self.sim.run(until=self.sim.now + duration)

    # -- history partitioning --------------------------------------------------

    def partition_records(
        self, records: Sequence[OperationRecord]
    ) -> Dict[str, List[OperationRecord]]:
        """Group a record history by owning shard (every shard listed)."""
        groups: Dict[str, List[OperationRecord]] = {
            shard.name: [] for shard in self.shards
        }
        for record in records:
            groups[self.shard_map.shard_of(record.object_id)].append(record)
        return groups

    def shard_named(self, name: str) -> SimShard:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise ConfigurationError(f"no shard named {name!r}")


__all__ = ["ShardedSimCluster", "SimShard", "SHARD_INDEX_STRIDE"]
