"""Keyspace sharding: partition one keyspace into independent quorum rings.

The paper's testbed is one placement ring driven by a handful of
proxies; its load ceiling is whatever one ring (and in our live runtime,
roughly one proxy process) can absorb.  Whittaker et al. ("Read-Write
Quorum Systems Made Practical") show that *load* is the fundamental
bound on quorum-system throughput — the practical way past it is
horizontal: S independent shards, each a full Q-OPT instance with its
own :class:`~repro.sds.ring.PlacementRing`, epoch counter,
Reconfiguration Manager and (per-shard) autonomic tuning loop.

This package provides the pieces that tie S rings back into one store:

* :mod:`repro.shard.map` — the consistent-hash key→shard partition
  every component agrees on;
* :mod:`repro.shard.router` — the client-side routing table (key →
  shard → proxy) with epoch-driven refresh;
* :mod:`repro.shard.sim` — a sharded simulated deployment (one kernel,
  S sub-clusters) for independence and per-shard-tuning tests.

The live counterparts live in :mod:`repro.net`: the sharded
:class:`~repro.net.spec.ClusterSpec`, the fleet supervisor and the
scale-out benchmark (:mod:`repro.net.scaleout`).
"""

from repro.shard.map import ShardMap
from repro.shard.router import RoutingTable, ShardRouter

__all__ = ["ShardMap", "RoutingTable", "ShardRouter"]
