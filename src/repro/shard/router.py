"""Client-side shard routing: key → shard → proxy, with epoch refresh.

The router is the seam between one logical keyspace and S independent
quorum rings.  It owns a :class:`RoutingTable` — one entry per shard
holding the shard's proxy set, the last shard epoch the router observed
and a rotation cursor — and exposes the single call the client hot path
needs: :meth:`ShardRouter.route`, mapping an object id to the proxy that
should serve it.

Routing is two deterministic steps:

1. the :class:`~repro.shard.map.ShardMap` names the owning shard
   (consistent hash, identical in every process);
2. the shard's entry picks a proxy round-robin, spreading one client
   fleet across all of a shard's proxies the same way the placement
   ring's ``preferred_order`` spreads read quorums across replicas.

**Epoch refresh**: a shard that reconfigures bumps its epoch (the
storage tier rejects stale-epoch operations, so proxies always converge
onto the new plan).  The router does not need new routes for safety —
shard *membership* never changes during a W reconfiguration — but it
tracks per-shard epochs so that (a) a fleet operator can see which
routing entries are stale, and (b) the rotation cursor is reset on every
epoch change, re-balancing clients across the shard's proxies after the
reconfiguration shuffled their load.  The live loadgen feeds epochs from
each shard manager's ``/healthz``; the sim feeds them directly from the
reconfiguration manager objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, ObjectId
from repro.shard.map import ShardMap


@dataclass
class ShardRoute:
    """One shard's routing entry."""

    shard: str
    proxies: Tuple[NodeId, ...]
    #: Last shard epoch the router observed (-1 = never observed).
    epoch: int = -1
    #: Round-robin cursor over :attr:`proxies`.
    cursor: int = 0

    def next_proxy(self) -> NodeId:
        proxy = self.proxies[self.cursor % len(self.proxies)]
        self.cursor += 1
        return proxy


@dataclass
class RoutingTable:
    """Per-shard routes plus refresh bookkeeping."""

    routes: Dict[str, ShardRoute] = field(default_factory=dict)
    #: Epoch-change refreshes performed since construction.
    refreshes: int = 0

    def entry(self, shard: str) -> ShardRoute:
        try:
            return self.routes[shard]
        except KeyError:
            raise ConfigurationError(f"no route for shard {shard!r}")

    def epochs(self) -> Dict[str, int]:
        return {name: route.epoch for name, route in self.routes.items()}


class ShardRouter:
    """Maps every object id to the proxy that should serve it."""

    def __init__(
        self,
        shard_map: ShardMap,
        proxies_by_shard: Dict[str, Sequence[NodeId]],
    ) -> None:
        missing = [
            name
            for name in shard_map.shard_names
            if not proxies_by_shard.get(name)
        ]
        if missing:
            raise ConfigurationError(
                f"router needs at least one proxy per shard; missing for "
                f"{', '.join(missing)}"
            )
        unknown = sorted(
            set(proxies_by_shard) - set(shard_map.shard_names)
        )
        if unknown:
            raise ConfigurationError(
                f"router given proxies for unknown shards: "
                f"{', '.join(unknown)}"
            )
        self.shard_map = shard_map
        self.table = RoutingTable(
            routes={
                name: ShardRoute(
                    shard=name, proxies=tuple(proxies_by_shard[name])
                )
                for name in shard_map.shard_names
            }
        )
        #: Total routing decisions served.
        self.routes_served = 0

    # -- hot path -------------------------------------------------------------

    def shard_of(self, object_id: ObjectId) -> str:
        return self.shard_map.shard_of(object_id)

    def route(self, object_id: ObjectId) -> NodeId:
        """The proxy that should serve ``object_id`` right now."""
        self.routes_served += 1
        return self.table.entry(self.shard_map.shard_of(object_id)).next_proxy()

    def proxies_of(self, shard: str) -> Tuple[NodeId, ...]:
        return self.table.entry(shard).proxies

    # -- refresh --------------------------------------------------------------

    def note_epoch(self, shard: str, epoch: int) -> bool:
        """Record a shard epoch observation; refresh the route on change.

        Returns ``True`` when the observation advanced the entry's epoch
        (and therefore reset its rotation cursor).  Stale or repeated
        observations are ignored, so any number of pollers can feed the
        router concurrently.
        """
        route = self.table.entry(shard)
        if epoch <= route.epoch:
            return False
        route.epoch = epoch
        route.cursor = 0
        self.table.refreshes += 1
        return True

    def note_epochs(self, epochs: Dict[str, int]) -> List[str]:
        """Bulk epoch feed; returns the shards whose routes refreshed."""
        return [
            shard
            for shard, epoch in sorted(epochs.items())
            if self.note_epoch(shard, epoch)
        ]

    @property
    def refreshes(self) -> int:
        return self.table.refreshes


#: Structural type the client seam expects: anything with ``route``.
class RouteSource:
    """Protocol-by-convention: ``route(object_id) -> NodeId``."""

    def route(
        self, object_id: ObjectId
    ) -> NodeId:  # pragma: no cover - interface
        raise NotImplementedError


__all__ = ["ShardRoute", "RoutingTable", "ShardRouter", "RouteSource"]
