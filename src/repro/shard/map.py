"""The keyspace partition: a consistent-hash map from object id to shard.

Every component that needs to know which shard owns a key — the client
router, the loadgen's per-shard history partitioner, the sim-level
sharded cluster — derives the answer from the same :class:`ShardMap`,
the same way every process derives placement from the same
:class:`~repro.sds.ring.PlacementRing`.  The map reuses the ring's
MD5-based ``_hash64`` so shard assignment is deterministic across
processes and Python hash seeds.

A consistent-hash ring (rather than ``hash(key) % S``) keeps the
partition stable under shard-count changes: growing from S to S+1 shards
moves only ~1/(S+1) of the keyspace, which is what makes future shard
splitting an incremental migration instead of a full reshuffle.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.types import ObjectId
from repro.sds.ring import _hash64


class ShardMap:
    """Immutable consistent-hash partition of the keyspace over shards."""

    def __init__(self, shard_names: Sequence[str], vnodes: int = 128) -> None:
        names = list(shard_names)
        if not names:
            raise ConfigurationError("shard map needs at least one shard")
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate shard names in shard map")
        if any(not name for name in names):
            raise ConfigurationError("shard names must be non-empty")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self._names: Tuple[str, ...] = tuple(names)
        self._index_by_name: Dict[str, int] = {
            name: index for index, name in enumerate(names)
        }
        points: List[Tuple[int, str]] = []
        for name in names:
            for point in range(vnodes):
                points.append((_hash64(f"shard:{name}#{point}"), name))
        points.sort()
        self._positions = [position for position, _name in points]
        self._owners = [name for _position, name in points]

    @property
    def shard_names(self) -> Tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def shard_of(self, object_id: ObjectId) -> str:
        """The shard owning ``object_id`` (clockwise successor walk)."""
        at = bisect.bisect_right(self._positions, _hash64(object_id))
        return self._owners[at % len(self._owners)]

    def index_of(self, object_id: ObjectId) -> int:
        """The owning shard's index in :attr:`shard_names`."""
        return self._index_by_name[self.shard_of(object_id)]

    def partition(
        self, object_ids: Sequence[ObjectId]
    ) -> Dict[str, List[ObjectId]]:
        """Group object ids by owning shard (every shard gets an entry)."""
        groups: Dict[str, List[ObjectId]] = {
            name: [] for name in self._names
        }
        for object_id in object_ids:
            groups[self.shard_of(object_id)].append(object_id)
        return groups


__all__ = ["ShardMap"]
