"""Fault-tolerant Reconfiguration Manager via primary-backup replication.

The paper presents the RM as logically centralized and notes that
"standard replication techniques, such as state-machine replication,
can be used to derive fault-tolerant implementations ... such that they
not become single points of failure" (Section 3).  This module supplies
that implementation: a ranked group of RM replicas where

* the lowest-ranked live replica acts as **primary** and runs
  Algorithm 2 exactly as the base class does;
* before starting a reconfiguration the primary persists its **intent**
  (the chosen cfg_no and plan) on the backups, and after completion it
  persists the resulting **state**;
* backups watch the primary through the eventually-perfect failure
  detector; when every better-ranked replica is suspected, the next
  replica **takes over**: it conservatively advances its epoch counter
  past anything the dead primary could have installed, then re-runs the
  pending intent (or re-installs the last known plan) as a fresh
  reconfiguration.

Safety rests on two observations.  First, the base protocol is safe from
*any* starting state as long as (a) epoch numbers only grow and (b) the
transition plan used intersects whatever quorums proxies may currently
be using.  (a) holds because a primary performs at most two epoch
changes per reconfiguration, so ``known_epoch + 2`` dominates anything
the crashed primary issued after its last update reached the backups.
(b) holds because proxies can only be using the last completed plan, the
pending intent, or their pairwise transition — and re-running the intent
from the last completed plan uses exactly that transition.  Second, a
false suspicion of the primary at worst creates two concurrent primaries
briefly; their reconfigurations are serialized by the storage tier's
monotone epochs, exactly like a stale proxy's operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Union

from repro.common.errors import ConfigurationError
from repro.common.types import NodeId
from repro.reconfig.manager import ReconfigurationManager, _CONTROL_BYTES
from repro.sds.quorum import QuorumPlan
from repro.sim.failure import CrashManager, FailureDetector
from repro.sim.kernel import Future, Simulator
from repro.sim.network import Envelope, Network

if TYPE_CHECKING:
    from repro.sds.cluster import SwiftCluster


@dataclass(frozen=True)
class IntentUpdate:
    """Primary -> backups: a reconfiguration to ``plan`` is starting."""

    cfg_no: int
    epoch_no: int
    plan: QuorumPlan


@dataclass(frozen=True)
class StateUpdate:
    """Primary -> backups: the reconfiguration concluded."""

    cfg_no: int
    epoch_no: int
    plan: QuorumPlan


class ReplicatedRMMember(ReconfigurationManager):
    """One replica of the fault-tolerant Reconfiguration Manager."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        proxies: list[NodeId],
        storage_nodes: list[NodeId],
        detector: FailureDetector,
        initial_plan: QuorumPlan,
        replication_degree: int,
        rank: int,
        member_ids: list[NodeId],
        suspect_poll_interval: float = 0.05,
    ) -> None:
        self._member_rank = rank
        self._member_ids = list(member_ids)
        super().__init__(
            sim,
            network,
            proxies=proxies,
            storage_nodes=storage_nodes,
            detector=detector,
            initial_plan=initial_plan,
            replication_degree=replication_degree,
            suspect_poll_interval=suspect_poll_interval,
            node_id=NodeId("reconfig-manager", rank),
        )
        self._is_primary = rank == 0
        self._pending_intent: Optional[IntentUpdate] = None
        self._monitor_started = False
        #: Number of takeovers this member performed (observability).
        self.takeovers = 0

        self.register_handler(IntentUpdate, self._on_intent_update)
        self.register_handler(StateUpdate, self._on_state_update)

    @property
    def rank(self) -> int:
        return self._member_rank

    @property
    def is_primary(self) -> bool:
        return self._is_primary

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        super().start()
        if not self._monitor_started and self._member_rank > 0:
            self._monitor_started = True
            self.spawn(
                self._monitor_primary(), name=f"{self.node_id}.monitor"
            )

    def _monitor_primary(self) -> Iterator[Future]:
        """Backup loop: take over when every better-ranked member died."""
        while self.alive and not self._is_primary:
            better = self._member_ids[: self._member_rank]
            if better and all(
                self._detector.suspect(member) for member in better
            ):
                yield from self._take_over()
                return
            yield self.sim.sleep(self._poll)

    def _take_over(self) -> Iterator[Future]:
        """Become primary and restore a consistent configuration."""
        self._is_primary = True
        self.takeovers += 1
        # The dead primary may have advanced past our last update by at
        # most one reconfiguration: two epoch changes and one cfg number.
        intent = self._pending_intent
        self._epoch_no += 2
        if intent is not None:
            self._cfg_no = max(self._cfg_no, intent.cfg_no)
            target_plan = intent.plan
        else:
            target_plan = self._current_plan
        # Re-running the target as a fresh reconfiguration both installs
        # it everywhere and flushes proxies stuck in a transition plan.
        yield from self.change_plan_body(target_plan)
        self._pending_intent = None

    # -- replication hooks --------------------------------------------------------

    def _on_plan_chosen(self, cfg_no: int, plan: QuorumPlan) -> None:
        update = IntentUpdate(
            cfg_no=cfg_no, epoch_no=self._epoch_no, plan=plan
        )
        self._broadcast_members(update)

    def _on_reconfiguration_complete(
        self, cfg_no: int, plan: QuorumPlan
    ) -> None:
        update = StateUpdate(
            cfg_no=cfg_no, epoch_no=self._epoch_no, plan=plan
        )
        self._broadcast_members(update)

    def _on_intent_update(self, envelope: Envelope) -> None:
        update: IntentUpdate = envelope.payload
        if update.cfg_no > self._cfg_no:
            self._pending_intent = update
            self._epoch_no = max(self._epoch_no, update.epoch_no)

    def _on_state_update(self, envelope: Envelope) -> None:
        update: StateUpdate = envelope.payload
        if update.cfg_no >= self._cfg_no:
            self._cfg_no = update.cfg_no
            self._epoch_no = max(self._epoch_no, update.epoch_no)
            self._current_plan = update.plan
            if (
                self._pending_intent is not None
                and self._pending_intent.cfg_no <= update.cfg_no
            ):
                self._pending_intent = None

    def _broadcast_members(
        self, payload: Union[IntentUpdate, StateUpdate]
    ) -> None:
        for member in self._member_ids:
            if member != self.node_id:
                self.send(member, payload, size=_CONTROL_BYTES)

    # -- request guards ----------------------------------------------------------

    def _on_fine_rec(self, envelope: Envelope) -> Iterator[Future]:
        if not self._is_primary:
            return iter(())  # backups ignore AM requests
        return super()._on_fine_rec(envelope)

    def _on_coarse_rec(self, envelope: Envelope) -> Iterator[Future]:
        if not self._is_primary:
            return iter(())  # backups ignore AM requests
        return super()._on_coarse_rec(envelope)


class ReplicatedReconfigurationManager:
    """Facade over a ranked group of RM replicas."""

    def __init__(
        self,
        members: list[ReplicatedRMMember],
        crashes: Optional[CrashManager] = None,
    ) -> None:
        if not members:
            raise ConfigurationError("need at least one RM member")
        self.members = members
        self._crashes = crashes

    @property
    def member_ids(self) -> list[NodeId]:
        return [member.node_id for member in self.members]

    @property
    def primary(self) -> Optional[ReplicatedRMMember]:
        for member in self.members:
            if member.alive and member.is_primary:
                return member
        return None

    def crash_primary(self) -> None:
        """Test hook: fail-stop the current primary.

        Goes through the cluster's crash manager so the failure detector
        (and hence the backups) eventually learn about it.
        """
        primary = self.primary
        if primary is None:
            raise ConfigurationError("no live primary to crash")
        if self._crashes is not None:
            self._crashes.crash(primary.node_id)
        else:
            primary.crash()


def attach_replicated_manager(
    cluster: "SwiftCluster",
    replicas: int = 3,
    suspect_poll_interval: float = 0.05,
) -> ReplicatedReconfigurationManager:
    """Create, register and start a replicated RM group for a cluster."""
    if replicas < 1:
        raise ConfigurationError("need at least one replica")
    member_ids = [NodeId("reconfig-manager", rank) for rank in range(replicas)]
    members: list[ReplicatedRMMember] = []
    for rank in range(replicas):
        member = ReplicatedRMMember(
            cluster.sim,
            cluster.network,
            proxies=[proxy.node_id for proxy in cluster.proxies],
            storage_nodes=[node.node_id for node in cluster.storage_nodes],
            detector=cluster.detector,
            initial_plan=cluster.initial_plan,
            replication_degree=cluster.config.replication_degree,
            rank=rank,
            member_ids=member_ids,
            suspect_poll_interval=suspect_poll_interval,
        )
        member.start()
        cluster._nodes_by_id[member.node_id] = member
        members.append(member)
    return ReplicatedReconfigurationManager(members, crashes=cluster.crashes)
