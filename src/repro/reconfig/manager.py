"""The Reconfiguration Manager: Algorithm 2 of the paper.

The RM changes the quorum plan used by the proxies without ever blocking
client operations, while preserving **Dynamic Quorum Consistency**: the
quorum of a read intersects the write quorum of any concurrent write or,
absent concurrent writes, of the last completed write.

The failure-free path is a two-phase protocol with the proxies:

1. **NEWQ** — every proxy switches to the *transition* plan (pairwise max
   of old and new quorums, intersecting both) and drains its pending
   old-quorum operations, then acks.
2. **CONFIRM** — every proxy installs the new plan and acks.

If any proxy is suspected during either phase, the RM performs an *epoch
change* on the storage tier: the epoch counter is bumped and broadcast
(NEWEP); once a large-enough quorum of storage nodes commits to reject
older epochs, any operation a stale proxy issues is guaranteed to gather
a NACK and be re-executed with the new plan.  The epoch-change quorum is
``max(oldR, oldW)`` after phase 1 and ``max(newR, newW)`` after phase 2
(Section 5.3's correctness argument) — per-object plans use the maxima
over the whole plan.

The protocol is *indulgent*: false suspicions can only force operation
re-execution, never a safety violation, and the reconfiguration always
terminates given the assumed eventually-perfect failure detector.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Generator,
    Iterator,
    Mapping,
    Optional,
    Union,
)

from repro.common.errors import ConfigurationError
from repro.common.types import NodeId, NodeKind, ObjectId, QuorumConfig
from repro.obs.context import Observability
from repro.obs.trace import Span
from repro.sds.messages import (
    AckConfirm,
    AckNewEpoch,
    AckNewQuorum,
    AckRec,
    CoarseRec,
    Confirm,
    FineRec,
    NewEpoch,
    NewQuorum,
)
from repro.sds.quorum import QuorumPlan
from repro.net.transport import Transport
from repro.sim.failure import SuspicionSource
from repro.sim.kernel import Future, Process, Simulator
from repro.sim.network import Envelope
from repro.sim.node import Node
from repro.sim.primitives import Mutex, any_of

if TYPE_CHECKING:
    from repro.sds.cluster import SwiftCluster

#: Size of control-plane messages on the wire, bytes.
_CONTROL_BYTES = 512

#: The two retransmittable phase messages of Algorithm 2.
_PhaseMessage = Union[NewQuorum, Confirm]


class ReconfigurationManager(Node):
    """Coordinates quorum reconfigurations (Figure 4's "Reconfiguration
    Manager" box)."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        proxies: list[NodeId],
        storage_nodes: list[NodeId],
        detector: SuspicionSource,
        initial_plan: QuorumPlan,
        replication_degree: int,
        suspect_poll_interval: float = 0.05,
        retransmit_interval: float = 0.5,
        node_id: Optional[NodeId] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(
            sim,
            network,
            node_id or NodeId.singleton(NodeKind.RECONFIG_MANAGER),
        )
        if not proxies:
            raise ConfigurationError("RM needs at least one proxy")
        if not storage_nodes:
            raise ConfigurationError("RM needs at least one storage node")
        self._proxies = list(proxies)
        self._storage_nodes = list(storage_nodes)
        self._detector = detector
        self._replication_degree = replication_degree
        self._poll = suspect_poll_interval
        # NEWQ/CONFIRM/NEWEP are retransmitted to unresponsive,
        # unsuspected nodes at this cadence: under message loss the
        # two-phase protocol would otherwise wait forever on an ack whose
        # request (or reply) was dropped.  All three messages are
        # idempotent at their receivers.
        self._retransmit = max(retransmit_interval, suspect_poll_interval)

        # Algorithm 2 state.
        self._epoch_no = 0
        self._cfg_no = 0
        self._current_plan = initial_plan.validate_strict(replication_degree)
        self._mutex = Mutex(sim)

        # Ack collection, keyed by the awaited epoch number.
        self._newq_acks: set[NodeId] = set()
        self._confirm_acks: set[NodeId] = set()
        self._epoch_acks: dict[int, set[NodeId]] = {}
        self._epoch_waiters: dict[int, tuple[int, Future]] = {}

        # Duplicate suppression for retransmitted AM requests.
        self._acked_fine_round = 0
        self._fine_in_progress: set[int] = set()
        self._coarse_in_progress: set[QuorumConfig] = set()

        # Observability.
        self._obs = obs
        self.reconfigurations_completed = 0
        self.epoch_changes = 0
        self.retransmissions = 0
        self._started_callbacks: list[
            Callable[[int, QuorumPlan], None]
        ] = []

        self.register_handler(AckNewQuorum, self._on_ack_newq)
        self.register_handler(AckConfirm, self._on_ack_confirm)
        self.register_handler(AckNewEpoch, self._on_ack_new_epoch)
        self.register_handler(FineRec, self._on_fine_rec)
        self.register_handler(CoarseRec, self._on_coarse_rec)

    # -- public views --------------------------------------------------------

    @property
    def epoch_no(self) -> int:
        return self._epoch_no

    @property
    def cfg_no(self) -> int:
        return self._cfg_no

    @property
    def current_plan(self) -> QuorumPlan:
        return self._current_plan

    @property
    def reconfiguring(self) -> bool:
        return self._mutex.locked

    # -- public API (the "Manual Reconfiguration" arrow of Figure 4) -----------

    def change_configuration(self, plan: QuorumPlan) -> Process:
        """Install a new quorum plan; returns the coordinating process.

        Callers inside the simulation ``yield`` the returned process to
        wait for completion; test harnesses use
        ``sim.run_process(rm.change_plan_body(plan))`` instead.
        """
        plan.validate_strict(self._replication_degree)
        return self.spawn(
            self.change_plan_body(plan),
            name=f"{self.node_id}.reconfig-{self._cfg_no + 1}",
        )

    def change_global(self, quorum: QuorumConfig) -> Process:
        """Install a uniform plan (the Section 5.2 global protocol)."""
        return self.change_configuration(QuorumPlan.uniform(quorum))

    def on_reconfiguration_started(
        self, callback: Callable[[int, QuorumPlan], None]
    ) -> None:
        """Register ``callback(cfg_no, plan)`` for the start of every
        reconfiguration — the hook nemesis schedules use to land crashes
        inside the two-phase window."""
        self._started_callbacks.append(callback)

    def change_overrides(
        self, overrides: Mapping[ObjectId, QuorumConfig]
    ) -> Process:
        """Install per-object overrides on top of the current plan."""
        updates = dict(overrides)
        return self.spawn(
            self._reconfigure(lambda current: current.with_overrides(updates)),
            name=f"{self.node_id}.reconfig-overrides",
        )

    def change_default(self, quorum: QuorumConfig) -> Process:
        """Change only the tail (default) configuration."""
        return self.spawn(
            self._reconfigure(lambda current: current.with_default(quorum)),
            name=f"{self.node_id}.reconfig-default",
        )

    # -- Algorithm 2 ------------------------------------------------------------

    def change_plan_body(
        self, new_plan: QuorumPlan
    ) -> Generator[Future, Any, int]:
        """The changeConfiguration procedure (Algorithm 2 lines 5-21)."""
        result = yield from self._reconfigure(lambda _current: new_plan)
        return result

    def _reconfigure(
        self, build_plan: Callable[[QuorumPlan], QuorumPlan]
    ) -> Generator[Future, Any, int]:
        """Serialized reconfiguration; the new plan is derived from the
        plan current *at lock-acquisition time* so queued reconfigurations
        compose instead of clobbering each other."""
        yield self._mutex.acquire()
        obs = self._obs
        span: Optional[Span] = None
        started_at = self.sim.now
        try:
            old_plan = self._current_plan
            new_plan = build_plan(old_plan)
            new_plan.validate_strict(self._replication_degree)
            self._cfg_no += 1
            cfg_no = self._cfg_no
            if obs is not None:
                span = obs.tracer.start_span(
                    "reconfig.change",
                    category="reconfig",
                    node=str(self.node_id),
                    cfg_no=cfg_no,
                )
            # Hook for fault-tolerant subclasses: persist the intent
            # before any proxy observes the new configuration.
            self._on_plan_chosen(cfg_no, new_plan)
            for callback in list(self._started_callbacks):
                callback(cfg_no, new_plan)

            # Phase 1: NEWQ -> proxies move to the transition quorum.
            self._newq_acks = set()
            newq = NewQuorum(
                epoch_no=self._epoch_no, cfg_no=cfg_no, plan=new_plan
            )
            self._broadcast_proxies(newq)
            all_acked = yield from self._await_proxy_acks(
                self._newq_acks, newq
            )
            if not all_acked:
                # Line 12-14: a proxy is suspected — fence the old epoch.
                transition = old_plan.transition_with(new_plan)
                yield from self._epoch_change(
                    quorum=max(old_plan.max_read, old_plan.max_write),
                    plan=transition,
                    cfg_no=cfg_no,
                    parent=span,
                )

            # Phase 2: CONFIRM -> proxies install the new quorum.
            self._confirm_acks = set()
            confirm = Confirm(
                epoch_no=self._epoch_no, cfg_no=cfg_no, plan=new_plan
            )
            self._broadcast_proxies(confirm)
            all_acked = yield from self._await_proxy_acks(
                self._confirm_acks, confirm
            )
            if not all_acked:
                # Line 18-19: fence again, now with the new quorum sizes.
                yield from self._epoch_change(
                    quorum=max(new_plan.max_read, new_plan.max_write),
                    plan=new_plan,
                    cfg_no=cfg_no,
                    parent=span,
                )

            self._current_plan = new_plan
            self.reconfigurations_completed += 1
            if obs is not None:
                assert span is not None
                span.finish(status="ok")
                obs.reconfig_change.observe(self.sim.now - started_at)
            self._on_reconfiguration_complete(cfg_no, new_plan)
            return cfg_no
        finally:
            self._mutex.release()

    def _on_plan_chosen(self, cfg_no: int, plan: QuorumPlan) -> None:
        """Subclass hook: a reconfiguration to ``plan`` is about to start."""

    def _on_reconfiguration_complete(
        self, cfg_no: int, plan: QuorumPlan
    ) -> None:
        """Subclass hook: the reconfiguration concluded successfully."""

    def _await_proxy_acks(
        self, acks: set[NodeId], payload: _PhaseMessage
    ) -> Generator[Future, Any, bool]:
        """Wait until every proxy acked or is suspected.

        Returns True when *all* proxies acked, False when at least one is
        (possibly falsely) suspected — the caller must then trigger an
        epoch change.  ``payload`` (the NEWQ or CONFIRM being awaited) is
        retransmitted to missing, unsuspected proxies so a lost message
        or lost ack delays the phase instead of wedging it.
        """
        since_send = 0.0
        while True:
            missing = [
                proxy for proxy in self._proxies if proxy not in acks
            ]
            if not missing:
                return True
            if all(self._detector.suspect(proxy) for proxy in missing):
                return False
            yield self.sim.sleep(self._poll)
            since_send += self._poll
            if since_send >= self._retransmit:
                since_send = 0.0
                for proxy in missing:
                    if proxy in acks or self._detector.suspect(proxy):
                        continue
                    self.retransmissions += 1
                    self.send(proxy, payload, size=_CONTROL_BYTES)

    def _epoch_change(
        self,
        quorum: int,
        plan: QuorumPlan,
        cfg_no: int,
        parent: Optional[Span] = None,
    ) -> Iterator[Future]:
        """The epochChange procedure (Algorithm 2 lines 22-25).

        The epoch fence also fences the lease fast path (invariant I7):
        storage nodes clear their whole per-object grant table when they
        adopt the NEWEP, and proxies drop all held leases on NEWQ /
        CONFIRM / any epoch adoption — so no lease minted under the old
        configuration can serve a single-replica read once quorums have
        moved.  Nothing here needs to know about leases; the fencing
        lives in ``StorageNode._on_new_epoch`` and the proxy's
        ``_drop_all_leases`` call sites.
        """
        self._epoch_no += 1
        self.epoch_changes += 1
        epoch_no = self._epoch_no
        span: Optional[Span] = None
        if self._obs is not None:
            span = self._obs.tracer.start_span(
                "reconfig.epoch_change",
                category="reconfig",
                node=str(self.node_id),
                parent=parent.context() if parent is not None else None,
                epoch_no=epoch_no,
                quorum=quorum,
            )
        self._epoch_acks[epoch_no] = set()
        done = self.sim.future(name=f"epoch-{epoch_no}.quorum")
        self._epoch_waiters[epoch_no] = (quorum, done)
        message = NewEpoch(epoch_no=epoch_no, cfg_no=cfg_no, plan=plan)
        for node in self._storage_nodes:
            self.send(node, message, size=_CONTROL_BYTES)
        # Storage nodes re-ack duplicate NEWEPs for adopted epochs, so
        # retransmitting until an ack quorum forms tolerates lost NEWEPs
        # and lost acks alike.
        while not done.done:
            yield any_of(
                self.sim, [done, self.sim.sleep(self._retransmit)]
            )
            if done.done:
                break
            for node in self._storage_nodes:
                if node in self._epoch_acks[epoch_no]:
                    continue
                self.retransmissions += 1
                self.send(node, message, size=_CONTROL_BYTES)
        del self._epoch_waiters[epoch_no]
        del self._epoch_acks[epoch_no]
        if span is not None:
            span.finish(status="ok")

    # -- ack handlers ---------------------------------------------------------------

    def _on_ack_newq(self, envelope: Envelope) -> None:
        ack: AckNewQuorum = envelope.payload
        if ack.epoch_no == self._epoch_no:
            self._newq_acks.add(ack.proxy)

    def _on_ack_confirm(self, envelope: Envelope) -> None:
        ack: AckConfirm = envelope.payload
        if ack.epoch_no == self._epoch_no:
            self._confirm_acks.add(ack.proxy)

    def _on_ack_new_epoch(self, envelope: Envelope) -> None:
        ack: AckNewEpoch = envelope.payload
        acks = self._epoch_acks.get(ack.epoch_no)
        if acks is None:
            return
        acks.add(ack.replica)
        waiter = self._epoch_waiters.get(ack.epoch_no)
        if waiter is not None and len(acks) >= waiter[0]:
            quorum, future = waiter
            if not future.done:
                future.resolve(None)

    # -- Autonomic Manager entry points (Algorithm 1 lines 12, 22) --------------------

    def _on_fine_rec(self, envelope: Envelope) -> Iterator[Future]:
        request: FineRec = envelope.payload
        if request.round_no <= self._acked_fine_round:
            # Already installed (the earlier ACKREC was lost): re-ack.
            self.send(
                envelope.sender,
                AckRec(round_no=request.round_no),
                size=_CONTROL_BYTES,
            )
            return
        if request.round_no in self._fine_in_progress:
            # Retransmitted while the original is still reconfiguring:
            # the original will ack on completion.
            return
        self._fine_in_progress.add(request.round_no)
        updates = dict(request.quorums)
        try:
            yield from self._reconfigure(
                lambda current: current.with_overrides(updates)
            )
        finally:
            self._fine_in_progress.discard(request.round_no)
        self._acked_fine_round = max(
            self._acked_fine_round, request.round_no
        )
        self.send(
            envelope.sender,
            AckRec(round_no=request.round_no),
            size=_CONTROL_BYTES,
        )

    def _on_coarse_rec(self, envelope: Envelope) -> Iterator[Future]:
        request: CoarseRec = envelope.payload
        if request.quorum in self._coarse_in_progress:
            # Retransmitted duplicate of a running request: drop it.  If
            # the eventual ack is lost too, a later retransmission will
            # re-run the (idempotent) reconfiguration and re-ack.
            return
        # A per-quorum marker set, not a single slot: two overlapping
        # coarse requests (the second queued on the reconfiguration
        # mutex) must each keep their own duplicate-suppression marker —
        # a shared slot is cleared by whichever finishes first, letting a
        # retransmission of the still-running request start a third,
        # redundant reconfiguration.
        self._coarse_in_progress.add(request.quorum)
        try:
            yield from self._reconfigure(
                lambda current: current.with_default(request.quorum)
            )
        finally:
            self._coarse_in_progress.discard(request.quorum)
        self.send(envelope.sender, AckRec(round_no=-1), size=_CONTROL_BYTES)

    def _broadcast_proxies(self, payload: _PhaseMessage) -> None:
        for proxy in self._proxies:
            self.send(proxy, payload, size=_CONTROL_BYTES)


def attach_reconfiguration_manager(
    cluster: "SwiftCluster", suspect_poll_interval: float = 0.05
) -> ReconfigurationManager:
    """Create, register and start an RM for a :class:`SwiftCluster`."""
    manager = ReconfigurationManager(
        cluster.sim,
        cluster.network,
        proxies=[proxy.node_id for proxy in cluster.proxies],
        storage_nodes=[node.node_id for node in cluster.storage_nodes],
        detector=cluster.detector,
        initial_plan=cluster.initial_plan,
        replication_degree=cluster.config.replication_degree,
        suspect_poll_interval=suspect_poll_interval,
        obs=getattr(cluster, "obs", None),
    )
    manager.start()
    cluster._nodes_by_id[manager.node_id] = manager
    return manager
