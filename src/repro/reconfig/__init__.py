"""Quorum reconfiguration: the non-blocking protocol (Section 5) and the
stop-the-world baseline used by ablation A3."""

from repro.reconfig.blocking import (
    BlockingReconfigurationManager,
    attach_blocking_manager,
)
from repro.reconfig.manager import (
    ReconfigurationManager,
    attach_reconfiguration_manager,
)
from repro.reconfig.replicated import (
    ReplicatedReconfigurationManager,
    ReplicatedRMMember,
    attach_replicated_manager,
)

__all__ = [
    "BlockingReconfigurationManager",
    "ReconfigurationManager",
    "ReplicatedRMMember",
    "ReplicatedReconfigurationManager",
    "attach_blocking_manager",
    "attach_replicated_manager",
    "attach_reconfiguration_manager",
]
