"""Stop-the-world reconfiguration baseline (ablation A3).

The obvious alternative to Q-OPT's non-blocking two-phase protocol is to
halt the data plane while switching configurations: pause every proxy,
wait for all in-flight operations to drain, install the new plan, and
resume.  Trivially safe — no operation is ever concurrent with the
switch — but it converts every reconfiguration into a service outage
whose length is the drain time plus two control round-trips.  The E6
benchmark runs both managers on identical workloads to quantify the
difference.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Iterator

from repro.common.types import NodeId, QuorumConfig
from repro.sds.messages import (
    AckConfirm,
    AckPause,
    Confirm,
    PauseProxy,
    ResumeProxy,
)
from repro.sds.quorum import QuorumPlan
from repro.sim.failure import FailureDetector
from repro.sim.kernel import Future, Process, Simulator
from repro.sim.network import Envelope, Network
from repro.sim.node import Node
from repro.sim.primitives import Mutex

if TYPE_CHECKING:
    from repro.sds.cluster import SwiftCluster

_CONTROL_BYTES = 512


class BlockingReconfigurationManager(Node):
    """Pause-switch-resume reconfiguration coordinator."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        proxies: list[NodeId],
        detector: FailureDetector,
        initial_plan: QuorumPlan,
        replication_degree: int,
        suspect_poll_interval: float = 0.05,
    ) -> None:
        super().__init__(
            sim, network, NodeId("blocking-rm", 0)
        )
        self._proxies = list(proxies)
        self._detector = detector
        self._replication_degree = replication_degree
        self._current_plan = initial_plan.validate_strict(replication_degree)
        self._poll = suspect_poll_interval
        self._mutex = Mutex(sim)
        self._cfg_no = 0
        self._token_seq = itertools.count(1)
        self._pause_acks: set[NodeId] = set()
        self._confirm_acks: set[NodeId] = set()
        self._token = 0
        #: Total simulated time the data plane spent paused.
        self.total_pause_time = 0.0
        self.reconfigurations_completed = 0

        self.register_handler(AckPause, self._on_ack_pause)
        self.register_handler(AckConfirm, self._on_ack_confirm)

    @property
    def current_plan(self) -> QuorumPlan:
        return self._current_plan

    @property
    def cfg_no(self) -> int:
        return self._cfg_no

    def change_global(self, quorum: QuorumConfig) -> Process:
        return self.spawn(
            self.change_plan_body(QuorumPlan.uniform(quorum)),
            name=f"{self.node_id}.reconfig",
        )

    def change_plan_body(
        self, new_plan: QuorumPlan
    ) -> Generator[Future, Any, int]:
        new_plan.validate_strict(self._replication_degree)
        yield self._mutex.acquire()
        try:
            pause_started = self.sim.now
            self._cfg_no += 1
            self._token = next(self._token_seq)
            # Stop the world: every proxy closes its gate and drains.
            self._pause_acks = set()
            for proxy in self._proxies:
                self.send(
                    proxy, PauseProxy(token=self._token), size=_CONTROL_BYTES
                )
            yield from self._await(self._pause_acks)
            # Install the new plan while nothing is running.
            self._confirm_acks = set()
            for proxy in self._proxies:
                self.send(
                    proxy,
                    Confirm(
                        epoch_no=0, cfg_no=self._cfg_no, plan=new_plan
                    ),
                    size=_CONTROL_BYTES,
                )
            yield from self._await(self._confirm_acks)
            # Resume the data plane.
            for proxy in self._proxies:
                self.send(
                    proxy, ResumeProxy(token=self._token), size=_CONTROL_BYTES
                )
            self._current_plan = new_plan
            self.total_pause_time += self.sim.now - pause_started
            self.reconfigurations_completed += 1
            return self._cfg_no
        finally:
            self._mutex.release()

    def _await(self, acks: set[NodeId]) -> Iterator[Future]:
        while True:
            missing = [p for p in self._proxies if p not in acks]
            if not missing:
                return
            if all(self._detector.suspect(p) for p in missing):
                return
            yield self.sim.sleep(self._poll)

    def _on_ack_pause(self, envelope: Envelope) -> None:
        ack: AckPause = envelope.payload
        if ack.token == self._token:
            self._pause_acks.add(ack.proxy)

    def _on_ack_confirm(self, envelope: Envelope) -> None:
        ack: AckConfirm = envelope.payload
        self._confirm_acks.add(ack.proxy)


def attach_blocking_manager(
    cluster: "SwiftCluster",
) -> BlockingReconfigurationManager:
    """Create, register and start a blocking RM for a cluster."""
    manager = BlockingReconfigurationManager(
        cluster.sim,
        cluster.network,
        proxies=[proxy.node_id for proxy in cluster.proxies],
        detector=cluster.detector,
        initial_plan=cluster.initial_plan,
        replication_degree=cluster.config.replication_degree,
    )
    manager.start()
    cluster._nodes_by_id[manager.node_id] = manager
    return manager
