"""AdaBoost.M1 over decision trees — C5.0's signature boosting mode.

C5.0's main improvement over C4.5 is adaptive boosting.  This module
implements the classic AdaBoost.M1 scheme on top of
:class:`~repro.oracle.decision_tree.DecisionTreeClassifier` (which
supports the per-sample weights boosting needs).  Used by the Oracle as
an optional higher-accuracy model and by the E4 ablation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.common.errors import DatasetError, NotFittedError
from repro.oracle.decision_tree import DecisionTreeClassifier


class BoostedTreeClassifier:
    """AdaBoost.M1 ensemble of gain-ratio trees."""

    def __init__(
        self,
        n_rounds: int = 10,
        max_depth: int = 6,
        min_samples_split: int = 4,
        prune: bool = True,
    ) -> None:
        if n_rounds < 1:
            raise DatasetError("n_rounds must be >= 1")
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.prune = prune
        self._trees: list[DecisionTreeClassifier] = []
        self._alphas: list[float] = []
        self._classes: Optional[np.ndarray] = None

    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
    ) -> "BoostedTreeClassifier":
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        if len(X) == 0:
            raise DatasetError("cannot fit on an empty dataset")
        if len(X) != len(y):
            raise DatasetError("features/labels length mismatch")
        self._classes = np.unique(y)
        self._trees = []
        self._alphas = []
        n = len(X)
        weights = np.full(n, 1.0 / n)
        for _round in range(self.n_rounds):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                prune=self.prune,
            )
            tree.fit(X, y, sample_weight=weights)
            predictions = np.asarray(tree.predict(X))
            miss = predictions != y
            error = float(weights[miss].sum())
            if error <= 0:
                # Perfect round: keep it with a large but finite vote and
                # stop (AdaBoost's epsilon=0 degenerate case).
                self._trees.append(tree)
                self._alphas.append(10.0)
                break
            if error >= 0.5:
                # Weak learner no better than chance — AdaBoost.M1 stops.
                if not self._trees:
                    self._trees.append(tree)
                    self._alphas.append(1.0)
                break
            alpha = 0.5 * math.log((1.0 - error) / error)
            self._trees.append(tree)
            self._alphas.append(alpha)
            weights = weights * np.exp(
                np.where(miss, alpha, -alpha)
            )
            weights /= weights.sum()
        return self

    def predict_one(self, features: Sequence[float]) -> int:
        if not self._trees:
            raise NotFittedError("BoostedTreeClassifier is not fitted")
        votes: dict[int, float] = {}
        for tree, alpha in zip(self._trees, self._alphas):
            label = tree.predict_one(features)
            votes[label] = votes.get(label, 0.0) + alpha
        return max(votes.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def predict(self, features: Sequence[Sequence[float]]) -> list[int]:
        return [self.predict_one(row) for row in features]

    @property
    def fitted(self) -> bool:
        return bool(self._trees)

    @property
    def rounds_used(self) -> int:
        return len(self._trees)
