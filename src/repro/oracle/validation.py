"""Model validation: k-fold cross-validation over the training set.

Besides plain accuracy, the scorer reports two metrics better matched to
what Q-OPT cares about:

* **within-one accuracy** — predictions off by at most one quorum size
  (neighbouring configurations usually perform almost identically);
* **mean normalized throughput** — the throughput the predicted
  configuration actually achieves, relative to the optimum.  This is the
  paper's headline metric ("throughput that is only slightly lower than
  when using the optimal configuration").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import DatasetError
from repro.oracle.dataset import TrainingSet

#: A model factory: () -> object with fit(X, y) and predict_one(x).
ModelFactory = Callable[[], object]


@dataclass(frozen=True)
class ValidationReport:
    """Aggregate scores over all cross-validation folds."""

    model_name: str
    accuracy: float
    within_one_accuracy: float
    mean_normalized_throughput: float
    worst_normalized_throughput: float
    folds: int

    def row(self) -> tuple[str, str, str, str, str]:
        """Formatted cells for the E4 results table."""
        return (
            self.model_name,
            f"{self.accuracy * 100:.1f}%",
            f"{self.within_one_accuracy * 100:.1f}%",
            f"{self.mean_normalized_throughput * 100:.1f}%",
            f"{self.worst_normalized_throughput * 100:.1f}%",
        )


def k_fold_indices(
    n: int, folds: int, seed: int = 0
) -> list[tuple[list[int], list[int]]]:
    """Shuffled (train, test) index pairs for k-fold cross-validation."""
    if folds < 2:
        raise DatasetError("need at least 2 folds")
    if n < folds:
        raise DatasetError(f"cannot split {n} examples into {folds} folds")
    indices = list(range(n))
    random.Random(seed).shuffle(indices)
    buckets: list[list[int]] = [[] for _ in range(folds)]
    for position, index in enumerate(indices):
        buckets[position % folds].append(index)
    splits = []
    for fold in range(folds):
        test = buckets[fold]
        train = [i for other in range(folds) if other != fold for i in buckets[other]]
        splits.append((train, test))
    return splits


def cross_validate(
    dataset: TrainingSet,
    model_factory: ModelFactory,
    model_name: str = "model",
    folds: int = 10,
    seed: int = 0,
) -> ValidationReport:
    """Score a model family with k-fold cross-validation."""
    correct = 0
    within_one = 0
    total = 0
    normalized: list[float] = []
    for train_idx, test_idx in k_fold_indices(len(dataset), folds, seed):
        train = dataset.subset(train_idx)
        model = model_factory()
        model.fit(train.features, train.labels)
        for index in test_idx:
            example = dataset.examples[index]
            predicted = model.predict_one(example.features)
            total += 1
            if predicted == example.best_write_quorum:
                correct += 1
            if abs(predicted - example.best_write_quorum) <= 1:
                within_one += 1
            if predicted in example.throughputs:
                normalized.append(example.normalized_throughput(predicted))
            else:
                normalized.append(0.0)
    return ValidationReport(
        model_name=model_name,
        accuracy=correct / total,
        within_one_accuracy=within_one / total,
        mean_normalized_throughput=sum(normalized) / len(normalized),
        worst_normalized_throughput=min(normalized),
        folds=folds,
    )


def compare_models(
    dataset: TrainingSet,
    factories: Sequence[tuple[str, ModelFactory]],
    folds: int = 10,
    seed: int = 0,
) -> list[ValidationReport]:
    """Cross-validate several model families on the same splits."""
    return [
        cross_validate(dataset, factory, model_name=name, folds=folds, seed=seed)
        for name, factory in factories
    ]
