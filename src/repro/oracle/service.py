"""The Oracle: Q-OPT's machine-learning quorum predictor (Figure 4).

Two layers:

* :class:`QuorumOracle` — the in-process predictor: a trained model plus
  the user's fault-tolerance constraints on the write-quorum range
  (Section 3: the optimizer respects "user defined constraints on the
  minimum/maximum sizes of the read and write quorums").  The prototype
  follows the paper in predicting only W and deriving R = N - W + 1.
* :class:`OracleNode` — the message-level wrapper spoken to by the
  Autonomic Manager (NEWSTATS -> NEWQUORUMS, TAILSTATS -> TAILQUORUM).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.mva import MvaThroughputModel
from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError, NotFittedError
from repro.common.types import NodeId, NodeKind, ObjectId, QuorumConfig
from repro.oracle.dataset import TrainingSet, generate_training_set
from repro.oracle.decision_tree import DecisionTreeClassifier
from repro.oracle.features import feature_vector
from repro.sds.messages import (
    NewQuorums,
    NewStats,
    TailQuorum,
    TailStats,
)
from repro.sim.kernel import Simulator
from repro.sim.network import Envelope, Network
from repro.sim.node import Node

#: Size of control-plane messages on the wire, bytes.
_CONTROL_BYTES = 512


class QuorumOracle:
    """Predicts the best write-quorum size for a workload profile."""

    def __init__(
        self,
        replication_degree: int,
        model: Optional[object] = None,
        min_write_quorum: int = 1,
        max_write_quorum: Optional[int] = None,
    ) -> None:
        if replication_degree < 1:
            raise ConfigurationError("replication_degree must be >= 1")
        upper = max_write_quorum or replication_degree
        if not 1 <= min_write_quorum <= upper <= replication_degree:
            raise ConfigurationError(
                "write-quorum bounds must satisfy "
                f"1 <= {min_write_quorum} <= {upper} <= {replication_degree}"
            )
        self.replication_degree = replication_degree
        self.min_write_quorum = min_write_quorum
        self.max_write_quorum = upper
        self.model = model or DecisionTreeClassifier()
        #: Number of predictions served (observability).
        self.predictions = 0

    # -- training --------------------------------------------------------------

    def train(self, dataset: TrainingSet) -> "QuorumOracle":
        self.model.fit(dataset.features, dataset.labels)
        return self

    @classmethod
    def trained_default(
        cls,
        cluster_config: Optional[ClusterConfig] = None,
        min_write_quorum: int = 1,
        max_write_quorum: Optional[int] = None,
        model: Optional[object] = None,
    ) -> "QuorumOracle":
        """An oracle trained on the default ~170-workload sweep.

        Ground-truth labels come from the MVA companion model of the
        given cluster configuration — the analogue of the paper's offline
        training measurements.
        """
        config = (cluster_config or ClusterConfig()).validate()
        dataset = generate_training_set(model=MvaThroughputModel(config))
        oracle = cls(
            replication_degree=config.replication_degree,
            model=model,
            min_write_quorum=min_write_quorum,
            max_write_quorum=max_write_quorum,
        )
        return oracle.train(dataset)

    # -- prediction -------------------------------------------------------------

    def predict_write_quorum(self, write_ratio: float, mean_size: float) -> int:
        """Best W for the profile, clamped to the user's constraints."""
        if not getattr(self.model, "fitted", False):
            raise NotFittedError("QuorumOracle's model is not trained")
        self.predictions += 1
        raw = self.model.predict_one(feature_vector(write_ratio, mean_size))
        return max(self.min_write_quorum, min(self.max_write_quorum, int(raw)))

    def predict_config(
        self, write_ratio: float, mean_size: float
    ) -> QuorumConfig:
        """Best (R, W): the paper derives R = N - W + 1 (Section 4)."""
        write = self.predict_write_quorum(write_ratio, mean_size)
        return QuorumConfig.from_write(write, self.replication_degree)


class OracleNode(Node):
    """Message-level Oracle spoken to by the Autonomic Manager."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        oracle: QuorumOracle,
        node_id: Optional[NodeId] = None,
    ) -> None:
        # One oracle per shard in sharded deployments; the singleton id
        # is only the single-ring default.
        super().__init__(
            sim, network, node_id or NodeId.singleton(NodeKind.ORACLE)
        )
        self.oracle = oracle
        self.register_handler(NewStats, self._on_new_stats)
        self.register_handler(TailStats, self._on_tail_stats)

    def _on_new_stats(self, envelope: Envelope) -> None:
        request: NewStats = envelope.payload
        quorums: dict[ObjectId, QuorumConfig] = {}
        for stats in request.stats:
            if stats.accesses == 0:
                continue
            quorums[stats.object_id] = self.oracle.predict_config(
                stats.write_ratio, stats.mean_size
            )
        self.send(
            envelope.sender,
            NewQuorums(round_no=request.round_no, quorums=quorums),
            size=_CONTROL_BYTES + 32 * len(quorums),
        )

    def _on_tail_stats(self, envelope: Envelope) -> None:
        request: TailStats = envelope.payload
        stats = request.stats
        if stats.accesses == 0:
            quorum = QuorumConfig.from_write(
                max(self.oracle.min_write_quorum, 1),
                self.oracle.replication_degree,
            )
        else:
            quorum = self.oracle.predict_config(
                stats.write_ratio, stats.mean_size
            )
        self.send(
            envelope.sender, TailQuorum(quorum=quorum), size=_CONTROL_BYTES
        )
