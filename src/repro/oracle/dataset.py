"""Training-set generation for the Oracle.

The paper trains the predictor on measured (workload -> optimal quorum)
pairs from ~170 workloads.  Here the ground truth comes from the
substrate itself: for each workload point the throughput of every strict
quorum configuration is evaluated (with the fast MVA model by default, or
with the discrete-event simulator for spot validation), and the argmax W
becomes the label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.mva import MvaThroughputModel, WorkloadPoint
from repro.common.errors import DatasetError
from repro.oracle.features import features_of
from repro.workloads.generator import WorkloadSpec, sweep_specs


@dataclass(frozen=True)
class LabeledWorkload:
    """One training example: workload features, per-config throughputs,
    and the optimal write quorum."""

    point: WorkloadPoint
    throughputs: dict[int, float]
    best_write_quorum: int

    @property
    def features(self) -> list[float]:
        return features_of(self.point)

    def normalized_throughput(self, write_quorum: int) -> float:
        """Throughput of a configuration relative to the optimum."""
        best = self.throughputs[self.best_write_quorum]
        if best <= 0:
            return 0.0
        return self.throughputs[write_quorum] / best


class TrainingSet:
    """An ordered collection of labeled workloads with matrix views."""

    def __init__(self, examples: Sequence[LabeledWorkload]) -> None:
        if not examples:
            raise DatasetError("TrainingSet must not be empty")
        self.examples = list(examples)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[LabeledWorkload]:
        return iter(self.examples)

    @property
    def features(self) -> list[list[float]]:
        return [example.features for example in self.examples]

    @property
    def labels(self) -> list[int]:
        return [example.best_write_quorum for example in self.examples]

    def label_distribution(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return dict(sorted(counts.items()))

    def subset(self, indices: Iterable[int]) -> "TrainingSet":
        return TrainingSet([self.examples[i] for i in indices])


def label_point(
    point: WorkloadPoint,
    model: MvaThroughputModel,
    clients: Optional[int] = None,
) -> LabeledWorkload:
    """Evaluate every configuration for one workload point."""
    throughputs = model.config_sweep(point, clients=clients)
    best = max(throughputs, key=lambda w: throughputs[w])
    return LabeledWorkload(
        point=point, throughputs=throughputs, best_write_quorum=best
    )


def generate_training_set(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    model: Optional[MvaThroughputModel] = None,
    clients: Optional[int] = None,
) -> TrainingSet:
    """Label a workload grid (defaults to the paper's ~170-point sweep)."""
    model = model or MvaThroughputModel()
    specs = specs if specs is not None else sweep_specs()
    examples = [
        label_point(
            WorkloadPoint(
                write_ratio=spec.write_ratio, object_size=spec.object_size
            ),
            model,
            clients=clients,
        )
        for spec in specs
    ]
    return TrainingSet(examples)
