"""C4.5/C5.0-style decision-tree classifier, from scratch.

The paper's Oracle relies on "state of the art machine learning (ML)
techniques (a decision-tree classifier based on the C5.0 algorithm)" to
map workload characteristics to the optimal write-quorum size.  No ML
library is assumed: this module implements the classic algorithm
directly —

* binary splits on numeric features, chosen by **gain ratio**
  (information gain normalized by split information, C4.5's criterion);
* candidate thresholds at midpoints between consecutive distinct sorted
  feature values;
* **pessimistic error pruning** with C4.5's confidence-interval upper
  bound (default CF = 0.25);
* optional per-sample weights, which is what lets
  :mod:`repro.oracle.boosting` implement C5.0's signature AdaBoost-style
  boosting on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.common.errors import DatasetError, NotFittedError

#: z-value used by C4.5's pessimistic upper bound for CF = 0.25.
_Z_FOR_CF25 = 0.6744897501960817


def pessimistic_error(errors: float, total: float, z: float = _Z_FOR_CF25) -> float:
    """C4.5's upper confidence bound on the true error rate.

    Given ``errors`` misclassified out of ``total`` samples, returns the
    upper bound of the binomial confidence interval at the confidence
    level implied by ``z`` (0.6745 -> CF 0.25), using the standard C4.5
    normal-approximation formula.
    """
    if total <= 0:
        return 1.0
    f = errors / total
    z2 = z * z
    numerator = (
        f
        + z2 / (2 * total)
        + z * math.sqrt(f / total - f * f / total + z2 / (4 * total * total))
    )
    return min(1.0, numerator / (1 + z2 / total))


def _entropy(weights_per_class: np.ndarray) -> float:
    total = weights_per_class.sum()
    if total <= 0:
        return 0.0
    probabilities = weights_per_class[weights_per_class > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


@dataclass
class _Node:
    """One tree node; a leaf when ``feature`` is None."""

    prediction: int
    class_weights: np.ndarray
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


class DecisionTreeClassifier:
    """Gain-ratio decision tree over numeric features."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        min_gain: float = 1e-9,
        prune: bool = True,
        confidence_z: float = _Z_FOR_CF25,
    ) -> None:
        if max_depth < 1:
            raise DatasetError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise DatasetError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise DatasetError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.prune = prune
        self.confidence_z = confidence_z
        self._root: Optional[_Node] = None
        self._classes: Optional[np.ndarray] = None
        self._n_features = 0

    # -- training ------------------------------------------------------------

    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
        sample_weight: Optional[Sequence[float]] = None,
    ) -> "DecisionTreeClassifier":
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        if X.ndim != 2:
            raise DatasetError("features must be a 2-D array-like")
        if len(X) == 0:
            raise DatasetError("cannot fit on an empty dataset")
        if len(X) != len(y):
            raise DatasetError(
                f"features ({len(X)}) and labels ({len(y)}) disagree"
            )
        if sample_weight is None:
            w = np.ones(len(X), dtype=np.float64)
        else:
            w = np.asarray(sample_weight, dtype=np.float64)
            if len(w) != len(X):
                raise DatasetError("sample_weight length mismatch")
            if (w < 0).any():
                raise DatasetError("sample weights must be >= 0")
            if w.sum() <= 0:
                raise DatasetError("sample weights must not all be zero")
        self._classes, y_encoded = np.unique(y, return_inverse=True)
        self._n_features = X.shape[1]
        self._root = self._build(X, y_encoded, w, depth=0)
        if self.prune:
            self._prune_node(self._root)
        return self

    def _class_weights(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        counts = np.zeros(len(self._classes), dtype=np.float64)
        np.add.at(counts, y, w)
        return counts

    def _build(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> _Node:
        class_weights = self._class_weights(y, w)
        prediction = int(np.argmax(class_weights))
        node = _Node(prediction=prediction, class_weights=class_weights)
        if (
            depth >= self.max_depth
            or len(X) < self.min_samples_split
            or np.count_nonzero(class_weights) <= 1
        ):
            return node
        split = self._best_split(X, y, w)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray
    ) -> Optional[tuple[int, float]]:
        """C4.5 split selection.

        Among all candidate binary splits, keep those whose information
        gain is at least the average gain of all candidates (C4.5's guard
        against the gain-ratio bias towards extremely unbalanced splits),
        then pick the one with the highest gain ratio.
        """
        parent_entropy = _entropy(self._class_weights(y, w))
        total_weight = w.sum()
        n_classes = len(self._classes)
        # One candidate per feature: the threshold maximizing information
        # gain (this is how C4.5 handles continuous attributes — the
        # threshold is chosen by gain; the ratio arbitrates *between*
        # attributes, which avoids the classic bias towards extremely
        # unbalanced splits).
        candidates: list[tuple[float, float, int, float]] = []
        for feature in range(self._n_features):
            order = np.argsort(X[:, feature], kind="mergesort")
            values = X[order, feature]
            labels = y[order]
            weights = w[order]
            distinct = np.nonzero(values[1:] > values[:-1])[0]
            if len(distinct) == 0:
                continue
            # Cumulative class-weight matrix along the sorted axis lets us
            # evaluate every candidate threshold in O(n * classes).
            one_hot = np.zeros((len(labels), n_classes), dtype=np.float64)
            one_hot[np.arange(len(labels)), labels] = weights
            cumulative = np.cumsum(one_hot, axis=0)
            totals = cumulative[-1]
            left = cumulative[distinct]
            right = totals[np.newaxis, :] - left
            left_weight = left.sum(axis=1)
            right_weight = right.sum(axis=1)
            valid = (
                (distinct + 1 >= self.min_samples_leaf)
                & (len(values) - distinct - 1 >= self.min_samples_leaf)
                & (left_weight > 0)
                & (right_weight > 0)
            )
            if not valid.any():
                continue

            def entropy_rows(matrix: np.ndarray) -> np.ndarray:
                sums = matrix.sum(axis=1, keepdims=True)
                with np.errstate(divide="ignore", invalid="ignore"):
                    p = np.where(sums > 0, matrix / sums, 0.0)
                    logs = np.where(p > 0, np.log2(p), 0.0)
                return -(p * logs).sum(axis=1)

            children = (
                left_weight * entropy_rows(left)
                + right_weight * entropy_rows(right)
            ) / total_weight
            gains = np.where(valid, parent_entropy - children, -np.inf)
            best_index = int(np.argmax(gains))
            gain = float(gains[best_index])
            if gain <= self.min_gain:
                continue
            p_left = left_weight[best_index] / total_weight
            split_info = -(
                p_left * math.log2(p_left)
                + (1 - p_left) * math.log2(1 - p_left)
            )
            if split_info <= 0:
                continue
            cut = distinct[best_index]
            threshold = float((values[cut] + values[cut + 1]) / 2.0)
            candidates.append((gain, gain / split_info, feature, threshold))
        if not candidates:
            return None
        # C4.5's guard: only attributes with at least average gain compete
        # on gain ratio.
        mean_gain = sum(c[0] for c in candidates) / len(candidates)
        eligible = [c for c in candidates if c[0] >= mean_gain - 1e-12]
        _gain, _ratio, feature, threshold = max(
            eligible, key=lambda c: (c[1], c[0])
        )
        return feature, threshold

    # -- pruning (C4.5 pessimistic) -----------------------------------------------

    def _prune_node(self, node: _Node) -> float:
        """Returns the estimated error count of the (possibly pruned) node."""
        total = node.class_weights.sum()
        leaf_errors = total - node.class_weights[node.prediction]
        leaf_estimate = total * pessimistic_error(
            leaf_errors, total, self.confidence_z
        )
        if node.is_leaf:
            return leaf_estimate
        subtree_estimate = self._prune_node(node.left) + self._prune_node(
            node.right
        )
        if leaf_estimate <= subtree_estimate:
            node.feature = None
            node.left = None
            node.right = None
            return leaf_estimate
        return subtree_estimate

    # -- prediction ------------------------------------------------------------

    def predict_one(self, features: Sequence[float]) -> int:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        if len(features) != self._n_features:
            raise DatasetError(
                f"expected {self._n_features} features, got {len(features)}"
            )
        node = self._root
        while not node.is_leaf:
            node = (
                node.left
                if features[node.feature] <= node.threshold
                else node.right
            )
        return int(self._classes[node.prediction])

    def predict(self, features: Sequence[Sequence[float]]) -> list[int]:
        return [self.predict_one(row) for row in features]

    def predict_proba_one(self, features: Sequence[float]) -> dict[int, float]:
        """Class -> weight fraction at the reached leaf."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        node = self._root
        while not node.is_leaf:
            node = (
                node.left
                if features[node.feature] <= node.threshold
                else node.right
            )
        total = node.class_weights.sum()
        if total <= 0:
            return {int(c): 0.0 for c in self._classes}
        return {
            int(c): float(node.class_weights[i] / total)
            for i, c in enumerate(self._classes)
        }

    # -- introspection ------------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._root is not None

    @property
    def classes(self) -> list[int]:
        if self._classes is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        return [int(c) for c in self._classes]

    def node_count(self) -> int:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        return self._root.node_count()

    def depth(self) -> int:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        return self._root.depth()

    def rules(self, feature_names: Optional[Sequence[str]] = None) -> str:
        """Human-readable if/else dump of the tree."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        names = feature_names or [
            f"x{i}" for i in range(self._n_features)
        ]
        lines: list[str] = []

        def walk(node: _Node, indent: int) -> None:
            pad = "  " * indent
            if node.is_leaf:
                lines.append(
                    f"{pad}-> {int(self._classes[node.prediction])}"
                )
                return
            lines.append(f"{pad}if {names[node.feature]} <= {node.threshold:g}:")
            walk(node.left, indent + 1)
            lines.append(f"{pad}else:")
            walk(node.right, indent + 1)

        walk(self._root, 0)
        return "\n".join(lines)
