"""The machine-learning Oracle (Section 6): models, data, validation."""

from repro.oracle.baselines import (
    FixedRuleBaseline,
    LinearBaseline,
    MajorityBaseline,
)
from repro.oracle.boosting import BoostedTreeClassifier
from repro.oracle.dataset import (
    LabeledWorkload,
    TrainingSet,
    generate_training_set,
    label_point,
)
from repro.oracle.decision_tree import DecisionTreeClassifier, pessimistic_error
from repro.oracle.features import FEATURE_NAMES, feature_vector, features_of
from repro.oracle.service import OracleNode, QuorumOracle
from repro.oracle.validation import (
    ValidationReport,
    compare_models,
    cross_validate,
    k_fold_indices,
)

__all__ = [
    "BoostedTreeClassifier",
    "DecisionTreeClassifier",
    "FEATURE_NAMES",
    "FixedRuleBaseline",
    "LabeledWorkload",
    "LinearBaseline",
    "MajorityBaseline",
    "OracleNode",
    "QuorumOracle",
    "TrainingSet",
    "ValidationReport",
    "compare_models",
    "cross_validate",
    "feature_vector",
    "features_of",
    "generate_training_set",
    "k_fold_indices",
    "label_point",
    "pessimistic_error",
]
