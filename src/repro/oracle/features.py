"""Feature extraction for the Oracle.

The paper feeds the predictor "a compact set of workload
characteristics, which can be gathered efficiently via non-intrusive
monitoring techniques": per object, the write-access ratio and the
object size (Section 4's ``statsTopK``).  The feature vector is
deliberately tiny — that is the point of the design.
"""

from __future__ import annotations

import math
from typing import Union

from repro.analysis.mva import WorkloadPoint
from repro.sds.messages import AggregateStats, ObjectStats

#: Human-readable feature names, aligned with :func:`feature_vector`.
FEATURE_NAMES: tuple[str, ...] = ("write_ratio", "log2_size")


def feature_vector(write_ratio: float, mean_size: float) -> list[float]:
    """Build the model input for one (possibly aggregated) workload.

    Size enters in log2 so that tree thresholds spread evenly over the
    orders of magnitude the sweep covers (1 KiB .. 1 MiB).
    """
    return [write_ratio, math.log2(max(mean_size, 1.0))]


def features_of(
    stats: Union[ObjectStats, AggregateStats, WorkloadPoint]
) -> list[float]:
    """Feature vector from any stats-bearing object."""
    if isinstance(stats, WorkloadPoint):
        return feature_vector(stats.write_ratio, stats.object_size)
    return feature_vector(stats.write_ratio, stats.mean_size)
