"""Baseline predictors the decision tree is compared against.

Figure 3's argument is that the optimal write quorum has no clean linear
relationship with the write percentage, which "motivated our choice of
employing black-box modelling techniques".  The E4/A1 ablation makes
that argument quantitative by scoring these baselines alongside the
tree:

* :class:`LinearBaseline` — least-squares fit of W on the feature
  vector, rounded and clipped (the model Figure 3 rules out);
* :class:`MajorityBaseline` — always the most common label;
* :class:`FixedRuleBaseline` — a static hand-picked configuration, e.g.
  majority quorums (what a non-adaptive deployment would use).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import DatasetError, NotFittedError


class LinearBaseline:
    """Least-squares linear regression of the label, rounded to a class."""

    def __init__(self, min_label: int = 1, max_label: int = 5) -> None:
        if min_label > max_label:
            raise DatasetError("min_label must be <= max_label")
        self.min_label = min_label
        self.max_label = max_label
        self._coefficients: Optional[np.ndarray] = None

    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
    ) -> "LinearBaseline":
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if len(X) == 0:
            raise DatasetError("cannot fit on an empty dataset")
        if len(X) != len(y):
            raise DatasetError("features/labels length mismatch")
        design = np.hstack([X, np.ones((len(X), 1))])
        self._coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    def predict_one(self, features: Sequence[float]) -> int:
        if self._coefficients is None:
            raise NotFittedError("LinearBaseline is not fitted")
        row = np.append(np.asarray(features, dtype=np.float64), 1.0)
        raw = float(row @ self._coefficients)
        return int(np.clip(round(raw), self.min_label, self.max_label))

    def predict(self, features: Sequence[Sequence[float]]) -> list[int]:
        return [self.predict_one(row) for row in features]

    @property
    def fitted(self) -> bool:
        return self._coefficients is not None


class MajorityBaseline:
    """Predicts the most frequent training label, always."""

    def __init__(self) -> None:
        self._label: Optional[int] = None

    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
    ) -> "MajorityBaseline":
        if len(labels) == 0:
            raise DatasetError("cannot fit on an empty dataset")
        counts: dict[int, int] = {}
        for label in labels:
            counts[label] = counts.get(label, 0) + 1
        self._label = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        return self

    def predict_one(self, features: Sequence[float]) -> int:
        if self._label is None:
            raise NotFittedError("MajorityBaseline is not fitted")
        return self._label

    def predict(self, features: Sequence[Sequence[float]]) -> list[int]:
        return [self.predict_one(row) for row in features]

    @property
    def fitted(self) -> bool:
        return self._label is not None


class FixedRuleBaseline:
    """A static, workload-oblivious configuration (no fitting needed)."""

    def __init__(self, write_quorum: int = 3) -> None:
        if write_quorum < 1:
            raise DatasetError("write_quorum must be >= 1")
        self._label = write_quorum

    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
    ) -> "FixedRuleBaseline":
        del features, labels  # workload-oblivious: nothing to learn
        return self

    def predict_one(self, features: Sequence[float]) -> int:
        return self._label

    def predict(self, features: Sequence[Sequence[float]]) -> list[int]:
        return [self._label for _ in features]

    @property
    def fitted(self) -> bool:
        return True
