"""Ground-truth configuration sweeps on the discrete-event simulator.

The MVA model answers "which configuration is best" in microseconds; the
functions here answer it by actually running the simulated cluster, and
are the ground truth that E1 (Figure 2) reports and that the MVA model
is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import ClusterConfig
from repro.common.errors import ExperimentError
from repro.common.types import QuorumConfig
from repro.sds.cluster import SwiftCluster
from repro.workloads.generator import SyntheticWorkload, WorkloadSpec


@dataclass(frozen=True)
class MeasuredThroughput:
    """One simulator measurement."""

    spec: WorkloadSpec
    quorum: QuorumConfig
    throughput: float
    mean_latency: float


@dataclass(frozen=True)
class ConfigSweepResult:
    """Throughput of every minimal strict configuration for one workload."""

    spec: WorkloadSpec
    throughputs: dict[int, float]

    @property
    def best_write_quorum(self) -> int:
        return max(self.throughputs, key=lambda w: self.throughputs[w])

    @property
    def best_throughput(self) -> float:
        return self.throughputs[self.best_write_quorum]

    @property
    def worst_throughput(self) -> float:
        return min(self.throughputs.values())

    @property
    def tuning_impact(self) -> float:
        """Best/worst throughput ratio — the paper's "up to 5x" metric."""
        worst = self.worst_throughput
        if worst <= 0:
            return float("inf")
        return self.best_throughput / worst

    def normalized(self) -> dict[int, float]:
        """Throughputs relative to the best configuration (Figure 2)."""
        best = self.best_throughput
        if best <= 0:
            raise ExperimentError("sweep produced zero throughput")
        return {w: x / best for w, x in self.throughputs.items()}


def measure_throughput(
    spec: WorkloadSpec,
    write_quorum: int,
    cluster_config: Optional[ClusterConfig] = None,
    duration: float = 8.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> MeasuredThroughput:
    """Run one (workload, configuration) point on the simulator."""
    if warmup >= duration:
        raise ExperimentError("warmup must be shorter than duration")
    base = cluster_config or ClusterConfig()
    config = base.with_quorum(
        QuorumConfig.from_write(write_quorum, base.replication_degree)
    ).validate()
    cluster = SwiftCluster(config, seed=seed)
    cluster.add_clients(SyntheticWorkload(spec, seed=seed + 1))
    cluster.run(duration)
    throughput = cluster.log.throughput(warmup, duration)
    latency = cluster.log.latency_summary().mean
    return MeasuredThroughput(
        spec=spec,
        quorum=config.initial_quorum,
        throughput=throughput,
        mean_latency=latency,
    )


def sweep_configurations(
    spec: WorkloadSpec,
    cluster_config: Optional[ClusterConfig] = None,
    duration: float = 8.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> ConfigSweepResult:
    """Measure every minimal strict configuration for one workload."""
    base = cluster_config or ClusterConfig()
    throughputs = {
        write: measure_throughput(
            spec,
            write,
            cluster_config=base,
            duration=duration,
            warmup=warmup,
            seed=seed,
        ).throughput
        for write in range(1, base.replication_degree + 1)
    }
    return ConfigSweepResult(spec=spec, throughputs=throughputs)
