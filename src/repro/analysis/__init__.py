"""Analytical throughput model and ground-truth configuration sweeps."""

from repro.analysis.mva import MvaThroughputModel, WorkloadPoint
from repro.analysis.optimal import (
    ConfigSweepResult,
    MeasuredThroughput,
    measure_throughput,
    sweep_configurations,
)

__all__ = [
    "ConfigSweepResult",
    "MeasuredThroughput",
    "MvaThroughputModel",
    "WorkloadPoint",
    "measure_throughput",
    "sweep_configurations",
]
