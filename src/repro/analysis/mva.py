"""Closed queueing-network throughput model (exact single-class MVA).

The 170-workload sweep of Figure 3, the tuning-impact study and the
Oracle's training-set generation all need throughput estimates for
``workload x quorum-configuration`` grids far larger than what the
discrete-event simulator can sweep in reasonable time.  This module
provides an analytical companion model: the simulated cluster is mapped
onto a product-form closed queueing network and solved with exact Mean
Value Analysis.

Stations (mirroring the resources of the simulator):

* per proxy — CPU (multi-server), NIC egress, NIC ingress;
* per storage node — disk (multi-server), NIC egress, NIC ingress;
* one infinite-server "delay" station for propagation latencies and the
  client-side NIC transfers (closed-loop clients never queue on their
  own link).

Multi-server stations use Seidmann's approximation: an ``m``-server
station with per-visit demand ``D`` becomes a single server of demand
``D/m`` in series with a pure delay of ``D (m-1)/m``.

The model intentionally omits two second-order simulator effects — the
fork-join "max of k replies" synchronization and the background
replicator's traffic — so its absolute numbers run a little high; tests
verify that its *ranking* of quorum configurations agrees with the DES
on representative workloads, which is all its users need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.common.types import QuorumConfig

#: Wire overhead per message, kept consistent with the simulator.
_HEADER_BYTES = 256


@dataclass(frozen=True)
class WorkloadPoint:
    """The workload features the model (and the Oracle) operates on."""

    write_ratio: float
    object_size: int

    def validate(self) -> "WorkloadPoint":
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio outside [0, 1]")
        if self.object_size < 0:
            raise ConfigurationError("object_size must be >= 0")
        return self


@dataclass(frozen=True)
class _Station:
    """One queueing station: service demand per completed operation."""

    name: str
    demand: float
    is_delay: bool = False


def _solve_mva(
    stations: list[_Station], clients: int
) -> tuple[float, float]:
    """Exact MVA recursion.

    Returns ``(throughput, response_time)`` — operations/second and the
    mean end-to-end residence time of one operation (seconds).
    """
    queue = [0.0] * len(stations)
    throughput = 0.0
    total = 0.0
    for n in range(1, clients + 1):
        residence = [
            station.demand
            if station.is_delay
            else station.demand * (1.0 + queue[k])
            for k, station in enumerate(stations)
        ]
        total = sum(residence)
        if total <= 0:
            return float("inf"), 0.0
        throughput = n / total
        queue = [throughput * r for r in residence]
    return throughput, total


class MvaThroughputModel:
    """Predicts cluster throughput for a (workload, quorum) pair."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = (config or ClusterConfig()).validate()

    # -- public API ---------------------------------------------------------

    def throughput(
        self,
        point: WorkloadPoint,
        quorum: QuorumConfig,
        clients: int | None = None,
    ) -> float:
        """Predicted successful operations per second."""
        point.validate()
        quorum.validate_strict(self.config.replication_degree)
        total_clients = (
            clients if clients is not None else self.config.total_clients
        )
        if total_clients < 1:
            raise ConfigurationError("need at least one client")
        stations = self._stations(point, quorum)
        throughput, _response = _solve_mva(stations, total_clients)
        return throughput

    def response_time(
        self,
        point: WorkloadPoint,
        quorum: QuorumConfig,
        clients: int | None = None,
    ) -> float:
        """Predicted mean end-to-end operation latency (seconds).

        Closed-network identity: ``clients = throughput x response``, so
        this is the companion prediction for latency-KPI tuning.
        """
        point.validate()
        quorum.validate_strict(self.config.replication_degree)
        total_clients = (
            clients if clients is not None else self.config.total_clients
        )
        if total_clients < 1:
            raise ConfigurationError("need at least one client")
        stations = self._stations(point, quorum)
        _throughput, response = _solve_mva(stations, total_clients)
        return response

    def best_write_quorum(
        self,
        point: WorkloadPoint,
        clients: int | None = None,
        write_quorums: range | None = None,
    ) -> int:
        """argmax over W of predicted throughput (R derived as N-W+1)."""
        degree = self.config.replication_degree
        candidates = write_quorums or range(1, degree + 1)
        best_w, best_x = 0, -1.0
        for write in candidates:
            quorum = QuorumConfig.from_write(write, degree)
            x = self.throughput(point, quorum, clients=clients)
            if x > best_x:
                best_w, best_x = write, x
        return best_w

    def config_sweep(
        self, point: WorkloadPoint, clients: int | None = None
    ) -> dict[int, float]:
        """Predicted throughput for every minimal strict configuration."""
        degree = self.config.replication_degree
        return {
            write: self.throughput(
                point, QuorumConfig.from_write(write, degree), clients=clients
            )
            for write in range(1, degree + 1)
        }

    # -- network construction --------------------------------------------------

    def _stations(
        self, point: WorkloadPoint, quorum: QuorumConfig
    ) -> list[_Station]:
        cfg = self.config
        p = point.write_ratio
        q = 1.0 - p
        size = point.object_size
        header = _HEADER_BYTES
        bandwidth = cfg.network.bandwidth
        read_q, write_q = quorum.read, quorum.write

        def tx(bytes_: float) -> float:
            return bytes_ / bandwidth

        # --- per-operation demands, system-wide expectations ---
        # Proxy CPU: marshalling cost per contacted replica.
        cpu_demand = cfg.proxy.per_replica_cpu * (p * write_q + q * read_q)
        # Proxy egress: write fans the payload out to W replicas and sends
        # a header reply to the client; a read sends R header requests and
        # relays the payload back to the client.
        proxy_tx = p * (write_q * tx(header + size) + tx(header)) + q * (
            read_q * tx(header) + tx(header + size)
        )
        # Proxy ingress: write receives the payload once from the client
        # plus W header acks; a read receives a header request plus R full
        # replies (every replica returns its version).
        proxy_rx = p * (tx(header + size) + write_q * tx(header)) + q * (
            tx(header) + read_q * tx(header + size)
        )
        # Storage disk: W foreground writes, R foreground reads.
        storage = cfg.storage
        disk_demand = p * write_q * storage.mean_write_time(size) + (
            q * read_q * storage.mean_read_time(size)
        )
        # Storage NICs.
        storage_rx = p * write_q * tx(header + size) + q * read_q * tx(header)
        storage_tx = p * write_q * tx(header) + q * read_q * tx(header + size)
        # Pure delays: 4 propagation hops per op (client->proxy->storage
        # and back), plus the client's own NIC transfers.
        hop = cfg.network.base_latency * (
            1.0 + cfg.network.jitter_fraction / 2.0
        )
        delay = 4.0 * hop + tx(header + size) + tx(header)

        stations: list[_Station] = [
            _Station(name="latency", demand=delay, is_delay=True)
        ]
        for index in range(cfg.num_proxies):
            share = 1.0 / cfg.num_proxies
            stations.extend(
                self._multi_server(
                    f"proxy{index}.cpu",
                    cpu_demand * share,
                    cfg.proxy.concurrency,
                )
            )
            stations.append(
                _Station(name=f"proxy{index}.tx", demand=proxy_tx * share)
            )
            stations.append(
                _Station(name=f"proxy{index}.rx", demand=proxy_rx * share)
            )
        for index in range(cfg.num_storage_nodes):
            share = 1.0 / cfg.num_storage_nodes
            stations.extend(
                self._multi_server(
                    f"storage{index}.disk",
                    disk_demand * share,
                    storage.concurrency,
                )
            )
            stations.append(
                _Station(name=f"storage{index}.tx", demand=storage_tx * share)
            )
            stations.append(
                _Station(name=f"storage{index}.rx", demand=storage_rx * share)
            )
        return stations

    @staticmethod
    def _multi_server(name: str, demand: float, servers: int) -> list[_Station]:
        """Seidmann's two-station approximation of an m-server queue."""
        if servers <= 1:
            return [_Station(name=name, demand=demand)]
        return [
            _Station(name=f"{name}.q", demand=demand / servers),
            _Station(
                name=f"{name}.d",
                demand=demand * (servers - 1) / servers,
                is_delay=True,
            ),
        ]
