"""Throughput/latency collectors and timeline analysis."""

from repro.metrics.collector import (
    LatencySummary,
    MovingAverage,
    OperationLog,
    percentile,
)
from repro.metrics.timeline import DipStatistics, Timeline, TimelinePoint

__all__ = [
    "DipStatistics",
    "LatencySummary",
    "MovingAverage",
    "OperationLog",
    "Timeline",
    "TimelinePoint",
    "percentile",
]
