"""Throughput/latency collectors and timeline analysis."""

from repro.metrics.collector import (
    LatencySummary,
    MovingAverage,
    OperationLog,
    percentile,
)
from repro.metrics.timeline import (
    DipStatistics,
    EventTimeline,
    Timeline,
    TimelineEvent,
    TimelinePoint,
)

__all__ = [
    "DipStatistics",
    "EventTimeline",
    "LatencySummary",
    "MovingAverage",
    "OperationLog",
    "Timeline",
    "TimelineEvent",
    "TimelinePoint",
    "percentile",
]
