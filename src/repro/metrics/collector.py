"""Operation-level metrics: throughput, latency, per-type breakdowns.

The Autonomic Manager's control loop is driven by throughput measured by
each proxy over a moving window (Section 4: "a moving average over a
window time of 30 seconds"), so the collectors here support both
whole-run summaries and windowed queries at arbitrary simulated times.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SimulationError
from repro.common.types import OpType


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of recorded latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError(f"percentile fraction {fraction} out of range")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return sorted_values[low]
    weight = position - low
    lower = sorted_values[low]
    return lower + weight * (sorted_values[high] - lower)


class OperationLog:
    """Records every completed operation with its completion time.

    Completion times are appended in nondecreasing order (simulated time
    is monotonic), which makes windowed throughput queries a pair of
    binary searches.
    """

    def __init__(self) -> None:
        self._completion_times: list[float] = []
        self._latencies: list[float] = []
        self._by_type: dict[OpType, int] = {OpType.READ: 0, OpType.WRITE: 0}
        self._latencies_by_type: dict[OpType, list[float]] = {
            OpType.READ: [],
            OpType.WRITE: [],
        }
        self._retries = 0
        # Latency lists are append-only, so a sorted view stays valid
        # until the next record(); cache it per op_type (None = all)
        # keyed by the list length it was built from.
        self._sorted_cache: dict[
            Optional[OpType], tuple[int, list[float]]
        ] = {}

    # -- recording ------------------------------------------------------------

    def record(
        self, completed_at: float, latency: float, op_type: OpType
    ) -> None:
        if self._completion_times and completed_at < self._completion_times[-1]:
            raise SimulationError("operation completion times went backwards")
        if latency < 0:
            raise SimulationError("negative latency recorded")
        self._completion_times.append(completed_at)
        self._latencies.append(latency)
        self._by_type[op_type] += 1
        self._latencies_by_type[op_type].append(latency)

    def record_retry(self) -> None:
        """Count an operation re-execution (epoch NACK or quorum retry)."""
        self._retries += 1

    # -- queries ----------------------------------------------------------------

    @property
    def total_operations(self) -> int:
        return len(self._completion_times)

    @property
    def retries(self) -> int:
        return self._retries

    def count(self, op_type: Optional[OpType] = None) -> int:
        if op_type is None:
            return self.total_operations
        return self._by_type[op_type]

    def operations_in(self, start: float, end: float) -> int:
        """Operations completed in the half-open window [start, end)."""
        if end < start:
            raise SimulationError("window end before start")
        lo = bisect.bisect_left(self._completion_times, start)
        hi = bisect.bisect_left(self._completion_times, end)
        return hi - lo

    def throughput(self, start: float, end: float) -> float:
        """Completed operations per second over [start, end)."""
        duration = end - start
        if duration <= 0:
            return 0.0
        return self.operations_in(start, end) / duration

    def _sorted_latencies(self, op_type: Optional[OpType]) -> list[float]:
        """Sorted latency view, memoized while no new records arrive.

        Control loops query summaries every round over ever-growing
        logs; re-sorting the full list per query is O(n log n) each
        time, so repeated queries between records hit the cache.
        """
        values = (
            self._latencies
            if op_type is None
            else self._latencies_by_type[op_type]
        )
        cached = self._sorted_cache.get(op_type)
        if cached is not None and cached[0] == len(values):
            return cached[1]
        ordered = sorted(values)
        self._sorted_cache[op_type] = (len(values), ordered)
        return ordered

    def latency_summary(
        self, op_type: Optional[OpType] = None
    ) -> LatencySummary:
        ordered = self._sorted_latencies(op_type)
        if not ordered:
            return LatencySummary.empty()
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            maximum=ordered[-1],
        )


@dataclass
class MovingAverage:
    """Fixed-capacity moving average used by the Autonomic Manager."""

    window: int
    _values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self._values.append(value)
        if len(self._values) > self.window:
            del self._values[0]

    @property
    def value(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    @property
    def full(self) -> bool:
        return len(self._values) >= self.window

    def __len__(self) -> int:
        return len(self._values)
