"""Binned time-series for throughput timelines, and the event timeline.

Experiment E6 (reconfiguration overhead) and E7 (dynamic adaptation) plot
throughput against time; :class:`Timeline` turns an :class:`OperationLog`
into evenly-binned series and computes the dip/recovery statistics the
paper's "negligible throughput penalties" claim is about.

:class:`EventTimeline` is the audit log of a chaos run: every fault the
nemesis injects and every timeout/retry/failure the data plane takes is
recorded as a :class:`TimelineEvent`, in simulated-time order.  Because
the simulator is deterministic for a fixed seed, rerunning a nemesis
schedule must reproduce the event log bit for bit —
:meth:`EventTimeline.signature` is the canonical form chaos tests
compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.common.errors import SimulationError
from repro.metrics.collector import OperationLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.context import Observability


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped occurrence in a simulation run."""

    #: Simulated time of the event.
    time: float
    #: Event family: ``"nemesis"`` for injected faults, ``"proxy"`` /
    #: ``"client"`` for data-plane degradation events, etc.
    category: str
    #: Short machine-readable label (``"partition"``, ``"gather-timeout"``,
    #: ``"retry"``, ...).
    label: str
    #: Free-form target/context description.
    detail: str = ""

    def as_tuple(self) -> tuple[float, str, str, str]:
        return (self.time, self.category, self.label, self.detail)


class EventTimeline:
    """Append-only, simulated-time-ordered log of notable events."""

    def __init__(self) -> None:
        self._events: list[TimelineEvent] = []
        self._obs: Optional["Observability"] = None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self._events)

    def bind_observability(self, obs: "Observability") -> None:
        """Mirror future events into the trace as annotations.

        Nemesis faults (category ``"nemesis"``) additionally bump the
        ``qopt_nemesis_faults_total`` counter, so chaos dashboards can
        correlate fault counts with retry/timeout metrics.
        """
        self._obs = obs

    def record(
        self, time: float, category: str, label: str, detail: str = ""
    ) -> TimelineEvent:
        """Append one event (events must arrive in time order)."""
        if self._events and time < self._events[-1].time:
            raise SimulationError(
                f"event at t={time} recorded after t={self._events[-1].time}"
            )
        event = TimelineEvent(
            time=time, category=category, label=label, detail=detail
        )
        self._events.append(event)
        obs = self._obs
        if obs is not None:
            obs.tracer.annotate(
                label, category=category, at=time, detail=detail
            )
            if category == "nemesis":
                obs.faults.inc()
        return event

    @property
    def events(self) -> list[TimelineEvent]:
        return list(self._events)

    def of_category(self, category: str) -> list[TimelineEvent]:
        return [e for e in self._events if e.category == category]

    def of_label(self, label: str) -> list[TimelineEvent]:
        return [e for e in self._events if e.label == label]

    def signature(self) -> tuple[tuple[float, str, str, str], ...]:
        """Canonical tuple form, for run-to-run reproducibility asserts."""
        return tuple(event.as_tuple() for event in self._events)


@dataclass(frozen=True)
class TimelinePoint:
    """One bin of a throughput timeline."""

    start: float
    end: float
    throughput: float

    @property
    def midpoint(self) -> float:
        return (self.start + self.end) / 2


class Timeline:
    """Evenly-binned throughput series over an operation log."""

    def __init__(
        self, log: OperationLog, start: float, end: float, bin_width: float
    ) -> None:
        if end <= start:
            raise SimulationError("timeline end must be after start")
        if bin_width <= 0:
            raise SimulationError("bin width must be positive")
        self._points: list[TimelinePoint] = []
        edge = start
        while edge < end:
            next_edge = min(edge + bin_width, end)
            self._points.append(
                TimelinePoint(
                    start=edge,
                    end=next_edge,
                    throughput=log.throughput(edge, next_edge),
                )
            )
            edge = next_edge

    @property
    def points(self) -> list[TimelinePoint]:
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def mean_throughput(self, start: float, end: float) -> float:
        """Mean of bin throughputs whose midpoint falls in [start, end)."""
        values = [
            p.throughput for p in self._points if start <= p.midpoint < end
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def dip_statistics(
        self, event_time: float, settle: float
    ) -> "DipStatistics":
        """Quantify the throughput dip around an event (a reconfiguration).

        Compares the mean throughput before ``event_time`` against the
        minimum bin inside ``[event_time, event_time + settle)`` and the
        mean after the settle window.
        """
        before = self.mean_throughput(self._points[0].start, event_time)
        during_bins = [
            p.throughput
            for p in self._points
            if event_time <= p.midpoint < event_time + settle
        ]
        during_min = min(during_bins) if during_bins else 0.0
        after = self.mean_throughput(
            event_time + settle, self._points[-1].end
        )
        return DipStatistics(
            before=before, during_min=during_min, after=after
        )


@dataclass(frozen=True)
class DipStatistics:
    """Before/during/after throughput around a reconfiguration event."""

    before: float
    during_min: float
    after: float

    @property
    def relative_dip(self) -> float:
        """Worst-case relative throughput loss during the event window."""
        if self.before <= 0:
            return 0.0
        return max(0.0, 1.0 - self.during_min / self.before)

    @property
    def relative_change(self) -> float:
        """Steady-state throughput change after the event (signed)."""
        if self.before <= 0:
            return 0.0
        return self.after / self.before - 1.0
