"""Command-line interface: run any experiment without pytest.

``python -m repro <command>`` regenerates a paper figure or claim and
prints its table.  Commands map 1:1 onto the harness regenerators
(DESIGN.md's E1-E8); ``--fast`` trades precision for runtime by
shrinking simulation durations.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.analysis.mva import MvaThroughputModel, WorkloadPoint
from repro.common.config import AutonomicConfig, ClusterConfig
from repro.harness.figures import (
    figure2,
    figure3,
    oracle_accuracy,
    tuning_impact,
)
from repro.harness.runtime import (
    dynamic_adaptation,
    per_object_vs_global,
    qopt_vs_static,
    reconfiguration_overhead,
)
from repro.harness.tables import render_table


def _fast_am() -> AutonomicConfig:
    return AutonomicConfig(
        round_duration=2.0, quarantine=0.5, top_k=8, gamma=2, theta=0.02
    )


def _cmd_figure2(args: argparse.Namespace) -> str:
    duration = 5.0 if args.fast else 8.0
    result = figure2(
        cluster_config=ClusterConfig(num_proxies=1, clients_per_proxy=10),
        duration=duration,
        warmup=min(2.0, duration / 2),
        seed=args.seed,
    )
    return result.render()


def _cmd_figure3(args: argparse.Namespace) -> str:
    return figure3(clients=10).render(sample=24)


def _cmd_tuning_impact(args: argparse.Namespace) -> str:
    return tuning_impact(clients=10).render()


def _cmd_oracle(args: argparse.Namespace) -> str:
    folds = 5 if args.fast else 10
    return oracle_accuracy(folds=folds, seed=args.seed).render()


def _cmd_qopt_vs_static(args: argparse.Namespace) -> str:
    scale = 0.5 if args.fast else 1.0
    result = qopt_vs_static(
        autonomic_config=_fast_am(),
        static_duration=8.0 * scale,
        static_warmup=2.0 * scale,
        qopt_duration=24.0 * scale,
        measure_window=6.0 * scale,
        seed=args.seed,
    )
    return result.render()


def _cmd_reconfig_overhead(args: argparse.Namespace) -> str:
    result = reconfiguration_overhead(seed=args.seed)
    return result.render()


def _cmd_dynamic(args: argparse.Namespace) -> str:
    scale = 0.5 if args.fast else 1.0
    result = dynamic_adaptation(
        autonomic_config=_fast_am(),
        switch_time=20.0 * scale,
        duration=44.0 * scale,
        seed=args.seed,
    )
    return result.render()


def _cmd_per_object(args: argparse.Namespace) -> str:
    scale = 0.5 if args.fast else 1.0
    result = per_object_vs_global(
        static_duration=8.0 * scale,
        qopt_duration=30.0 * scale,
        measure_window=6.0 * scale,
        seed=args.seed,
    )
    return result.render()


def _cmd_predict(args: argparse.Namespace) -> str:
    """One MVA sweep: throughput of every configuration for a workload."""
    model = MvaThroughputModel(ClusterConfig())
    point = WorkloadPoint(
        write_ratio=args.write_ratio, object_size=args.object_size
    )
    sweep = model.config_sweep(point, clients=args.clients)
    best = max(sweep, key=lambda w: sweep[w])
    degree = model.config.replication_degree
    rows = [
        (
            f"R={degree - w + 1},W={w}",
            f"{x:.0f}",
            "<- optimal" if w == best else "",
        )
        for w, x in sweep.items()
    ]
    return render_table(
        ["configuration", "predicted ops/s", ""],
        rows,
        title=(
            f"MVA prediction: {args.write_ratio * 100:.0f}% writes, "
            f"{args.object_size} B objects, {args.clients} clients"
        ),
    )


COMMANDS: dict[str, tuple[Callable[[argparse.Namespace], str], str]] = {
    "figure2": (_cmd_figure2, "E1: Figure 2 — throughput per quorum config"),
    "figure3": (_cmd_figure3, "E2: Figure 3 — optimal W vs write %%"),
    "tuning-impact": (_cmd_tuning_impact, "E3: up-to-5x tuning impact"),
    "oracle-accuracy": (_cmd_oracle, "E4: oracle cross-validation"),
    "qopt-vs-static": (_cmd_qopt_vs_static, "E5: Q-OPT vs static configs"),
    "reconfig-overhead": (
        _cmd_reconfig_overhead,
        "E6: reconfiguration throughput dip (+ stop-the-world ablation)",
    ),
    "dynamic": (_cmd_dynamic, "E7: adaptation to a workload switch"),
    "per-object": (_cmd_per_object, "E8: per-object vs global tuning"),
    "predict": (_cmd_predict, "MVA throughput prediction for one workload"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Q-OPT reproduction: regenerate the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_handler, help_text) in COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--fast",
            action="store_true",
            help="shrink simulation durations for a quick look",
        )
        if name == "predict":
            sub.add_argument("--write-ratio", type=float, default=0.5)
            sub.add_argument("--object-size", type=int, default=64 * 1024)
            sub.add_argument("--clients", type=int, default=50)
    subparsers.add_parser(
        "qlint",
        help="protocol-invariant static analysis (see python -m repro.qlint)",
        add_help=False,
    )
    subparsers.add_parser(
        "bench",
        help="observability perf harness (see python -m repro bench --help)",
        add_help=False,
    )
    subparsers.add_parser(
        "serve",
        help="live runtime: run one protocol node over TCP",
        add_help=False,
    )
    subparsers.add_parser(
        "cluster",
        help="live runtime: spawn a local multi-process cluster",
        add_help=False,
    )
    subparsers.add_parser(
        "loadgen",
        help="live runtime: benchmark a running cluster (BENCH_net.json)",
        add_help=False,
    )
    subparsers.add_parser(
        "livesmoke",
        help="live runtime: end-to-end CI smoke (boot, load, reconfigure)",
        add_help=False,
    )
    subparsers.add_parser(
        "livechaos",
        help=(
            "live runtime: crash-recovery gate (WAL-backed cluster, "
            "kill -9 cycles under load, durability + linearizability)"
        ),
        add_help=False,
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "qlint":
        # Forwarded wholesale: ``python -m repro qlint ...`` is the same
        # tool as ``python -m repro.qlint ...``.
        from repro.qlint.cli import main as qlint_main

        return qlint_main(arguments[1:])
    if arguments and arguments[0] == "bench":
        # Forwarded wholesale: the bench harness owns its own flags
        # (--quick/--output/--baseline/--trace).
        from repro.obs.bench import main as bench_main

        return bench_main(arguments[1:])
    if arguments:
        # Live-runtime commands own their own flags too.
        from repro.net.cli import dispatch as net_dispatch

        outcome = net_dispatch(arguments[0], arguments[1:])
        if outcome is not None:
            return outcome
    args = build_parser().parse_args(arguments)
    handler, _help = COMMANDS[args.command]
    print(handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
