"""Smoke tests: every example script runs to completion.

Each example is executed in-process (so coverage and import errors
surface normally) with stdout captured; the assertions check for the
headline lines each script promises.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.slow


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "throughput before tuning" in out
    assert "per-object overrides" in out


def test_manual_reconfiguration(capsys):
    out = run_example("manual_reconfiguration.py", capsys)
    assert "failure-free two-phase reconfiguration" in out
    assert "epoch change fences it" in out
    assert "NACK" in out


def test_personal_cloud(capsys):
    out = run_example("personal_cloud.py", capsys)
    assert "switch" in out
    assert "steady state after the switch" in out


def test_multi_tenant(capsys):
    out = run_example("multi_tenant.py", capsys)
    assert "q-opt" in out
    assert "overrides per tenant" in out


def test_fault_tolerant_control_plane(capsys):
    out = run_example("fault_tolerant_control_plane.py", capsys)
    assert "new primary" in out


def test_live_cluster(capsys):
    out = run_example("live_cluster.py", capsys)
    assert "live reconfiguration to W=2" in out
    assert "linearizable=True" in out
    assert "0 violations" in out
    assert "cluster shut down cleanly: True" in out
    assert "tuning continued" in out
